"""The capability never-exceeds differential audit.

The load-bearing safety argument for :mod:`repro.core.capability` is
differential: replay a randomized request stream through the
capability fast path (validate-first middleware in front of the
combined VO∧local evaluator) and, for every single case, compare
against what a *fresh* combined evaluation grants at that moment.  The
fast path must *never exceed* fresh evaluation — a capability hit that
permits where fresh evaluation denies is precisely the delegation bug
(a token outliving or outgrowing the policy that minted it) the design
fails closed against.

The driver deliberately stresses the staleness windows:

* periodic ``replace_policy`` swaps on the VO or local source bump
  that source's epoch mid-stream (outstanding capabilities must
  revoke);
* periodic sim-clock jumps push held tokens past their TTL;
* the request pool is replayed with heavy repetition, so the stream is
  mostly the repeat traffic capabilities exist to amortize.

Used by ``tests/core/test_capability_differential.py`` (zero-tolerance
assertions, ≥10k cases) and ``benchmarks/test_bench_capability.py``
(the acceptance artifact embeds the audit numbers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.capability import CapabilityIssuer, CapabilityMiddleware
from repro.core.combination import CombinationAlgorithm, CombinedEvaluator
from repro.core.decision import Effect
from repro.core.errors import AuthorizationSystemFailure
from repro.core.evaluator import PolicyEvaluator
from repro.core.pipeline import DecisionContext, activate, compose
from repro.sim.clock import Clock
from repro.workloads.generator import (
    PolicyShape,
    WorkloadGenerator,
    generate_policy,
    generate_users,
)


@dataclass(frozen=True)
class AuditConfig:
    """Shape of one audit run (fully seeded, fully deterministic)."""

    #: Policy shape shared by the VO and local sources (the local
    #: source is generated from ``seed + 1`` so the two differ).
    shape: PolicyShape = PolicyShape(users=25, seed=7)
    #: Distinct requests in the replay pool.
    pool_size: int = 120
    #: Total cases replayed (each drawn from the pool with repetition).
    cases: int = 5000
    seed: int = 13
    #: Capability TTL in simulated seconds.
    ttl: float = 300.0
    #: Every N cases, replace one policy source (alternating VO/local)
    #: with a reshaped one — an epoch bump mid-stream (0 = never).
    bump_every: int = 700
    #: Every N cases, advance the sim clock by ``ttl / 3``; every
    #: third jump is a full ``ttl``, expiring the whole outstanding
    #: set at once (0 = never advance).
    advance_every: int = 400
    management_fraction: float = 0.4


@dataclass
class AuditResult:
    """What one audit run observed, ready for assertions."""

    cases: int = 0
    #: Fast-path PERMITs where fresh evaluation did NOT permit — the
    #: zero-tolerance number.
    exceeded: int = 0
    #: Any effect disagreement at all (includes under-grants, which
    #: the design also avoids: a miss re-evaluates fresh).
    divergences: int = 0
    first_divergence: Optional[Tuple[str, str, str]] = None
    hits: int = 0
    misses: int = 0
    revoked: int = 0
    minted: int = 0
    epoch_bumps: int = 0
    clock_advances: int = 0
    miss_reasons: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "exceeded": self.exceeded,
            "divergences": self.divergences,
            "hits": self.hits,
            "misses": self.misses,
            "revoked": self.revoked,
            "minted": self.minted,
            "epoch_bumps": self.epoch_bumps,
            "clock_advances": self.clock_advances,
            "miss_reasons": dict(self.miss_reasons),
        }


def build_audit_stack(
    config: AuditConfig,
) -> Tuple[Any, CombinedEvaluator, CapabilityMiddleware, Clock, List[PolicyEvaluator]]:
    """The capability-fronted pipeline the audit replays through.

    Returns ``(handler, combined, middleware, clock, evaluators)``:
    *handler* is the composed capability middleware with the combined
    evaluator as its terminal, exactly the shape the PEP runs it in.
    """
    vo_policy = generate_policy(config.shape, name="vo")
    # The local source starts in agreement with the VO source (same
    # shape seed) so the combined stream has a healthy PERMIT fraction
    # — that is what exercises the mint/hit path.  The mid-stream
    # ``replace_policy`` bumps then swap in genuinely different
    # policies, opening the disagreement windows the audit exists to
    # check.
    local_policy = generate_policy(config.shape, name="local")
    evaluators = [
        PolicyEvaluator(vo_policy, source="vo"),
        PolicyEvaluator(local_policy, source="local"),
    ]
    combined = CombinedEvaluator(
        evaluators, algorithm=CombinationAlgorithm.ALL_MUST_PERMIT
    )
    clock = Clock()
    issuer = CapabilityIssuer(
        key=b"audit-key" * 4,
        clock=clock,
        ttl=config.ttl,
        epoch_sources=[("policy", combined)],
    )
    middleware = CapabilityMiddleware(issuer)

    def terminal(request, context):
        return combined.evaluate(request)

    handler = compose([middleware], terminal)
    return handler, combined, middleware, clock, evaluators


def run_capability_audit(config: Optional[AuditConfig] = None) -> AuditResult:
    """Replay the stream; compare every fast-path case against fresh."""
    config = config or AuditConfig()
    handler, combined, middleware, clock, evaluators = build_audit_stack(config)
    users = generate_users(config.shape.users)
    generator = WorkloadGenerator(
        policy=combined.evaluators[0].policy,
        users=users,
        seed=config.seed,
    )
    pool = generator.batch(
        config.pool_size, management_fraction=config.management_fraction
    )
    rng = random.Random(config.seed * 31 + 7)
    result = AuditResult()
    reshuffle = 0

    for case in range(config.cases):
        if config.bump_every and case and case % config.bump_every == 0:
            # Epoch bump mid-stream: one source gets a genuinely
            # different policy, so fresh outcomes change under every
            # outstanding capability.
            reshuffle += 1
            target = evaluators[reshuffle % len(evaluators)]
            target.replace_policy(
                generate_policy(
                    PolicyShape(
                        users=config.shape.users,
                        statements_per_user=config.shape.statements_per_user,
                        assertions_per_statement=config.shape.assertions_per_statement,
                        seed=config.shape.seed + 100 + reshuffle,
                    ),
                    name=target.source,
                )
            )
            result.epoch_bumps += 1
        if config.advance_every and case and case % config.advance_every == 0:
            result.clock_advances += 1
            if result.clock_advances % 3 == 0:
                clock.advance(config.ttl)  # expire everything held
            else:
                clock.advance(config.ttl / 3)

        request = pool[rng.randrange(len(pool))]
        # The oracle: what fresh evaluation grants RIGHT NOW.
        try:
            fresh_effect = combined.evaluate(request).effect
        except AuthorizationSystemFailure:
            fresh_effect = Effect.INDETERMINATE
        # The system under test: the capability-fronted pipeline.
        context = DecisionContext.from_request(request)
        with activate(context):
            try:
                fast_effect = handler(request, context).effect
            except AuthorizationSystemFailure:
                fast_effect = Effect.INDETERMINATE

        result.cases += 1
        if fast_effect is Effect.PERMIT and fresh_effect is not Effect.PERMIT:
            result.exceeded += 1
        if fast_effect is not fresh_effect:
            result.divergences += 1
            if result.first_divergence is None:
                result.first_divergence = (
                    str(request),
                    fast_effect.value,
                    fresh_effect.value,
                )

    result.hits = middleware.hits
    result.misses = middleware.misses
    result.revoked = middleware.revoked
    result.minted = middleware.issuer.minted
    result.miss_reasons = dict(middleware.miss_reasons)
    return result
