"""Closed-loop job-churn workload: sustained submit/poll/cancel traffic.

The ROADMAP's north star is heavy traffic from very many users; what
kills a GRAM resource under that load is not a single burst but
*churn* — jobs continuously submitted, polled, cancelled and completed
over days.  This module drives exactly that against a fully wired
:class:`~repro.gram.service.GramService` on simulated time, and
reports the lifecycle quantities the leak guards assert on: live JMI
count, pending terminal-callback registrations, completed-record
count, admission rejections, and the per-account ``running_jobs``
balance.

Everything is seeded and driven by the sim clock, so a churn run is
deterministic end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.gram.client import GramClient
from repro.gram.dispatch import ShardedGramService
from repro.gram.protocol import GramErrorCode, JobContact
from repro.gram.service import GramService, ServiceConfig

#: DN root of the generated churn population.
CHURN_PREFIX = "/O=Grid/O=Churn/OU=load.example.org"


@dataclass(frozen=True)
class ChurnConfig:
    """Shape of one churn run."""

    #: Distinct users cycling through submissions.
    users: int = 50
    #: Total submit attempts (each followed by poll(s) and maybe cancel).
    cycles: int = 500
    #: Declared runtime of every job, in simulated seconds.
    runtime: float = 4.0
    #: Simulated time advanced between consecutive submissions.
    step: float = 1.0
    #: Fraction of started jobs cancelled right after their first poll.
    cancel_fraction: float = 0.25
    #: Status polls issued per started job.
    polls_per_job: int = 1
    seed: int = 17


@dataclass
class ChurnStats:
    """What a churn run observed (all monotone or end-of-run values)."""

    submitted: int = 0
    started: int = 0
    cancelled: int = 0
    rejected_busy: int = 0
    errors: int = 0
    polls: int = 0
    #: Peak ``gatekeeper.active_job_managers`` over the run.
    max_live_jmis: int = 0
    #: Peak pending per-job terminal registrations in the scheduler.
    max_terminal_callbacks: int = 0
    final_live_jmis: int = 0
    final_terminal_callbacks: int = 0
    final_completed_records: int = 0
    final_scheduler_jobs: int = 0
    #: Sum of ``account.running_jobs`` after the drain — must be 0 if
    #: enforcement accounting balances.
    running_jobs_after: int = 0
    #: Contacts of started jobs, for post-run management probes.
    contacts: List[Tuple[int, JobContact]] = field(default_factory=list)


def churn_rsl(config: ChurnConfig) -> str:
    """The RSL every churn job submits."""
    return (
        f"&(executable=sim)(count=1)(runtime={config.runtime:g})"
        f"(jobtag=CHURN)"
    )


def build_churn_service(
    config: ChurnConfig,
    service_config: Optional[ServiceConfig] = None,
) -> Tuple[GramService, List[GramClient]]:
    """A wired service plus one enrolled client per churn user.

    The default service runs the extended architecture with the stock
    initiator rule (no policies installed), static-account
    enforcement, and reaping on — callers pass their own
    :class:`ServiceConfig` to change retention, caps, or policy.
    """
    service = GramService(
        service_config
        or ServiceConfig(host="churn.example.org", node_count=16, cpus_per_node=4)
    )
    clients: List[GramClient] = []
    for index in range(config.users):
        identity = f"{CHURN_PREFIX}/CN=User {index:05d}"
        credential = service.add_user(identity, f"churn{index:05d}")
        clients.append(GramClient(credential, service.gatekeeper))
    return service, clients


def run_churn(
    service: GramService,
    clients: List[GramClient],
    config: ChurnConfig,
    stats: Optional[ChurnStats] = None,
) -> ChurnStats:
    """Drive *config.cycles* submit/poll/cancel cycles, then drain.

    Passing an existing *stats* continues accumulating into it — the
    lifecycle benchmark runs several stages against one service to
    watch live state stay flat while cumulative jobs grow.
    """
    rng = random.Random(config.seed)
    stats = stats if stats is not None else ChurnStats()
    gatekeeper = service.gatekeeper
    scheduler = service.scheduler
    rsl = churn_rsl(config)

    for cycle in range(config.cycles):
        client = clients[cycle % len(clients)]
        response = client.submit(rsl)
        stats.submitted += 1
        if response.code is GramErrorCode.RESOURCE_BUSY:
            stats.rejected_busy += 1
        elif response.ok:
            stats.started += 1
            assert response.contact is not None
            stats.contacts.append((cycle, response.contact))
            for _ in range(config.polls_per_job):
                client.status(response.contact)
                stats.polls += 1
            if rng.random() < config.cancel_fraction:
                if client.cancel(response.contact).ok:
                    stats.cancelled += 1
        else:
            stats.errors += 1
        stats.max_live_jmis = max(
            stats.max_live_jmis, gatekeeper.active_job_managers
        )
        stats.max_terminal_callbacks = max(
            stats.max_terminal_callbacks, scheduler.terminal_callback_count
        )
        service.run(config.step)

    # Drain: give every in-flight job time to finish.
    service.run(config.runtime * 2 + config.step)
    stats.final_live_jmis = gatekeeper.active_job_managers
    stats.final_terminal_callbacks = scheduler.terminal_callback_count
    stats.final_completed_records = gatekeeper.completed_jobs
    stats.final_scheduler_jobs = len(scheduler.jobs())
    stats.running_jobs_after = sum(
        account.running_jobs for account in service.accounts.accounts()
    )
    return stats


def build_sharded_churn(
    config: ChurnConfig,
    service_config: Optional[ServiceConfig] = None,
) -> Tuple[ShardedGramService, List[GramClient]]:
    """A sharded service plus one enrolled client per churn user.

    The sharded sibling of :func:`build_churn_service`: same user
    population, same defaults, but the service is a
    :class:`~repro.gram.dispatch.ShardedGramService` built from
    ``service_config.shards``/``dispatch``.
    """
    service = ShardedGramService(
        service_config
        or ServiceConfig(host="churn.example.org", node_count=16, cpus_per_node=4)
    )
    clients: List[GramClient] = []
    for index in range(config.users):
        identity = f"{CHURN_PREFIX}/CN=User {index:05d}"
        credential = service.add_user(identity, f"churn{index:05d}")
        clients.append(GramClient(credential, service.gatekeeper))
    return service, clients


def run_sharded_churn(
    service: ShardedGramService,
    clients: List[GramClient],
    config: ChurnConfig,
    stats: Optional[ChurnStats] = None,
) -> ChurnStats:
    """Drive the churn loop against a sharded service, in waves.

    Each wave submits one job per shard-pool slot through the
    asynchronous dispatch seam, so under the thread executor distinct
    shards serve their submissions concurrently; polls and cancels for
    the started jobs dispatch the same way.  The wave order and the
    cancel lottery are seeded exactly like :func:`run_churn`, so a
    one-shard inline run observes the same request stream the plain
    driver would issue.
    """
    rng = random.Random(config.seed)
    stats = stats if stats is not None else ChurnStats()
    gatekeeper = service.gatekeeper
    rsl = churn_rsl(config)
    wave_size = max(1, len(service.shards))

    cycle = 0
    while cycle < config.cycles:
        wave = [
            clients[(cycle + offset) % len(clients)]
            for offset in range(min(wave_size, config.cycles - cycle))
        ]
        cycle += len(wave)
        submits = [
            (client, gatekeeper.submit_async(client.credential, rsl))
            for client in wave
        ]
        started: List[Tuple[GramClient, JobContact]] = []
        for client, future in submits:
            response = future.result()
            stats.submitted += 1
            if response.code is GramErrorCode.RESOURCE_BUSY:
                stats.rejected_busy += 1
            elif response.ok:
                stats.started += 1
                assert response.contact is not None
                stats.contacts.append((cycle, response.contact))
                started.append((client, response.contact))
            else:
                stats.errors += 1
        for _ in range(config.polls_per_job):
            polls = [
                gatekeeper.manage_async(
                    client.credential, contact, "information"
                )
                for client, contact in started
            ]
            for future in polls:
                future.result()
                stats.polls += 1
        cancels = [
            (gatekeeper.manage_async(client.credential, contact, "cancel"))
            for client, contact in started
            if rng.random() < config.cancel_fraction
        ]
        for future in cancels:
            if future.result().ok:
                stats.cancelled += 1
        stats.max_live_jmis = max(
            stats.max_live_jmis, gatekeeper.active_job_managers
        )
        stats.max_terminal_callbacks = max(
            stats.max_terminal_callbacks,
            sum(s.scheduler.terminal_callback_count for s in service.shards),
        )
        service.run(config.step)

    service.run(config.runtime * 2 + config.step)
    stats.final_live_jmis = gatekeeper.active_job_managers
    stats.final_terminal_callbacks = sum(
        s.scheduler.terminal_callback_count for s in service.shards
    )
    stats.final_completed_records = gatekeeper.completed_jobs
    stats.final_scheduler_jobs = sum(
        len(s.scheduler.jobs()) for s in service.shards
    )
    stats.running_jobs_after = sum(
        account.running_jobs
        for shard in service.shards
        for account in shard.accounts.accounts()
    )
    return stats


def churn_live_bound(config: ChurnConfig) -> int:
    """A generous ceiling on simultaneously live JMIs for *config*.

    Jobs live ``runtime`` sim-seconds (queue time excluded) and one is
    submitted every ``step``, so steady state holds about
    ``runtime / step`` live jobs; the bound doubles that and adds
    slack for queueing so the leak guards fail on leaks, not jitter.
    """
    steady = config.runtime / max(config.step, 1e-9)
    return int(2 * steady + 10)
