"""XACML policy (de)serialization to an XACML-3.0-flavoured XML.

The point of bridging to XACML (§6.3) is that policies become
exchangeable with standard tooling, so the bridge is only complete if
policies can actually leave the process.  This module renders
:class:`~repro.xacml.model.XACMLPolicy` objects to XML and parses them
back, round-trip-safe for everything the RSL bridge produces.

The element vocabulary follows the XACML 3.0 schema (Policy / Target /
AnyOf / AllOf / Match / Rule / Condition / Apply / AttributeDesignator
/ AttributeValue); conditions map to nested ``Apply`` elements with
function ids in a private namespace mirroring the condition classes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.xacml.conditions import (
    AllValuesIn,
    AllValuesSatisfy,
    And,
    AnyValueIn,
    AttributeReference,
    Condition,
    Not,
    Or,
    Present,
    TrueCondition,
)
from repro.xacml.model import (
    AllOf,
    AnyOf,
    AttributeDesignator,
    Category,
    CombiningAlgorithm,
    Match,
    Rule,
    RuleEffect,
    Target,
    XACMLPolicy,
)

_FN = "urn:repro:function:"

_COMBINING_IDS = {
    CombiningAlgorithm.DENY_OVERRIDES: (
        "urn:oasis:names:tc:xacml:3.0:rule-combining-algorithm:deny-overrides"
    ),
    CombiningAlgorithm.PERMIT_OVERRIDES: (
        "urn:oasis:names:tc:xacml:3.0:rule-combining-algorithm:permit-overrides"
    ),
    CombiningAlgorithm.FIRST_APPLICABLE: (
        "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:first-applicable"
    ),
}
_COMBINING_BY_ID = {value: key for key, value in _COMBINING_IDS.items()}

_MATCH_IDS = {
    "string-equal": "urn:oasis:names:tc:xacml:1.0:function:string-equal",
    "string-starts-with": "urn:oasis:names:tc:xacml:3.0:function:string-starts-with",
}
_MATCH_BY_ID = {value: key for key, value in _MATCH_IDS.items()}


class XACMLSerializationError(ValueError):
    """Unserializable condition or malformed XML."""


# --------------------------------------------------------------------------
# serialization
# --------------------------------------------------------------------------


def policy_to_xml(policy: XACMLPolicy) -> str:
    """Render *policy* as pretty-printed XML text."""
    root = ET.Element(
        "Policy",
        {
            "PolicyId": policy.policy_id,
            "RuleCombiningAlgId": _COMBINING_IDS[policy.combining],
        },
    )
    root.append(_target_element(policy.target))
    for rule in policy.rules:
        root.append(_rule_element(rule))
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _target_element(target: Target) -> ET.Element:
    element = ET.Element("Target")
    for any_of in target.any_ofs:
        any_element = ET.SubElement(element, "AnyOf")
        for all_of in any_of.all_ofs:
            all_element = ET.SubElement(any_element, "AllOf")
            for match in all_of.matches:
                match_element = ET.SubElement(
                    all_element, "Match", {"MatchId": _MATCH_IDS[match.match_id]}
                )
                value = ET.SubElement(match_element, "AttributeValue")
                value.text = match.value
                match_element.append(_designator_element(match.designator))
    return element


def _designator_element(designator: AttributeDesignator) -> ET.Element:
    return ET.Element(
        "AttributeDesignator",
        {
            "Category": designator.category.value,
            "AttributeId": designator.attribute_id,
        },
    )


def _rule_element(rule: Rule) -> ET.Element:
    element = ET.Element(
        "Rule", {"RuleId": rule.rule_id, "Effect": rule.effect.value}
    )
    element.append(_target_element(rule.target))
    if rule.condition is not None:
        condition_element = ET.SubElement(element, "Condition")
        condition_element.append(_condition_element(rule.condition))
    return element


def _condition_element(condition: Condition) -> ET.Element:
    if isinstance(condition, TrueCondition):
        return ET.Element("Apply", {"FunctionId": _FN + "true"})
    if isinstance(condition, And):
        element = ET.Element("Apply", {"FunctionId": _FN + "and"})
        for part in condition.parts:
            element.append(_condition_element(part))
        return element
    if isinstance(condition, Or):
        element = ET.Element("Apply", {"FunctionId": _FN + "or"})
        for part in condition.parts:
            element.append(_condition_element(part))
        return element
    if isinstance(condition, Not):
        element = ET.Element("Apply", {"FunctionId": _FN + "not"})
        element.append(_condition_element(condition.part))
        return element
    if isinstance(condition, Present):
        element = ET.Element("Apply", {"FunctionId": _FN + "present"})
        element.append(_designator_element(condition.designator))
        return element
    if isinstance(condition, (AnyValueIn, AllValuesIn)):
        kind = "any-value-in" if isinstance(condition, AnyValueIn) else "all-values-in"
        element = ET.Element(
            "Apply",
            {"FunctionId": _FN + kind, "AttributeName": condition.attribute_name},
        )
        element.append(_designator_element(condition.designator))
        for value in condition.values:
            if isinstance(value, AttributeReference):
                ref = ET.SubElement(element, "AttributeReference")
                ref.append(_designator_element(value.designator))
            else:
                literal = ET.SubElement(element, "AttributeValue")
                literal.text = value
        return element
    if isinstance(condition, AllValuesSatisfy):
        element = ET.Element(
            "Apply",
            {
                "FunctionId": _FN + "all-values-satisfy",
                "Operator": condition.op,
                "Bound": repr(condition.bound),
            },
        )
        element.append(_designator_element(condition.designator))
        return element
    raise XACMLSerializationError(
        f"cannot serialize condition {type(condition).__name__}"
    )


# --------------------------------------------------------------------------
# parsing
# --------------------------------------------------------------------------


def policy_from_xml(text: str) -> XACMLPolicy:
    """Parse XML produced by :func:`policy_to_xml`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XACMLSerializationError(f"malformed XML: {exc}")
    if root.tag != "Policy":
        raise XACMLSerializationError(f"expected <Policy>, found <{root.tag}>")
    combining_id = root.get("RuleCombiningAlgId", "")
    combining = _COMBINING_BY_ID.get(combining_id)
    if combining is None:
        raise XACMLSerializationError(
            f"unknown combining algorithm {combining_id!r}"
        )
    target = _parse_target(root.find("Target"))
    rules = tuple(_parse_rule(element) for element in root.findall("Rule"))
    return XACMLPolicy(
        policy_id=root.get("PolicyId", "unnamed"),
        rules=rules,
        combining=combining,
        target=target,
    )


def _parse_target(element: Optional[ET.Element]) -> Target:
    if element is None:
        return Target.empty()
    any_ofs = []
    for any_element in element.findall("AnyOf"):
        all_ofs = []
        for all_element in any_element.findall("AllOf"):
            matches = []
            for match_element in all_element.findall("Match"):
                match_id = _MATCH_BY_ID.get(match_element.get("MatchId", ""))
                if match_id is None:
                    raise XACMLSerializationError(
                        f"unknown MatchId {match_element.get('MatchId')!r}"
                    )
                value_element = match_element.find("AttributeValue")
                designator = _parse_designator(
                    match_element.find("AttributeDesignator")
                )
                matches.append(
                    Match(
                        designator=designator,
                        match_id=match_id,
                        value=(value_element.text or "") if value_element is not None else "",
                    )
                )
            all_ofs.append(AllOf(matches=tuple(matches)))
        any_ofs.append(AnyOf(all_ofs=tuple(all_ofs)))
    return Target(any_ofs=tuple(any_ofs))


def _parse_designator(element: Optional[ET.Element]) -> AttributeDesignator:
    if element is None:
        raise XACMLSerializationError("missing AttributeDesignator")
    category_value = element.get("Category", "")
    for category in Category:
        if category.value == category_value:
            return AttributeDesignator(
                category=category,
                attribute_id=element.get("AttributeId", ""),
            )
    raise XACMLSerializationError(f"unknown category {category_value!r}")


def _parse_rule(element: ET.Element) -> Rule:
    effect_text = element.get("Effect", "")
    try:
        effect = RuleEffect(effect_text)
    except ValueError:
        raise XACMLSerializationError(f"unknown rule effect {effect_text!r}")
    condition = None
    condition_element = element.find("Condition")
    if condition_element is not None and len(condition_element):
        condition = _parse_condition(condition_element[0])
    return Rule(
        rule_id=element.get("RuleId", "unnamed"),
        effect=effect,
        target=_parse_target(element.find("Target")),
        condition=condition,
    )


def _parse_condition(element: ET.Element) -> Condition:
    function = element.get("FunctionId", "")
    if not function.startswith(_FN):
        raise XACMLSerializationError(f"unknown FunctionId {function!r}")
    name = function[len(_FN):]
    children = list(element)
    if name == "true":
        return TrueCondition()
    if name in ("and", "or"):
        parts = tuple(_parse_condition(child) for child in children)
        return And(parts=parts) if name == "and" else Or(parts=parts)
    if name == "not":
        if len(children) != 1:
            raise XACMLSerializationError("not() needs exactly one operand")
        return Not(part=_parse_condition(children[0]))
    if name == "present":
        return Present(designator=_parse_designator(_only_designator(element)))
    if name in ("any-value-in", "all-values-in"):
        designator = _parse_designator(_only_designator(element))
        values = []
        for child in children:
            if child.tag == "AttributeValue":
                values.append(child.text or "")
            elif child.tag == "AttributeReference":
                values.append(
                    AttributeReference(
                        designator=_parse_designator(
                            child.find("AttributeDesignator")
                        )
                    )
                )
        cls = AnyValueIn if name == "any-value-in" else AllValuesIn
        return cls(
            designator=designator,
            attribute_name=element.get("AttributeName", ""),
            values=tuple(values),
        )
    if name == "all-values-satisfy":
        return AllValuesSatisfy(
            designator=_parse_designator(_only_designator(element)),
            op=element.get("Operator", "<"),
            bound=float(element.get("Bound", "0")),
        )
    raise XACMLSerializationError(f"unknown condition function {name!r}")


def _only_designator(element: ET.Element) -> Optional[ET.Element]:
    return element.find("AttributeDesignator")
