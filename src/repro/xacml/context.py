"""Request contexts: attribute bags built from GRAM requests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.attributes import ACTION
from repro.core.matching import _request_values
from repro.core.request import AuthorizationRequest
from repro.xacml.model import (
    ACTION_ID,
    SUBJECT_ID,
    AttributeDesignator,
    Category,
)


@dataclass
class RequestContext:
    """Attribute bags by (category, attribute-id)."""

    bags: Dict[Tuple[Category, str], Tuple[str, ...]] = field(default_factory=dict)

    def add(self, designator: AttributeDesignator, *values: str) -> None:
        key = (designator.category, designator.attribute_id)
        self.bags[key] = self.bags.get(key, ()) + tuple(values)

    def bag(self, designator) -> Tuple[str, ...]:
        return self.bags.get(
            (designator.category, designator.attribute_id), ()
        )

    @classmethod
    def from_request(cls, request: AuthorizationRequest) -> "RequestContext":
        """Build the context the bridge-translated policies expect.

        * subject-id — the requester's DN;
        * action-id — the (computed, unspoofable) action;
        * one resource bag per job-description attribute, using the
          same value-extraction rules as the native evaluator (only
          equality relations supply values; empty/NULL counts as
          absent);
        * jobowner in the resource category, from the computed value.
        """
        context = cls()
        context.add(SUBJECT_ID, str(request.requester))
        context.add(ACTION_ID, str(request.action))
        spec = request.evaluation_specification()
        for attribute in spec.attributes:
            if attribute == ACTION:
                continue  # carried in the action category instead
            values = _request_values(spec, attribute)
            if values:
                context.add(
                    AttributeDesignator(Category.RESOURCE, attribute), *values
                )
        return context
