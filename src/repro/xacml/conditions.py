"""Condition expression trees over attribute bags.

XACML conditions are boolean expressions over functions of attribute
bags.  The subset here covers everything the RSL policy language
needs — presence tests, membership (with the same numeric/
case-sensitivity semantics as :mod:`repro.core.matching`, so the
bridge translation is decision-preserving), and ordered comparisons —
plus the standard And/Or/Not combinators.

A condition evaluates against a *bag resolver*: a callable mapping an
:class:`AttributeDesignator`-like object to a tuple of string values.
Values may be literals or attribute **references** (resolved to the
first value of another bag), which is how ``(jobowner = self)``
translates: compare the jobowner bag against the subject-id bag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

from repro.core.matching import _as_number, _texts_equal

BagResolver = Callable[[object], Tuple[str, ...]]


@dataclass(frozen=True)
class AttributeReference:
    """A value resolved from another attribute bag (first element)."""

    designator: object  # AttributeDesignator; kept loose to avoid cycles

    def resolve(self, bags: BagResolver) -> Optional[str]:
        values = bags(self.designator)
        return values[0] if values else None


ValueOrRef = Union[str, AttributeReference]


def _resolve(value: ValueOrRef, bags: BagResolver) -> Optional[str]:
    if isinstance(value, AttributeReference):
        return value.resolve(bags)
    return value


class Condition:
    """Base class; subclasses implement :meth:`holds`."""

    def holds(self, bags: BagResolver) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class And(Condition):
    parts: Tuple[Condition, ...]

    def holds(self, bags: BagResolver) -> bool:
        return all(part.holds(bags) for part in self.parts)


@dataclass(frozen=True)
class Or(Condition):
    parts: Tuple[Condition, ...]

    def holds(self, bags: BagResolver) -> bool:
        return any(part.holds(bags) for part in self.parts)


@dataclass(frozen=True)
class Not(Condition):
    part: Condition

    def holds(self, bags: BagResolver) -> bool:
        return not self.part.holds(bags)


@dataclass(frozen=True)
class TrueCondition(Condition):
    def holds(self, bags: BagResolver) -> bool:
        return True


@dataclass(frozen=True)
class Present(Condition):
    """The attribute bag is non-empty."""

    designator: object

    def holds(self, bags: BagResolver) -> bool:
        return bool(bags(self.designator))


@dataclass(frozen=True)
class AnyValueIn(Condition):
    """Some bag value equals some listed value (type-aware equality)."""

    designator: object
    attribute_name: str
    values: Tuple[ValueOrRef, ...]

    def holds(self, bags: BagResolver) -> bool:
        bag = bags(self.designator)
        for item in bag:
            for candidate in self.values:
                resolved = _resolve(candidate, bags)
                if resolved is not None and _texts_equal(
                    self.attribute_name, item, resolved
                ):
                    return True
        return False


@dataclass(frozen=True)
class AllValuesIn(Condition):
    """Every bag value equals some listed value (the EQ semantics)."""

    designator: object
    attribute_name: str
    values: Tuple[ValueOrRef, ...]

    def holds(self, bags: BagResolver) -> bool:
        bag = bags(self.designator)
        for item in bag:
            if not any(
                (resolved := _resolve(candidate, bags)) is not None
                and _texts_equal(self.attribute_name, item, resolved)
                for candidate in self.values
            ):
                return False
        return True


@dataclass(frozen=True)
class AllValuesSatisfy(Condition):
    """Every bag value is numeric and satisfies ``value <op> bound``."""

    designator: object
    op: str  # "<", "<=", ">", ">="
    bound: float

    _COMPARATORS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def holds(self, bags: BagResolver) -> bool:
        compare = self._COMPARATORS.get(self.op)
        if compare is None:
            raise ValueError(f"unknown comparison operator {self.op!r}")
        bag = bags(self.designator)
        for item in bag:
            number = _as_number(item)
            if number is None or not compare(number, self.bound):
                return False
        return True
