"""XACML structural model: categories, targets, rules, policies."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.xacml.conditions import Condition


class Category(enum.Enum):
    """Attribute categories (XACML's access-subject et al.)."""

    SUBJECT = "urn:oasis:names:tc:xacml:1.0:subject-category:access-subject"
    ACTION = "urn:oasis:names:tc:xacml:3.0:attribute-category:action"
    RESOURCE = "urn:oasis:names:tc:xacml:3.0:attribute-category:resource"
    ENVIRONMENT = "urn:oasis:names:tc:xacml:3.0:attribute-category:environment"


@dataclass(frozen=True)
class AttributeDesignator:
    """Names one attribute bag in the request context."""

    category: Category
    attribute_id: str

    def __str__(self) -> str:
        return f"{self.category.name.lower()}:{self.attribute_id}"


#: Well-known attribute ids.
SUBJECT_ID = AttributeDesignator(Category.SUBJECT, "subject-id")
ACTION_ID = AttributeDesignator(Category.ACTION, "action-id")


@dataclass(frozen=True)
class Match:
    """One target match: prefix or equality on an attribute bag.

    ``match_id`` selects the function, in the spirit of XACML's
    urn-identified match functions:

    * ``string-equal`` — some bag value equals ``value`` exactly;
    * ``string-starts-with`` — some bag value starts with ``value``
      (how DN-prefix group subjects translate).
    """

    designator: AttributeDesignator
    match_id: str
    value: str

    def matches(self, bag: Tuple[str, ...]) -> bool:
        if self.match_id == "string-equal":
            return any(item == self.value for item in bag)
        if self.match_id == "string-starts-with":
            return any(item.startswith(self.value) for item in bag)
        raise ValueError(f"unknown match function {self.match_id!r}")


@dataclass(frozen=True)
class AllOf:
    """A conjunction of matches."""

    matches: Tuple[Match, ...]


@dataclass(frozen=True)
class AnyOf:
    """A disjunction of AllOf conjunctions."""

    all_ofs: Tuple[AllOf, ...]


@dataclass(frozen=True)
class Target:
    """Applicability filter: every AnyOf must have a matching AllOf.

    An empty target matches every request (XACML semantics).
    """

    any_ofs: Tuple[AnyOf, ...] = ()

    @classmethod
    def empty(cls) -> "Target":
        return cls(any_ofs=())


class RuleEffect(enum.Enum):
    PERMIT = "Permit"
    DENY = "Deny"


@dataclass(frozen=True)
class Rule:
    """One XACML rule: target + optional condition + effect."""

    rule_id: str
    effect: RuleEffect
    target: Target = field(default_factory=Target.empty)
    condition: Optional[Condition] = None

    def __str__(self) -> str:
        return f"Rule[{self.rule_id} -> {self.effect.value}]"


class CombiningAlgorithm(enum.Enum):
    DENY_OVERRIDES = "deny-overrides"
    PERMIT_OVERRIDES = "permit-overrides"
    FIRST_APPLICABLE = "first-applicable"


@dataclass(frozen=True)
class XACMLPolicy:
    """A policy: target, ordered rules, combining algorithm."""

    policy_id: str
    rules: Tuple[Rule, ...]
    combining: CombiningAlgorithm = CombiningAlgorithm.DENY_OVERRIDES
    target: Target = field(default_factory=Target.empty)

    def __len__(self) -> int:
        return len(self.rules)
