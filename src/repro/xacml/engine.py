"""The XACML policy decision point."""

from __future__ import annotations

import enum
from typing import List

from repro.xacml.context import RequestContext
from repro.xacml.model import (
    CombiningAlgorithm,
    Rule,
    RuleEffect,
    Target,
    XACMLPolicy,
)


class XACMLDecision(enum.Enum):
    PERMIT = "Permit"
    DENY = "Deny"
    NOT_APPLICABLE = "NotApplicable"
    INDETERMINATE = "Indeterminate"


def _target_matches(target: Target, context: RequestContext) -> bool:
    for any_of in target.any_ofs:
        if not any(
            all(match.matches(context.bag(match.designator)) for match in all_of.matches)
            for all_of in any_of.all_ofs
        ):
            return False
    return True


def _evaluate_rule(rule: Rule, context: RequestContext) -> XACMLDecision:
    if not _target_matches(rule.target, context):
        return XACMLDecision.NOT_APPLICABLE
    if rule.condition is not None:
        try:
            satisfied = rule.condition.holds(context.bag)
        except Exception:
            return XACMLDecision.INDETERMINATE
        if not satisfied:
            return XACMLDecision.NOT_APPLICABLE
    return (
        XACMLDecision.PERMIT
        if rule.effect is RuleEffect.PERMIT
        else XACMLDecision.DENY
    )


def evaluate_policy(
    policy: XACMLPolicy, context: RequestContext
) -> XACMLDecision:
    """Evaluate *policy* under its rule-combining algorithm."""
    if not _target_matches(policy.target, context):
        return XACMLDecision.NOT_APPLICABLE

    outcomes: List[XACMLDecision] = []
    for rule in policy.rules:
        outcome = _evaluate_rule(rule, context)
        if policy.combining is CombiningAlgorithm.FIRST_APPLICABLE:
            if outcome in (XACMLDecision.PERMIT, XACMLDecision.DENY):
                return outcome
            if outcome is XACMLDecision.INDETERMINATE:
                return outcome
            continue
        outcomes.append(outcome)

    if policy.combining is CombiningAlgorithm.FIRST_APPLICABLE:
        return XACMLDecision.NOT_APPLICABLE

    if policy.combining is CombiningAlgorithm.DENY_OVERRIDES:
        if XACMLDecision.DENY in outcomes:
            return XACMLDecision.DENY
        if XACMLDecision.INDETERMINATE in outcomes:
            return XACMLDecision.INDETERMINATE
        if XACMLDecision.PERMIT in outcomes:
            return XACMLDecision.PERMIT
        return XACMLDecision.NOT_APPLICABLE

    # PERMIT_OVERRIDES
    if XACMLDecision.PERMIT in outcomes:
        return XACMLDecision.PERMIT
    if XACMLDecision.INDETERMINATE in outcomes:
        return XACMLDecision.INDETERMINATE
    if XACMLDecision.DENY in outcomes:
        return XACMLDecision.DENY
    return XACMLDecision.NOT_APPLICABLE
