"""A miniature XACML policy engine (paper §6.3 future work).

The paper concludes that its RSL-based policy syntax "is not a
standard policy language" and reports investigating XACML as a
replacement.  This package implements that investigation: a small but
structurally faithful XACML-style engine —

* attribute **categories** (subject / action / resource /
  environment) with multi-valued attribute **bags**,
* **targets** (AnyOf / AllOf match lists) selecting applicable rules,
* **rules** with Permit/Deny effects and boolean **condition**
  expression trees,
* the standard **rule-combining algorithms** (deny-overrides,
  permit-overrides, first-applicable),

plus a **bridge** that translates the paper's RSL-based policies into
XACML policies with identical decisions (verified by agreement tests
and the B-SRC bench), and a request-context adapter from
:class:`~repro.core.request.AuthorizationRequest`.
"""

from repro.xacml.model import (
    AllOf,
    AnyOf,
    AttributeDesignator,
    Category,
    CombiningAlgorithm,
    Match,
    Rule,
    RuleEffect,
    Target,
    XACMLPolicy,
)
from repro.xacml.conditions import (
    AllValuesSatisfy,
    AllValuesIn,
    And,
    AnyValueIn,
    Condition,
    Not,
    Or,
    Present,
)
from repro.xacml.context import RequestContext
from repro.xacml.engine import XACMLDecision, evaluate_policy
from repro.xacml.bridge import XACMLEvaluator, xacml_callout, xacml_from_policy
from repro.xacml.serialize import (
    XACMLSerializationError,
    policy_from_xml,
    policy_to_xml,
)

__all__ = [
    "Category",
    "AttributeDesignator",
    "Match",
    "AllOf",
    "AnyOf",
    "Target",
    "RuleEffect",
    "Rule",
    "CombiningAlgorithm",
    "XACMLPolicy",
    "Condition",
    "And",
    "Or",
    "Not",
    "Present",
    "AnyValueIn",
    "AllValuesIn",
    "AllValuesSatisfy",
    "RequestContext",
    "XACMLDecision",
    "evaluate_policy",
    "xacml_from_policy",
    "xacml_callout",
    "XACMLEvaluator",
    "policy_to_xml",
    "policy_from_xml",
    "XACMLSerializationError",
]
