"""Bridge: RSL-based policies → XACML, decision-preserving.

Grant assertions become Permit rules (subject in the rule target, the
RSL relations as a condition conjunction).  Requirement statements
become Deny rules whose condition is *guard ∧ ¬body* — a matching
request that violates the obligation is denied, and deny-overrides
makes the obligation bite regardless of any permit.

Translation mirrors :mod:`repro.core.matching` relation semantics
exactly (including ``NULL``, ``self``, numeric equality and the
case-insensitive attributes), so decisions agree with the native
evaluator — asserted by tests and the B-SRC bench.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.attributes import ACTION, JOBOWNER, NULL, SELF
from repro.core.decision import Decision
from repro.core.model import Policy, PolicyStatement, StatementKind
from repro.core.request import AuthorizationRequest
from repro.rsl.ast import Relation, Relop, Specification, VariableReference
from repro.xacml.conditions import (
    AllValuesIn,
    AllValuesSatisfy,
    And,
    AnyValueIn,
    AttributeReference,
    Condition,
    Not,
    Present,
    TrueCondition,
)
from repro.xacml.context import RequestContext
from repro.xacml.engine import XACMLDecision, evaluate_policy
from repro.xacml.model import (
    ACTION_ID,
    SUBJECT_ID,
    AllOf,
    AnyOf,
    AttributeDesignator,
    Category,
    CombiningAlgorithm,
    Match,
    Rule,
    RuleEffect,
    Target,
    XACMLPolicy,
)

_ALWAYS_FALSE = Not(TrueCondition())


def _designator_for(attribute: str) -> AttributeDesignator:
    if attribute == ACTION:
        return ACTION_ID
    return AttributeDesignator(Category.RESOURCE, attribute)


def _values_for(relation: Relation) -> Optional[Tuple[object, ...]]:
    """Literal/reference values; None when untranslatable."""
    out: List[object] = []
    for value in relation.values:
        if isinstance(value, VariableReference):
            return None  # native evaluation fails closed; so do we
        text = str(value)
        if text == SELF and relation.attribute == JOBOWNER:
            out.append(AttributeReference(SUBJECT_ID))
        else:
            out.append(text)
    return tuple(out)


def _condition_for_relation(relation: Relation) -> Condition:
    designator = _designator_for(relation.attribute)
    values = _values_for(relation)
    if values is None:
        return _ALWAYS_FALSE

    literal_texts = [v for v in values if isinstance(v, str)]

    if relation.op is Relop.EQ:
        if NULL in literal_texts:
            return Not(Present(designator))
        return And(
            parts=(
                Present(designator),
                AllValuesIn(designator, relation.attribute, values),
            )
        )
    if relation.op is Relop.NEQ:
        if NULL in literal_texts:
            return Present(designator)
        return Not(AnyValueIn(designator, relation.attribute, values))

    # Ordering relations need exactly one numeric bound.
    if len(values) != 1 or not isinstance(values[0], str):
        return _ALWAYS_FALSE
    try:
        bound = float(values[0])
    except ValueError:
        return _ALWAYS_FALSE
    return And(
        parts=(
            Present(designator),
            AllValuesSatisfy(designator, relation.op.value, bound),
        )
    )


def _condition_for_spec(spec: Specification) -> Condition:
    parts = tuple(_condition_for_relation(relation) for relation in spec)
    if not parts:
        return TrueCondition()
    if len(parts) == 1:
        return parts[0]
    return And(parts=parts)


def _subject_target(statement: PolicyStatement) -> Target:
    match_id = "string-equal" if statement.subject.exact else "string-starts-with"
    return Target(
        any_ofs=(
            AnyOf(
                all_ofs=(
                    AllOf(
                        matches=(
                            Match(
                                designator=SUBJECT_ID,
                                match_id=match_id,
                                value=statement.subject.pattern,
                            ),
                        )
                    ),
                )
            ),
        )
    )


def xacml_from_policy(policy: Policy, policy_id: str = "") -> XACMLPolicy:
    """Translate *policy* into an XACML policy (deny-overrides)."""
    rules: List[Rule] = []
    for statement_index, statement in enumerate(policy):
        target = _subject_target(statement)
        for assertion_index, assertion in enumerate(statement.assertions):
            rule_id = f"s{statement_index}a{assertion_index}"
            if statement.kind is StatementKind.GRANT:
                rules.append(
                    Rule(
                        rule_id=f"permit-{rule_id}",
                        effect=RuleEffect.PERMIT,
                        target=target,
                        condition=_condition_for_spec(assertion.spec),
                    )
                )
            else:
                guard = _condition_for_spec(assertion.guard())
                body = _condition_for_spec(assertion.body())
                rules.append(
                    Rule(
                        rule_id=f"obligation-{rule_id}",
                        effect=RuleEffect.DENY,
                        target=target,
                        condition=And(parts=(guard, Not(body))),
                    )
                )
    return XACMLPolicy(
        policy_id=policy_id or policy.name or "bridged",
        rules=tuple(rules),
        combining=CombiningAlgorithm.DENY_OVERRIDES,
    )


class XACMLEvaluator:
    """Adapter giving an XACML policy the native PDP interface."""

    def __init__(self, policy: XACMLPolicy, source: str = "") -> None:
        self.policy = policy
        self.source = source or policy.policy_id
        #: XACML policies here are immutable; bump when swapping the
        #: policy so epoch-keyed decision caches invalidate.
        self.policy_epoch = 0

    def replace_policy(self, policy: XACMLPolicy) -> None:
        self.policy = policy
        self.policy_epoch += 1

    def evaluate(self, request: AuthorizationRequest) -> Decision:
        context = RequestContext.from_request(request)
        outcome = evaluate_policy(self.policy, context)
        if outcome is XACMLDecision.PERMIT:
            return Decision.permit(
                reason="XACML permit (deny-overrides)", source=self.source
            )
        if outcome is XACMLDecision.DENY:
            return Decision.deny(
                reasons=("XACML deny (obligation or explicit rule)",),
                source=self.source,
            )
        if outcome is XACMLDecision.NOT_APPLICABLE:
            return Decision.not_applicable(
                reason="no XACML rule applies", source=self.source
            )
        return Decision.indeterminate("XACML evaluation error", source=self.source)


def xacml_callout(policy: Policy, source: str = "xacml"):
    """A GRAM authorization callout backed by the bridged policy."""
    evaluator = XACMLEvaluator(xacml_from_policy(policy), source=source)

    def callout(request: AuthorizationRequest) -> Decision:
        decision = evaluator.evaluate(request)
        if decision.effect.value == "not-applicable":
            # Default deny, matching the native evaluator's contract.
            return Decision.deny(
                reasons=(f"no XACML rule applies to {request.requester}",),
                source=source,
            )
        return decision

    callout.__name__ = f"xacml:{source}"
    return callout
