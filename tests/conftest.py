"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_policy
from repro.gsi.credentials import CertificateAuthority
from repro.workloads.scenarios import FIGURE3_POLICY_TEXT

BO = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu"
KATE = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey"
OUTSIDER = "/O=Elsewhere/OU=unknown/CN=Eve Mallory"
GROUP_PREFIX = "/O=Grid/O=Globus/OU=mcs.anl.gov"


@pytest.fixture
def figure3_policy():
    """The paper's Figure 3 policy, parsed fresh per test."""
    return parse_policy(FIGURE3_POLICY_TEXT, name="figure3")


@pytest.fixture
def ca():
    """A trust anchor with deterministic lifetime starting at t=0."""
    return CertificateAuthority("/O=Grid/CN=Test CA", now=0.0)


@pytest.fixture
def bo_credential(ca):
    return ca.issue(BO, now=0.0)


@pytest.fixture
def kate_credential(ca):
    return ca.issue(KATE, now=0.0)
