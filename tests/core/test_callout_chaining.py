"""Callout chain ordering and multi-callout configuration files."""

import pytest

from repro.core.builtin_callouts import permit_all
from repro.core.callout import GRAM_AUTHZ_CALLOUT, CalloutRegistry
from repro.core.decision import Decision
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification

ALICE = "/O=Grid/OU=chain/CN=Alice"


@pytest.fixture
def request_():
    return AuthorizationRequest.start(ALICE, parse_specification("&(executable=x)"))


class TestChainOrdering:
    def test_callouts_invoked_in_configuration_order(self, request_):
        calls = []

        def make(name):
            def callout(request):
                calls.append(name)
                return Decision.permit(source=name)

            return callout

        registry = CalloutRegistry()
        for name in ("first", "second", "third"):
            registry.register(GRAM_AUTHZ_CALLOUT, make(name), label=name)
        registry.invoke(GRAM_AUTHZ_CALLOUT, request_)
        assert calls == ["first", "second", "third"]

    def test_labels_preserved_in_order(self, request_):
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all, label="envelope")
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all, label="fine-grain")
        assert registry.callout_labels(GRAM_AUTHZ_CALLOUT) == (
            "envelope",
            "fine-grain",
        )

    def test_chain_permit_reports_count(self, request_):
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all)
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all)
        decision = registry.invoke(GRAM_AUTHZ_CALLOUT, request_)
        assert decision.is_permit
        assert "2 callout(s)" in decision.reasons[0]


class TestMultiLineConfigurationFile:
    def test_several_callouts_from_one_file(self, tmp_path, request_):
        config = tmp_path / "callouts.conf"
        config.write_text(
            "gram.authz  repro.core.builtin_callouts  permit_all\n"
            "gram.authz  repro.core.builtin_callouts  initiator_only\n"
            "gatekeeper.authz  repro.core.builtin_callouts  permit_all\n"
        )
        registry = CalloutRegistry()
        assert registry.configure_from_file(str(config)) == 3
        assert len(registry.callout_labels(GRAM_AUTHZ_CALLOUT)) == 2
        assert len(registry.callout_labels("gatekeeper.authz")) == 1
        # Chain works end to end (permit_all then initiator_only, both
        # permit a start request).
        assert registry.invoke(GRAM_AUTHZ_CALLOUT, request_).is_permit

    def test_file_order_is_chain_order(self, tmp_path, request_):
        config = tmp_path / "callouts.conf"
        config.write_text(
            "gram.authz  repro.core.builtin_callouts  deny_all\n"
            "gram.authz  repro.core.builtin_callouts  broken_callout\n"
        )
        registry = CalloutRegistry()
        registry.configure_from_file(str(config))
        # deny_all comes first and short-circuits before the broken
        # callout can blow up — proving file order is invocation order.
        decision = registry.invoke(GRAM_AUTHZ_CALLOUT, request_)
        assert decision.is_deny
