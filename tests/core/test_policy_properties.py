"""Property-based invariants of policy evaluation."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluator import PolicyEvaluator
from repro.core.model import Policy, PolicyAssertion, PolicyStatement, Subject
from repro.core.parser import parse_policy
from repro.core.request import AuthorizationRequest
from repro.rsl.ast import Relation, Relop, Specification

ORG = "/O=Grid/OU=prop"

executables = st.sampled_from(["sim", "transp", "compile", "analyze"])
jobtags = st.sampled_from(["NFC", "ADS", "DEMO"])
counts = st.integers(min_value=1, max_value=64)
user_indices = st.integers(min_value=0, max_value=9)


def user(index: int) -> str:
    return f"{ORG}/CN=User{index}"


@st.composite
def requests(draw):
    spec = Specification.make(
        [
            Relation.make("executable", Relop.EQ, draw(executables)),
            Relation.make("jobtag", Relop.EQ, draw(jobtags)),
            Relation.make("count", Relop.EQ, draw(counts)),
        ]
    )
    return AuthorizationRequest.start(user(draw(user_indices)), spec)


@st.composite
def policies(draw):
    statements = []
    for index in range(draw(st.integers(min_value=0, max_value=6))):
        owner = user(draw(user_indices))
        assertion = PolicyAssertion(
            spec=Specification.make(
                [
                    Relation.make("action", Relop.EQ, "start"),
                    Relation.make("executable", Relop.EQ, draw(executables)),
                    Relation.make("count", Relop.LT, draw(counts)),
                ]
            )
        )
        statements.append(
            PolicyStatement(subject=Subject.identity(owner), assertions=(assertion,))
        )
    return Policy.make(statements, name="prop")


class TestEvaluatorProperties:
    @given(request=requests())
    @settings(max_examples=100)
    def test_empty_policy_denies_everything(self, request):
        evaluator = PolicyEvaluator(Policy.empty("empty"))
        assert evaluator.evaluate(request).is_deny

    @given(request=requests(), policy=policies())
    @settings(max_examples=150)
    def test_evaluation_is_deterministic(self, request, policy):
        evaluator = PolicyEvaluator(policy)
        first = evaluator.evaluate(request)
        second = evaluator.evaluate(request)
        assert first.effect is second.effect
        assert first.reasons == second.reasons

    @given(request=requests(), policy=policies())
    @settings(max_examples=150)
    def test_adding_statements_never_revokes_a_permit(self, request, policy):
        """Grant statements are monotone: more grants, never fewer permits
        (requirements are the only non-monotone construct, and these
        generated policies contain none)."""
        evaluator = PolicyEvaluator(policy)
        before = evaluator.evaluate(request)
        extra = PolicyStatement(
            subject=Subject.identity(user(0)),
            assertions=(PolicyAssertion.parse("&(action=start)(executable=never)"),),
        )
        widened = PolicyEvaluator(policy.merged_with(Policy.make([extra])))
        after = widened.evaluate(request)
        if before.is_permit:
            assert after.is_permit

    @given(request=requests(), policy=policies())
    @settings(max_examples=150)
    def test_statement_order_does_not_change_the_effect(self, request, policy):
        forward = PolicyEvaluator(policy).evaluate(request)
        reversed_policy = Policy.make(tuple(reversed(policy.statements)), name="rev")
        backward = PolicyEvaluator(reversed_policy).evaluate(request)
        assert forward.is_permit == backward.is_permit

    @given(policy=policies())
    @settings(max_examples=100)
    def test_policy_text_round_trips_semantics(self, policy):
        """Serializing a policy and re-parsing preserves decisions."""
        reparsed = parse_policy(str(policy), name="again")
        assert len(reparsed) == len(policy)
        probe = AuthorizationRequest.start(
            user(0),
            Specification.make(
                [
                    Relation.make("executable", Relop.EQ, "sim"),
                    Relation.make("count", Relop.EQ, 1),
                ]
            ),
        )
        original = PolicyEvaluator(policy).evaluate(probe)
        recovered = PolicyEvaluator(reparsed).evaluate(probe)
        assert original.is_permit == recovered.is_permit

    @given(request=requests())
    @settings(max_examples=100)
    def test_self_grant_permits_exactly_the_owner(self, request):
        policy = parse_policy(f"{ORG}: &(action=cancel)(jobowner=self)")
        evaluator = PolicyEvaluator(policy)
        own = AuthorizationRequest.manage(
            request.requester,
            "cancel",
            request.job_description,
            jobowner=request.requester,
        )
        other = AuthorizationRequest.manage(
            request.requester,
            "cancel",
            request.job_description,
            jobowner=f"{ORG}/CN=SomeoneElse",
        )
        assert evaluator.evaluate(own).is_permit
        assert evaluator.evaluate(other).is_deny
