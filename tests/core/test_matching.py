"""Relation-matching semantics (the heart of the policy language)."""


from repro.core.matching import MatchContext, match_assertion, match_relation
from repro.gsi.names import DistinguishedName
from repro.rsl.ast import Relation, Relop
from repro.rsl.parser import parse_specification

BO = DistinguishedName.parse("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu")
CTX = MatchContext(requester=BO)


def check(assertion_text: str, request_text: str, context=CTX) -> bool:
    assertion = parse_specification(assertion_text)
    request = parse_specification(request_text)
    return match_assertion(assertion, request, context).satisfied


class TestEquality:
    def test_exact_match(self):
        assert check("&(executable=test1)", "&(executable=test1)")

    def test_mismatch(self):
        assert not check("&(executable=test1)", "&(executable=test2)")

    def test_value_set_membership(self):
        assert check("&(executable=test1 test2)", "&(executable=test2)")

    def test_absent_attribute_fails_equality(self):
        """required presence: (executable=test1) needs an executable."""
        assert not check("&(executable=test1)", "&(count=1)")

    def test_every_request_value_must_be_permitted(self):
        assert not check("&(args=a b)", "&(args=a c)")
        assert check("&(args=a b)", "&(args=a b)")

    def test_numeric_equality_ignores_representation(self):
        assert check("&(count=4)", "&(count=4.0)")

    def test_nan_and_inf_words_compare_as_strings(self):
        """Regression (found by hypothesis): float('nan') != itself,
        so words that Python would parse as nan/inf must be compared
        as plain strings — (x=NAN) matches a request value NAN."""
        assert check("&(label=NAN)", "&(label=NAN)")
        assert check("&(label=inf)", "&(label=inf)")
        assert not check("&(label=NAN)", "&(label=nan)")  # case-sensitive
        # And they never satisfy numeric bounds.
        assert not check("&(count<4)", "&(count=NAN)")
        assert not check("&(count>4)", "&(count=inf)")

    def test_string_comparison_is_case_sensitive_by_default(self):
        assert not check("&(executable=TRANSP)", "&(executable=transp)")

    def test_jobtag_comparison_is_case_insensitive(self):
        """Figure 3 relies on (jobtag=nfc) matching NFC jobs."""
        assert check("&(jobtag=nfc)", "&(jobtag=NFC)")

    def test_action_comparison_is_case_insensitive(self):
        assert check("&(action=START)", "&(action=start)")


class TestRequiredNotToContain:
    def test_eq_null_requires_absence(self):
        assert check("&(queue=NULL)", "&(count=1)")
        assert not check("&(queue=NULL)", "&(queue=fast)")

    def test_neq_forbids_specific_value(self):
        assert check("&(queue!=reserved)", "&(queue=default)")
        assert not check("&(queue!=reserved)", "&(queue=reserved)")

    def test_neq_satisfied_by_absence(self):
        assert check("&(queue!=reserved)", "&(count=1)")

    def test_neq_with_value_set(self):
        assert not check("&(queue!=a b)", "&(queue=b)")
        assert check("&(queue!=a b)", "&(queue=c)")


class TestRequiredToContain:
    def test_neq_null_requires_presence(self):
        """The paper's (jobtag != NULL) requirement."""
        assert check("&(jobtag!=NULL)", "&(jobtag=ADS)")
        assert not check("&(jobtag!=NULL)", "&(count=1)")

    def test_explicit_null_value_counts_as_absent(self):
        assert not check("&(jobtag!=NULL)", "&(jobtag=NULL)")

    def test_empty_string_value_counts_as_absent(self):
        assert not check("&(jobtag!=NULL)", '&(jobtag="")')


class TestOrdering:
    def test_count_less_than(self):
        assert check("&(count<4)", "&(count=3)")
        assert not check("&(count<4)", "&(count=4)")

    def test_all_four_operators(self):
        assert check("&(count<=4)", "&(count=4)")
        assert check("&(count>=4)", "&(count=4)")
        assert check("&(count>2)", "&(count=3)")
        assert not check("&(count>2)", "&(count=2)")

    def test_absent_attribute_fails_ordering(self):
        assert not check("&(count<4)", "&(executable=x)")

    def test_non_numeric_request_value_fails(self):
        assert not check("&(count<4)", "&(count=many)")

    def test_non_numeric_bound_fails(self):
        assert not check("&(count<lots)", "&(count=1)")

    def test_every_value_must_satisfy_bound(self):
        assert not check("&(count<4)", "&(count=1)(count=9)")

    def test_float_bounds(self):
        assert check("&(maxwalltime<=3600.5)", "&(maxwalltime=3600)")


class TestSelfResolution:
    def test_jobowner_self_matches_requester(self):
        assert check("&(jobowner=self)", f'&(jobowner="{BO}")')

    def test_jobowner_self_rejects_other(self):
        assert not check(
            "&(jobowner=self)",
            '&(jobowner="/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")',
        )

    def test_self_without_requester_stays_literal(self):
        context = MatchContext(requester=None)
        assert not check("&(jobowner=self)", f'&(jobowner="{BO}")', context)


class TestVariableReferences:
    def test_unresolved_variable_fails_closed(self):
        assertion = parse_specification("&(directory=$(VO_HOME))")
        request = parse_specification("&(directory=/x)")
        outcome = match_assertion(assertion, request, CTX)
        assert not outcome.satisfied
        assert "VO_HOME" in outcome.reason


class TestConjunction:
    def test_all_relations_must_hold(self):
        assertion = "&(executable=test1)(count<4)(jobtag=ADS)"
        assert check(assertion, "&(executable=test1)(count=2)(jobtag=ADS)")
        assert not check(assertion, "&(executable=test1)(count=2)(jobtag=NFC)")
        assert not check(assertion, "&(executable=test1)(count=9)(jobtag=ADS)")

    def test_first_failure_reported(self):
        assertion = parse_specification("&(executable=test1)(count<4)")
        request = parse_specification("&(executable=wrong)(count=9)")
        outcome = match_assertion(assertion, request, CTX)
        assert "executable" in outcome.reason

    def test_unmentioned_attributes_are_unconstrained(self):
        """Policies constrain what they mention; extra request
        attributes pass through (the resource's own policy source can
        forbid them)."""
        assert check("&(executable=test1)", "&(executable=test1)(queue=gold)")


class TestMatchRelationDirect:
    def test_request_constraint_relations_do_not_supply_values(self):
        """(count<4) in a *request* supplies no value for matching."""
        relation = Relation.make("count", Relop.EQ, 2)
        request = parse_specification("&(count<2)")
        outcome = match_relation(relation, request, CTX)
        assert not outcome.satisfied

    def test_ordering_with_two_bounds_rejected(self):
        relation = Relation.make("count", Relop.LT, ["4", "8"])
        request = parse_specification("&(count=1)")
        outcome = match_relation(relation, request, CTX)
        assert not outcome.satisfied
        assert "exactly one bound" in outcome.reason
