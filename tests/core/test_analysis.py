"""Policy analysis: lint, capabilities, who-can, diff."""


from repro.core.analysis import (
    LintLevel,
    capabilities,
    diff_policies,
    lint,
    who_can,
)
from repro.core.parser import parse_policy
from repro.rsl.parser import parse_specification

ALICE = "/O=Grid/OU=org/CN=Alice"
BOB = "/O=Grid/OU=org/CN=Bob"


def codes(findings):
    return [f.code for f in findings]


class TestLint:
    def test_clean_policy_has_no_findings(self, figure3_policy):
        assert lint(figure3_policy) == []

    def test_missing_action_guard(self):
        policy = parse_policy(f"{ALICE}: &(executable=sim)")
        assert "no-action-guard" in codes(lint(policy))

    def test_unknown_action_is_an_error(self):
        policy = parse_policy(f"{ALICE}: &(action=teleport)")
        findings = lint(policy)
        assert "unknown-action" in codes(findings)
        assert any(f.level is LintLevel.ERROR for f in findings)

    def test_empty_numeric_range(self):
        policy = parse_policy(f"{ALICE}: &(action=start)(count>8)(count<2)")
        assert "empty-range" in codes(lint(policy))

    def test_satisfiable_range_not_flagged(self):
        policy = parse_policy(f"{ALICE}: &(action=start)(count>=1)(count<=8)")
        assert "empty-range" not in codes(lint(policy))

    def test_non_numeric_bound(self):
        policy = parse_policy(f"{ALICE}: &(action=start)(count<lots)")
        assert "non-numeric-bound" in codes(lint(policy))

    def test_self_outside_jobowner(self):
        policy = parse_policy(f"{ALICE}: &(action=start)(executable=self)")
        assert "self-outside-jobowner" in codes(lint(policy))

    def test_self_on_jobowner_is_fine(self):
        policy = parse_policy(f"{ALICE}: &(action=cancel)(jobowner=self)")
        assert "self-outside-jobowner" not in codes(lint(policy))

    def test_duplicate_assertion(self):
        policy = parse_policy(
            f"{ALICE}: &(action=start)(executable=a) &(action=start)(executable=a)"
        )
        assert "duplicate-assertion" in codes(lint(policy))

    def test_unconstrained_start(self):
        policy = parse_policy(f"{ALICE}: &(action=start)")
        assert "unconstrained-start" in codes(lint(policy))

    def test_findings_carry_location(self):
        policy = parse_policy(
            f"""
            {ALICE}: &(action=start)(executable=a)
            {BOB}: &(action=teleport)
            """
        )
        finding = next(f for f in lint(policy) if f.code == "unknown-action")
        assert finding.statement_index == 1
        assert finding.assertion_index == 0


class TestCapabilities:
    POLICY = f"""
    {ALICE}:
        &(action=start)(executable=sim)(count<4)
        &(action=cancel)(jobowner=self)
    /O=Grid/OU=org:
        &(action=information)
    """

    def test_all_grants_listed(self):
        policy = parse_policy(self.POLICY)
        found = capabilities(policy, ALICE)
        actions = sorted(c.action for c in found)
        assert actions == ["cancel", "information", "start"]

    def test_constraints_attached(self):
        policy = parse_policy(self.POLICY)
        start = next(c for c in capabilities(policy, ALICE) if c.action == "start")
        assert start.constraints.has("executable")
        assert not start.constraints.has("action")

    def test_group_member_gets_group_grants_only(self):
        policy = parse_policy(self.POLICY)
        found = capabilities(policy, BOB)
        assert [c.action for c in found] == ["information"]

    def test_outsider_gets_nothing(self):
        policy = parse_policy(self.POLICY)
        assert capabilities(policy, "/O=Mars/CN=Marvin") == ()


class TestWhoCan:
    def test_who_can_cancel_nfc_jobs(self, figure3_policy):
        from tests.conftest import BO, KATE

        job = parse_specification("&(executable=test2)(jobtag=NFC)")
        allowed = who_can(
            figure3_policy,
            "cancel",
            job,
            candidates=[BO, KATE, "/O=Other/CN=Eve"],
            jobowner=BO,
        )
        assert [str(dn) for dn in allowed] == [KATE]

    def test_who_can_honours_requirements(self, figure3_policy):
        from tests.conftest import BO, KATE

        untagged = parse_specification(
            "&(executable=test1)(directory=/sandbox/test)(count=1)"
        )
        allowed = who_can(figure3_policy, "start", untagged, candidates=[BO, KATE])
        assert allowed == ()


class TestImpact:
    OLD = f"{ALICE}: &(action=start)(executable=sim)(count<4)"
    NEW = f"{ALICE}: &(action=start)(executable=sim)(count<8)"

    def requests(self):
        from repro.core.request import AuthorizationRequest

        return [
            AuthorizationRequest.start(
                ALICE, parse_specification(f"&(executable=sim)(count={n})")
            )
            for n in (1, 2, 4, 6, 9)
        ]

    def test_widening_reports_newly_permitted(self):
        from repro.core.analysis import impact

        report = impact(
            parse_policy(self.OLD), parse_policy(self.NEW), self.requests()
        )
        assert report.total == 5
        assert report.permitted_before == 2  # counts 1, 2
        assert report.permitted_after == 4   # counts 1, 2, 4, 6
        assert len(report.newly_permitted) == 2
        assert report.newly_denied == ()
        assert report.unchanged == 3

    def test_tightening_reports_newly_denied(self):
        from repro.core.analysis import impact

        report = impact(
            parse_policy(self.NEW), parse_policy(self.OLD), self.requests()
        )
        assert len(report.newly_denied) == 2
        assert report.newly_permitted == ()

    def test_identical_policies_report_no_flips(self):
        from repro.core.analysis import impact

        report = impact(
            parse_policy(self.OLD), parse_policy(self.OLD), self.requests()
        )
        assert report.newly_permitted == ()
        assert report.newly_denied == ()
        assert report.unchanged == report.total

    def test_str_is_informative(self):
        from repro.core.analysis import impact

        report = impact(
            parse_policy(self.OLD), parse_policy(self.NEW), self.requests()
        )
        text = str(report)
        assert "5 requests" in text
        assert "+2" in text


class TestDiff:
    def test_no_changes(self, figure3_policy):
        diff = diff_policies(figure3_policy, figure3_policy)
        assert diff.is_empty
        assert "no changes" in str(diff)

    def test_added_and_removed(self):
        old = parse_policy(f"{ALICE}: &(action=start)(executable=a)")
        new = parse_policy(
            f"""
            {ALICE}: &(action=start)(executable=a)
            {BOB}: &(action=cancel)(jobowner=self)
            """
        )
        diff = diff_policies(old, new)
        assert len(diff.added) == 1
        assert len(diff.removed) == 0
        reverse = diff_policies(new, old)
        assert len(reverse.removed) == 1

    def test_modified_statement_shows_as_both(self):
        old = parse_policy(f"{ALICE}: &(action=start)(count<4)")
        new = parse_policy(f"{ALICE}: &(action=start)(count<8)")
        diff = diff_policies(old, new)
        assert len(diff.added) == 1
        assert len(diff.removed) == 1
