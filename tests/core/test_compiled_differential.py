"""Differential oracle: compiled engine vs the interpreted reference.

The compiled policy engine (:mod:`repro.core.compiled`) must be
decision-for-decision identical to the interpreted evaluator — same
effect, same reason strings, same NOT_APPLICABLE vs DENY distinction.
This suite replays generated workload streams (> 10k requests in
total) through both engines and asserts exact equality, then pins the
edge semantics (``self``, ``NULL``, unresolved variables, numeric and
non-equality action guards) with hand-crafted policies.
"""

import pytest

from repro.core.evaluator import PolicyEvaluator
from repro.core.parser import parse_policy
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification
from repro.workloads.generator import (
    DEFAULT_ORG_PREFIX,
    PolicyShape,
    WorkloadGenerator,
    generate_policy,
    generate_users,
)

ORG = "/O=Grid/O=Globus/OU=mcs.anl.gov"
BO = f"{ORG}/CN=Bo Liu"
KATE = f"{ORG}/CN=Kate Keahey"


def observed(decision):
    """What both engines must agree on, field for field."""
    return (decision.effect, decision.reasons, decision.source)


def assert_equivalent(policy, requests):
    compiled = PolicyEvaluator(policy)
    interpreted = PolicyEvaluator(policy, compiled=False)
    divergences = []
    for request in requests:
        a = observed(compiled.evaluate(request))
        b = observed(interpreted.evaluate(request))
        if a != b:
            divergences.append((request, a, b))
    assert not divergences, (
        f"{len(divergences)} divergence(s); first: {divergences[0]}"
    )


def start(who, rsl):
    return AuthorizationRequest.start(who, parse_specification(rsl))


def manage(who, action, rsl, owner):
    return AuthorizationRequest.manage(
        who, action, parse_specification(rsl), jobowner=owner
    )


class TestGeneratedWorkloads:
    """≥ 10k generated requests, zero divergences (the acceptance bar)."""

    SHAPES = [
        pytest.param(PolicyShape(users=5, seed=3), 2000, id="small"),
        pytest.param(
            PolicyShape(
                users=50,
                statements_per_user=2,
                assertions_per_statement=3,
                seed=11,
            ),
            3000,
            id="medium",
        ),
        pytest.param(
            PolicyShape(
                users=200,
                statements_per_user=1,
                assertions_per_statement=2,
                relations_per_assertion=4,
                group_requirements=2,
                seed=23,
            ),
            3000,
            id="wide",
        ),
        pytest.param(
            PolicyShape(users=20, group_requirements=0, seed=41),
            2000,
            id="no-requirements",
        ),
    ]

    @pytest.mark.parametrize("shape,count", SHAPES)
    def test_stream_parity(self, shape, count):
        policy = generate_policy(shape)
        users = generate_users(shape.users)
        # Outsiders exercise the NOT_APPLICABLE path through the index.
        outsiders = [
            f"{DEFAULT_ORG_PREFIX}/CN=Outsider {i}" for i in range(3)
        ] + ["/O=Elsewhere/OU=other.org/CN=Stranger"]
        population = list(users) + outsiders
        generator = WorkloadGenerator(
            policy=policy, users=population, seed=shape.seed * 7 + 1
        )
        assert_equivalent(
            policy, generator.batch(count, management_fraction=0.3)
        )

    def test_low_permit_bias_deny_heavy_stream(self):
        """Deny summaries exercise the full-replay path; make sure a
        deny-heavy stream agrees too."""
        shape = PolicyShape(users=25, assertions_per_statement=4, seed=5)
        policy = generate_policy(shape)
        generator = WorkloadGenerator(
            policy=policy,
            users=generate_users(shape.users),
            seed=99,
            permit_bias=0.1,
        )
        assert_equivalent(policy, generator.batch(1000))


FIGURE3 = f"""
&{ORG}:
    (action = start)(jobtag != NULL)
{BO}:
    &(action = start)(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count<4)
    &(action = start)(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count<4)
{KATE}:
    &(action = start)(executable = transp)(count<8)
    &(action = cancel)(jobowner = self)
    &(action = information)
"""


class TestFigure3Matrix:
    """Every (user, action, spec) cell of a dense matrix over the
    paper's own policy must agree across engines."""

    def test_dense_matrix(self):
        policy = parse_policy(FIGURE3, name="figure3")
        users = [BO, KATE, f"{ORG}/CN=Bo Liukonen", "/O=Elsewhere/CN=Eve"]
        specs = [
            "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)",
            "&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)",
            "&(executable=transp)(count=4)",
            "&(executable=transp)(count=4)(jobtag=NFC)",
            "&(executable=rogue)(count=99)",
            "&(executable=test1)(count=2)",  # no jobtag -> requirement
            "&(count=2)",
        ]
        requests = []
        for user in users:
            for rsl in specs:
                requests.append(start(user, rsl))
                for owner in (user, KATE, BO):
                    for action in ("cancel", "information", "signal"):
                        requests.append(manage(user, action, rsl, owner))
        assert len(requests) > 250
        assert_equivalent(policy, requests)


class TestEdgeSemantics:
    """Hand-crafted policies hitting every special-value path."""

    def edge(self, policy_text, requests):
        assert_equivalent(parse_policy(policy_text, name="edge"), requests)

    def test_self_jobowner(self):
        self.edge(
            f"{BO}: &(action=cancel)(jobowner=self)\n"
            f"{KATE}: &(action=cancel)(jobowner=self)",
            [
                manage(BO, "cancel", "&(executable=x)", BO),
                manage(BO, "cancel", "&(executable=x)", KATE),
                manage(KATE, "cancel", "&(executable=x)", BO),
            ],
        )

    def test_null_required_and_forbidden(self):
        self.edge(
            f"{BO}: &(action=start)(queue=NULL) &(action=cancel)(jobtag!=NULL)",
            [
                start(BO, "&(executable=x)"),
                start(BO, "&(queue=batch)"),
                manage(BO, "cancel", "&(jobtag=NFC)", BO),
                manage(BO, "cancel", "&(executable=x)", BO),
            ],
        )

    def test_unresolved_variable_reference(self):
        self.edge(
            f"{BO}: &(action=start)(directory=$(HOME))",
            [start(BO, "&(directory=/home/bo)"), start(BO, "&(count=1)")],
        )

    def test_numeric_action_value_not_indexable(self):
        """A numeric action value falls to the catch-all bucket; both
        engines must agree it never matches a word action (and that
        equality still goes numeric when both sides parse)."""
        self.edge(
            f"{BO}: &(action=4)(executable=x)",
            [
                start(BO, "&(executable=x)"),
                manage(BO, "cancel", "&(executable=x)", BO),
            ],
        )

    def test_non_equality_action_guards(self):
        self.edge(
            f"{BO}: &(action!=start)(executable=x)",
            [
                start(BO, "&(executable=x)"),
                manage(BO, "cancel", "&(executable=x)", BO),
                manage(BO, "signal", "&(executable=x)", BO),
            ],
        )

    def test_action_case_insensitivity(self):
        self.edge(
            f"{BO}: &(action=START)(executable=x) &(action=Cancel)",
            [
                start(BO, "&(executable=x)"),
                manage(BO, "cancel", "&(executable=x)", BO),
            ],
        )

    def test_multiple_action_relations_conjoined(self):
        """Two action relations in one assertion: bucket key comes from
        the first, but the second must still be enforced."""
        self.edge(
            f'{BO}: &(action="start" "cancel")(action!=cancel)(executable=x)',
            [
                start(BO, "&(executable=x)"),
                manage(BO, "cancel", "&(executable=x)", BO),
            ],
        )

    def test_numeric_vs_text_comparison_precedence(self):
        """`4` matches `4.0` numerically; `04x` stays textual."""
        self.edge(
            f"{BO}: &(action=start)(count=4) &(action=cancel)(slot=04x)",
            [
                start(BO, "&(count=4.0)"),
                start(BO, "&(count=04)"),
                start(BO, '&(count="4 ")'),
                manage(BO, "cancel", "&(slot=04x)", BO),
                manage(BO, "cancel", "&(slot=4x)", BO),
            ],
        )

    def test_ordering_bounds(self):
        self.edge(
            f"{BO}: &(action=start)(count<4)(maxwalltime<=600)"
            " &(action=start)(priority>2)",
            [
                start(BO, "&(count=3)(maxwalltime=600)"),
                start(BO, "&(count=4)(maxwalltime=600)"),
                start(BO, "&(count=3)(maxwalltime=601)"),
                start(BO, "&(priority=3)"),
                start(BO, "&(priority=two)"),  # non-numeric request value
                start(BO, "&(count=many)"),
            ],
        )

    def test_requirement_without_action_guard(self):
        self.edge(
            f"&{ORG}: (jobtag!=NULL)\n{BO}: &(action=start)",
            [
                start(BO, "&(executable=x)"),
                start(BO, "&(jobtag=NFC)"),
                manage(BO, "cancel", "&(executable=x)", BO),
            ],
        )

    def test_empty_policy_and_total_outsider(self):
        policy = parse_policy(f"{KATE}: &(action=start)", name="edge")
        assert_equivalent(
            policy,
            [
                start(BO, "&(executable=x)"),
                start("/O=Nowhere/CN=Nobody", "&(executable=x)"),
            ],
        )

    def test_spoofed_computed_attributes_are_replaced(self):
        self.edge(
            f"{BO}: &(action=cancel)(jobowner=self)",
            [
                manage(
                    BO,
                    "cancel",
                    f'&(action=start)(jobowner="{BO}")',
                    KATE,
                ),
            ],
        )

    def test_deny_summary_order_and_limit(self):
        """More than `limit` distinct failures: both engines truncate
        identically (first-seen order, header uncounted)."""
        assertions = " ".join(
            f"&(action=start)(executable=app{i})" for i in range(9)
        )
        self.edge(
            f"{BO}: {assertions}",
            [start(BO, "&(executable=other)")],
        )


class TestMemoDoesNotChangeDecisions:
    def test_repeat_identity_stream(self):
        """Memo-hit path must return the same decisions as cold path."""
        shape = PolicyShape(users=4, seed=17)
        policy = generate_policy(shape)
        generator = WorkloadGenerator(
            policy=policy, users=generate_users(4), seed=2
        )
        requests = generator.batch(400, management_fraction=0.5)
        compiled = PolicyEvaluator(policy)
        interpreted = PolicyEvaluator(policy, compiled=False)
        for request in requests + requests:  # second pass is all memo hits
            assert observed(compiled.evaluate(request)) == observed(
                interpreted.evaluate(request)
            )
        assert compiled.compiled.memo_hits > 0


def test_total_replayed_request_volume():
    """The acceptance criterion asks for ≥ 10k replayed requests; the
    streams above add up — this test documents the floor so shrinking
    a stream without noticing fails loudly."""
    stream_total = sum(count for _, count in _stream_sizes())
    assert stream_total >= 10_000


def _stream_sizes():
    sizes = []
    for param in TestGeneratedWorkloads.SHAPES:
        shape, count = param.values
        sizes.append((shape, count))
    sizes.append((None, 1000))  # deny-heavy stream
    sizes.append((None, 800))  # memo stream (400 replayed twice)
    return sizes
