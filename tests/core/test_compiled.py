"""The compiled policy engine: indexes, memo, metrics, edge cases.

Decision-level equivalence with the interpreted engine is pinned
exhaustively in ``test_compiled_differential.py``; this module tests
the compiled structures directly, plus the subject-prefix edge cases
the index must preserve from the interpreted subject scan.
"""

import pytest

from repro.core.compiled import (
    CompiledPolicy,
    compile_policy,
    compiled_for,
    evaluation_view,
    is_compiled,
)
from repro.core.decision import Effect
from repro.core.evaluator import PolicyEvaluator
from repro.core.matching import request_value_view
from repro.core.model import (
    Policy,
    PolicyAssertion,
    PolicyStatement,
    StatementKind,
    Subject,
)
from repro.core.parser import parse_policy
from repro.core.request import AuthorizationRequest
from repro.obs import MetricsRegistry
from repro.rsl.parser import parse_specification

ORG = "/O=Grid/O=Globus/OU=mcs.anl.gov"
BO = f"{ORG}/CN=Bo Liu"
BO_LONGER = f"{ORG}/CN=Bo Liukonen"
KATE = f"{ORG}/CN=Kate Keahey"
EVE = "/O=Elsewhere/CN=Eve"


def start(who: str, rsl: str) -> AuthorizationRequest:
    return AuthorizationRequest.start(who, parse_specification(rsl))


def manage(who, action, rsl, owner) -> AuthorizationRequest:
    return AuthorizationRequest.manage(
        who, action, parse_specification(rsl), jobowner=owner
    )


def both(policy_text: str):
    """(compiled, interpreted) evaluators over the same policy."""
    policy = parse_policy(policy_text, name="test")
    return (
        PolicyEvaluator(policy),
        PolicyEvaluator(policy, compiled=False),
    )


def assert_parity(policy_text: str, requests) -> None:
    compiled, interpreted = both(policy_text)
    for request in requests:
        a = compiled.evaluate(request)
        b = interpreted.evaluate(request)
        assert (a.effect, a.reasons, a.source) == (
            b.effect,
            b.reasons,
            b.source,
        ), f"divergence on {request}"


class TestSubjectIndex:
    def test_exact_subject_never_matches_longer_dn(self):
        """`CN=Bo Liu` (exact) must not catch `CN=Bo Liukonen`."""
        compiled, interpreted = both(f"{BO}: &(action=start)")
        for evaluator in (compiled, interpreted):
            assert evaluator.evaluate(start(BO, "&(executable=x)")).is_permit
            longer = evaluator.evaluate(start(BO_LONGER, "&(executable=x)"))
            assert longer.effect is Effect.NOT_APPLICABLE

    def test_prefix_subject_does_match_longer_dn(self):
        """The same DN as a *prefix* group is string-prefix semantics:
        it must keep matching `CN=Bo Liukonen` (paper Figure 3)."""
        compiled, interpreted = both(f"{BO}*: &(action=start)")
        for evaluator in (compiled, interpreted):
            assert evaluator.evaluate(start(BO, "&(executable=x)")).is_permit
            assert evaluator.evaluate(start(BO_LONGER, "&(executable=x)")).is_permit

    def test_overlapping_prefixes_all_apply(self):
        """Nested groups: both the org-wide and the narrower prefix
        statement must be found, and both requirements enforced."""
        text = f"""
        &/O=Grid: &(action=start)(jobtag!=NULL)
        &{ORG}: &(action=start)(count<=4)
        {BO}: &(action=start)
        """
        compiled, interpreted = both(text)
        # jobtag requirement comes from /O=Grid, count from the org.
        for evaluator in (compiled, interpreted):
            ok = evaluator.evaluate(start(BO, "&(jobtag=NFC)(count=2)"))
            assert ok.is_permit
            no_tag = evaluator.evaluate(start(BO, "&(count=2)"))
            assert no_tag.is_deny and "jobtag" in no_tag.reasons[0]
            too_many = evaluator.evaluate(start(BO, "&(jobtag=NFC)(count=8)"))
            assert too_many.is_deny and "count" in too_many.reasons[0]
        assert_parity(
            text,
            [
                start(BO, "&(jobtag=NFC)(count=2)"),
                start(BO, "&(count=2)"),
                start(BO, "&(jobtag=NFC)(count=8)"),
                start(EVE, "&(jobtag=NFC)"),
            ],
        )

    def test_sibling_prefixes_between_matching_lengths(self):
        """A non-matching prefix sorted *between* two matching ones
        must not terminate the probe early."""
        text = f"""
        /O=Grid: &(action=start)(jobtag!=NULL)
        /O=Grid/O=GlobusX: &(action=cancel)
        {ORG}: &(action=start)(count<2)
        """
        policy = parse_policy(text, name="test")
        compiled = compile_policy(policy)
        (grants, requirements), _ = compiled.slices_for(BO)
        found = [str(c.statement.subject) for c in grants]
        assert found == ["/O=Grid*", f"{ORG}*"]
        assert requirements == ()

    def test_statement_order_preserved_in_deny_summaries(self):
        """Failure reasons must accumulate in source-policy order even
        though the index collects statements from different maps."""
        text = f"""
        /O=Grid: &(action=start)(executable=one)
        {BO}: &(action=start)(executable=two)
        {ORG}: &(action=start)(executable=three)
        """
        compiled, interpreted = both(text)
        a = compiled.evaluate(start(BO, "&(executable=other)"))
        b = interpreted.evaluate(start(BO, "&(executable=other)"))
        assert a.reasons == b.reasons
        assert a.is_deny
        # header + the three reasons, in statement order
        assert "'one'" in a.reasons[1] or "one" in a.reasons[1]
        assert "two" in a.reasons[2]
        assert "three" in a.reasons[3]

    def test_index_shapes(self):
        text = f"""
        {BO}: &(action=start)
        {KATE}: &(action=start) &(action=cancel)
        {ORG}: &(action=information)
        &/O=Grid: &(action=start)(jobtag!=NULL)
        """
        compiled = compile_policy(parse_policy(text, name="test"))
        assert compiled.stats.statements == 4
        assert compiled.stats.exact_entries == 2
        assert compiled.stats.prefix_entries == 2
        assert compiled.stats.grant_statements == 3
        assert compiled.stats.requirement_statements == 1
        assert compiled.stats.assertions == 5
        assert compiled.stats.bucketed_assertions == 5
        assert compiled.stats.catchall_assertions == 0
        assert compiled.stats.compile_seconds >= 0


class TestActionBuckets:
    def test_candidates_filtered_by_action(self):
        text = f"{BO}: &(action=start)(executable=a) &(action=cancel) &(action=start)(executable=b)"
        compiled = compile_policy(parse_policy(text, name="test"))
        (grants, _), _ = compiled.slices_for(BO)
        statement = grants[0]
        starts = statement.candidates("start")
        assert [str(c.assertion) for c in starts] == [
            "&(action=start)(executable=a)",
            "&(action=start)(executable=b)",
        ]
        assert len(statement.candidates("cancel")) == 1
        # unknown action: nothing bucketed, nothing catch-all
        assert statement.candidates("signal") == ()

    def test_multi_valued_action_guard_lands_in_both_buckets(self):
        text = f'{BO}: &(action="start" "cancel")(count<4)'
        compiled = compile_policy(parse_policy(text, name="test"))
        (grants, _), _ = compiled.slices_for(BO)
        statement = grants[0]
        assert len(statement.candidates("start")) == 1
        assert len(statement.candidates("cancel")) == 1
        assert statement.candidates("information") == ()

    def test_unguarded_assertion_is_catch_all(self):
        statement = PolicyStatement(
            subject=Subject.identity(BO),
            assertions=(PolicyAssertion.parse("&(executable=x)"),),
        )
        compiled = compile_policy(Policy.make([statement], name="t"))
        (grants, _), _ = compiled.slices_for(BO)
        assert grants[0].catch_all == grants[0].assertions
        assert grants[0].candidates("start") == grants[0].assertions

    def test_self_and_null_action_guards_are_catch_all(self):
        for clause in ("&(action=self)", "&(action=NULL)", "&(action!=start)"):
            statement = PolicyStatement(
                subject=Subject.identity(BO),
                assertions=(PolicyAssertion.parse(clause),),
            )
            compiled = compile_policy(Policy.make([statement], name="t"))
            assert compiled.stats.catchall_assertions == 1


class TestSliceMemo:
    def test_repeat_identity_hits_memo(self):
        compiled = compile_policy(parse_policy(f"{BO}: &(action=start)", name="t"))
        _, from_memo = compiled.slices_for(BO)
        assert not from_memo
        _, from_memo = compiled.slices_for(BO)
        assert from_memo
        assert compiled.memo_hits == 1
        assert compiled.memo_misses == 1

    def test_memo_is_bounded(self):
        compiled = CompiledPolicy(
            parse_policy(f"{BO}: &(action=start)", name="t"), memo_cap=4
        )
        for index in range(10):
            compiled.slices_for(f"/O=Grid/CN=User {index}")
        assert compiled.memo_size <= 4

    def test_replace_policy_recompiles_and_bumps_epoch(self):
        evaluator = PolicyEvaluator(parse_policy(f"{BO}: &(action=start)", name="t"))
        first = evaluator.compiled
        assert evaluator.policy_epoch == 0
        assert evaluator.evaluate(start(BO, "&(executable=x)")).is_permit
        replacement = parse_policy(f"{KATE}: &(action=start)", name="t")
        evaluator.replace_policy(replacement)
        assert evaluator.policy_epoch == 1
        assert evaluator.compiled is not first
        assert evaluator.compiled.policy is replacement
        outcome = evaluator.evaluate(start(BO, "&(executable=x)"))
        assert outcome.effect is Effect.NOT_APPLICABLE

    def test_compiled_for_caches_on_policy_instance(self):
        policy = parse_policy(f"{BO}: &(action=start)", name="t")
        assert not is_compiled(policy)
        first = compiled_for(policy)
        assert is_compiled(policy)
        assert compiled_for(policy) is first
        # two evaluators over one policy share the compile
        assert PolicyEvaluator(policy).compiled is first


class TestEvaluationView:
    @pytest.mark.parametrize(
        "rsl",
        [
            "&(executable=x)(count=4)",
            '&(executable=x)(action=spoofed)(jobowner="/O=Fake/CN=X")',
            '&(arguments="-l" "/tmp")(jobtag=NFC)',
            "&(count<4)(executable=x)",  # constraint relations supply nothing
            "&(queue=NULL)(executable=x)",
        ],
    )
    def test_matches_specification_round_trip(self, rsl):
        for request in (
            start(BO, rsl),
            manage(BO, "cancel", rsl, KATE),
        ):
            direct = evaluation_view(request)
            via_spec = request_value_view(request.evaluation_specification())
            assert direct == via_spec


class TestMetrics:
    def test_compile_and_index_families_exported(self):
        registry = MetricsRegistry()
        policy = parse_policy(
            f"{BO}: &(action=start)\n{ORG}: &(action=information)", name="vo"
        )
        evaluator = PolicyEvaluator(policy, source="vo", registry=registry)
        assert registry.value("policy_compile_total", source="vo") == 1
        assert registry.value("policy_index_statements", source="vo") == 2
        assert registry.value("policy_index_exact_entries", source="vo") == 1
        assert registry.value("policy_index_prefix_entries", source="vo") == 1

        evaluator.evaluate(start(BO, "&(executable=x)"))
        evaluator.evaluate(start(BO, "&(executable=x)"))
        assert (
            registry.value(
                "policy_index_lookups_total", source="vo", result="index"
            )
            == 1
        )
        assert (
            registry.value(
                "policy_index_lookups_total", source="vo", result="memo"
            )
            == 1
        )
        # both lookups selected the same two applicable statements
        assert (
            registry.value(
                "policy_index_candidate_statements_total", source="vo"
            )
            == 4
        )

    def test_replace_policy_counts_a_fresh_compile(self):
        registry = MetricsRegistry()
        evaluator = PolicyEvaluator(
            parse_policy(f"{BO}: &(action=start)", name="vo"),
            source="vo",
            registry=registry,
        )
        evaluator.replace_policy(parse_policy(f"{KATE}: &(action=start)", name="vo"))
        assert registry.value("policy_compile_total", source="vo") == 2


class TestInterpretedModeStillAvailable:
    def test_compiled_false_uses_raw_policy(self):
        policy = parse_policy(f"{BO}: &(action=start)", name="t")
        evaluator = PolicyEvaluator(policy, compiled=False)
        assert evaluator.compiled is None
        assert evaluator.evaluate(start(BO, "&(executable=x)")).is_permit


class TestRequirementKinds:
    def test_requirement_without_action_guard_always_applies(self):
        statement = PolicyStatement(
            subject=Subject.prefix(ORG),
            assertions=(PolicyAssertion.parse("&(jobtag!=NULL)"),),
            kind=StatementKind.REQUIREMENT,
        )
        grant = PolicyStatement(
            subject=Subject.identity(BO),
            assertions=(PolicyAssertion.parse("&(action=start)"),),
        )
        policy = Policy.make([statement, grant], name="t")
        for evaluator in (
            PolicyEvaluator(policy),
            PolicyEvaluator(policy, compiled=False),
        ):
            denied = evaluator.evaluate(start(BO, "&(executable=x)"))
            assert denied.is_deny
            assert "requirement" in denied.reasons[0]
            assert evaluator.evaluate(start(BO, "&(jobtag=NFC)")).is_permit
