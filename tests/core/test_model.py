"""Policy object model."""

import pytest

from repro.core.model import (
    Policy,
    PolicyAssertion,
    PolicyStatement,
    StatementKind,
    Subject,
)
from repro.gsi.names import DistinguishedName

BO = DistinguishedName.parse("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu")
KATE = DistinguishedName.parse("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")


class TestSubject:
    def test_exact_matches_only_itself(self):
        subject = Subject.identity(BO)
        assert subject.matches(BO)
        assert not subject.matches(KATE)

    def test_exact_does_not_match_extension(self):
        """CN=Bo Liu must not catch CN=Bo Liukonen."""
        subject = Subject.identity(BO)
        longer = DistinguishedName.parse(str(BO) + "konen")
        assert not subject.matches(longer)

    def test_prefix_matches_group(self):
        subject = Subject.prefix("/O=Grid/O=Globus/OU=mcs.anl.gov")
        assert subject.matches(BO)
        assert subject.matches(KATE)

    def test_prefix_rejects_outsider(self):
        subject = Subject.prefix("/O=Grid/O=Globus/OU=mcs.anl.gov")
        outsider = DistinguishedName.parse("/O=Other/CN=Eve")
        assert not subject.matches(outsider)

    def test_prefix_is_string_based(self):
        """The paper matches raw string prefixes, even mid-component."""
        subject = Subject.prefix("/O=Grid/O=Globus/OU=mcs")
        assert subject.matches(BO)

    def test_str_marks_prefixes(self):
        assert str(Subject.prefix("/O=G")).endswith("*")
        assert not str(Subject.identity(BO)).endswith("*")


class TestPolicyAssertion:
    def test_parse(self):
        assertion = PolicyAssertion.parse("&(action=start)(count<4)")
        assert assertion.actions == ("start",)

    def test_guard_and_body_split(self):
        assertion = PolicyAssertion.parse("&(action=start)(count<4)(jobtag=NFC)")
        assert [r.attribute for r in assertion.guard()] == ["action"]
        assert sorted(r.attribute for r in assertion.body()) == ["count", "jobtag"]

    def test_multiple_actions(self):
        assertion = PolicyAssertion.parse("&(action=cancel information)(jobtag=NFC)")
        assert assertion.actions == ("cancel", "information")

    def test_actions_lowercased(self):
        assertion = PolicyAssertion.parse("&(action=START)")
        assert assertion.actions == ("start",)


class TestPolicyStatement:
    def test_requires_assertions(self):
        with pytest.raises(ValueError):
            PolicyStatement(subject=Subject.identity(BO), assertions=())

    def test_applies_to(self):
        statement = PolicyStatement(
            subject=Subject.identity(BO),
            assertions=(PolicyAssertion.parse("&(action=start)"),),
        )
        assert statement.applies_to(BO)
        assert not statement.applies_to(KATE)

    def test_str_shows_requirement_marker(self):
        statement = PolicyStatement(
            subject=Subject.prefix("/O=Grid"),
            assertions=(PolicyAssertion.parse("&(action=start)(jobtag!=NULL)"),),
            kind=StatementKind.REQUIREMENT,
        )
        assert str(statement).startswith("&")


class TestPolicy:
    def build(self):
        grant_bo = PolicyStatement(
            subject=Subject.identity(BO),
            assertions=(PolicyAssertion.parse("&(action=start)"),),
        )
        requirement = PolicyStatement(
            subject=Subject.prefix("/O=Grid"),
            assertions=(PolicyAssertion.parse("&(action=start)(jobtag!=NULL)"),),
            kind=StatementKind.REQUIREMENT,
        )
        return Policy.make([requirement, grant_bo], name="test")

    def test_grants_for_filters_by_kind_and_subject(self):
        policy = self.build()
        assert len(policy.grants_for(BO)) == 1
        assert len(policy.grants_for(KATE)) == 0

    def test_requirements_for(self):
        policy = self.build()
        assert len(policy.requirements_for(BO)) == 1
        assert len(policy.requirements_for(KATE)) == 1

    def test_empty_policy(self):
        policy = Policy.empty("nothing")
        assert len(policy) == 0
        assert policy.grants_for(BO) == ()

    def test_merged_with_concatenates(self):
        policy = self.build()
        merged = policy.merged_with(self.build())
        assert len(merged) == 4

    def test_str_round_trips_through_parser(self):
        from repro.core.parser import parse_policy

        policy = self.build()
        reparsed = parse_policy(str(policy), name="again")
        assert len(reparsed) == len(policy)
        assert [s.kind for s in reparsed] == [s.kind for s in policy]


class TestCachedActions:
    def test_actions_lowered_and_ordered(self):
        assertion = PolicyAssertion.parse('&(action="START" "Cancel")(count<4)')
        assert assertion.actions == ("start", "cancel")

    def test_actions_cached_on_instance(self):
        """cached_property memoises on the frozen instance: the same
        tuple object comes back, and the instance __dict__ holds it."""
        assertion = PolicyAssertion.parse("&(action=start)")
        first = assertion.actions
        assert assertion.actions is first
        assert assertion.__dict__["actions"] is first

    def test_instances_do_not_share_cache(self):
        a = PolicyAssertion.parse("&(action=start)")
        b = PolicyAssertion.parse("&(action=cancel)")
        assert a.actions == ("start",)
        assert b.actions == ("cancel",)
