"""Unit tests for the reverse authorization index (repro.core.query)."""

import pytest

from repro.core.combination import CombinationAlgorithm, CombinedEvaluator
from repro.core.evaluator import PolicyEvaluator
from repro.core.parser import parse_policy
from repro.core.query import (
    ANY_ACTION,
    PreDecision,
    QueryEngine,
    QueryIndex,
    Reachability,
)
from repro.core.request import AuthorizationRequest
from repro.obs.registry import MetricsRegistry
from repro.rsl.parser import parse_specification

ALICE = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Alice"
BOB = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bob"
CAROL = "/O=Grid/O=Globus/OU=hep.example.org/CN=Carol"
STRANGER = "/O=Elsewhere/CN=Nobody"

POLICY_TEXT = f"""
# requirement: every start inside mcs.anl.gov must carry a jobtag
&/O=Grid/O=Globus/OU=mcs.anl.gov*:
    (action=start)(jobtag!=NULL)
{ALICE}:
    &(action=start)(executable=transp)(count<4)
    &(action=cancel)(jobowner=self)
{BOB}:
    &(action!=none)(maxwalltime<=600)
/O=Grid/O=Globus/OU=hep.example.org*:
    &(action=information)(jobowner=self)
"""


@pytest.fixture()
def policy():
    return parse_policy(POLICY_TEXT, name="vo")


@pytest.fixture()
def index(policy):
    return QueryIndex(policy)


def start(requester, rsl):
    return AuthorizationRequest.start(requester, parse_specification(rsl))


class TestProfiles:
    def test_permissions_enumerated_with_provenance(self, index):
        permissions = index.permissions_for(ALICE)
        by_action = {p.action: p for p in permissions}
        assert set(by_action) == {"start", "cancel"}
        assert "executable" in str(by_action["start"].constraints)
        assert by_action["start"].source == "vo"
        assert by_action["start"].granted_by == ALICE
        # statement orders are positions in the source policy
        assert by_action["start"].statement_order == 1

    def test_wildcard_guard_enumerates_any_action(self, index):
        permissions = index.permissions_for(BOB)
        assert [p.action for p in permissions] == [ANY_ACTION]

    def test_prefix_group_profile(self, index):
        profile = index.profile(CAROL)
        assert profile.grant_actions == {"information"}
        assert not profile.has_catchall
        # the mcs requirement does not apply to hep subjects
        assert not profile.requirements

    def test_requirements_listed(self, index):
        requirements = index.requirements_for(ALICE)
        assert len(requirements) == 1
        assert "jobtag" in str(requirements[0])

    def test_exact_subject_never_catches_longer_dn(self, policy):
        # mirrors the model-layer rule: CN=Alice must not match a
        # hypothetical CN=Aliceson even though it is a string prefix
        index = QueryIndex(policy)
        longer = ALICE + "son"
        profile = index.profile(longer)
        assert not profile.grants
        # the group requirement still applies via the OU prefix
        assert profile.requirements

    def test_profile_memo_bounded_and_counted(self, policy):
        index = QueryIndex(policy, profile_cap=2)
        index.profile(ALICE)
        index.profile(ALICE)
        index.profile(BOB)
        index.profile(CAROL)  # evicts ALICE
        assert index.profile_memo_size == 2
        assert index.profile_hits == 1
        index.profile(ALICE)  # rebuilt
        assert index.profile_misses == 4


class TestClassification:
    def test_reachable(self, index):
        assert index.classify(ALICE, "start") is Reachability.REACHABLE
        assert index.classify(ALICE, "cancel") is Reachability.REACHABLE

    def test_denied_for_unreachable_action(self, index):
        assert index.classify(ALICE, "signal") is Reachability.DENIED
        assert index.classify(CAROL, "start") is Reachability.DENIED

    def test_wildcard_reachable_for_every_action(self, index):
        for action in ("start", "cancel", "signal", "information"):
            assert index.classify(BOB, action) is Reachability.REACHABLE

    def test_not_applicable_for_stranger(self, index):
        assert index.classify(STRANGER, "start") is Reachability.NOT_APPLICABLE

    def test_case_insensitive_action(self, index):
        assert index.classify(ALICE, "START") is Reachability.REACHABLE


class TestDeepCheck:
    def test_matching_request_is_reachable(self, index):
        request = start(ALICE, "&(executable=transp)(count=2)(jobtag=NFC)")
        assert index.grant_reachable(request)

    def test_constraint_mismatch_is_not_reachable(self, index):
        request = start(ALICE, "&(executable=rogue)(jobtag=NFC)")
        assert not index.grant_reachable(request)

    def test_deep_check_matches_forward_non_permit(self, policy, index):
        # whenever the deep check says unreachable, forward evaluation
        # must not permit — spot-check the contract the differential
        # suite hammers at scale
        evaluator = PolicyEvaluator(policy, source="vo")
        for rsl in (
            "&(executable=rogue)(jobtag=NFC)",
            "&(executable=transp)(count=9)(jobtag=NFC)",
        ):
            request = start(ALICE, rsl)
            assert not index.grant_reachable(request)
            assert not evaluator.evaluate(request).is_permit


class TestReverseSubjects:
    def test_subjects_for_action(self, index):
        exact, groups = index.subjects_for("information")
        assert BOB in exact  # wildcard guard reaches every action
        assert "/O=Grid/O=Globus/OU=hep.example.org" in groups
        assert ALICE not in exact

    def test_permitted_subjects_verified_by_forward_evaluation(self, index):
        spec = parse_specification("&(executable=transp)(count=2)(jobtag=NFC)")
        result = index.permitted_subjects("start", job_description=spec)
        # Alice's grant matches and the jobtag requirement is met; Bob's
        # wildcard grant bounds maxwalltime which the spec omits -> his
        # catch-all assertion still matches (no maxwalltime attribute
        # relation fails open? no — maxwalltime<=600 with no value in
        # the request fails), so forward evaluation decides.
        assert ALICE in result.identities
        assert result.groups == ()

    def test_requirement_denials_honoured(self, index):
        # a requirement violation (missing jobtag) must exclude the
        # subject even though a grant matches
        spec = parse_specification("&(executable=transp)(count=2)")
        result = index.permitted_subjects("start", job_description=spec)
        assert ALICE not in result.identities

    def test_candidates_extend_verification(self, index):
        spec = parse_specification("&(jobowner=self)(jobtag=NFC)")
        result = index.permitted_subjects(
            "information",
            job_description=spec,
            jobowner=CAROL,
            candidates=[CAROL],
        )
        assert CAROL in result.identities


class TestQueryEngine:
    def make_engine(self, policy, algorithm=CombinationAlgorithm.ALL_MUST_PERMIT):
        evaluator = PolicyEvaluator(policy, source="vo")
        combined = CombinedEvaluator([evaluator], algorithm=algorithm)
        return QueryEngine.from_combined(combined), evaluator

    def test_undecided_for_reachable_request(self, policy):
        engine, _ = self.make_engine(policy)
        pre = engine.check_request(
            start(ALICE, "&(executable=transp)(count=2)(jobtag=NFC)")
        )
        assert pre == PreDecision(guaranteed_deny=False)

    def test_levels(self, policy):
        engine, _ = self.make_engine(policy)
        assert engine.check_action(STRANGER, "start").level == "subject"
        assert engine.check_action(ALICE, "signal").level == "action"
        deep = engine.check_request(start(ALICE, "&(executable=rogue)"))
        assert deep.guaranteed_deny and deep.level == "constraint"

    def test_rebuild_on_epoch_bump(self, policy):
        engine, evaluator = self.make_engine(policy)
        assert engine.check_action(STRANGER, "start").guaranteed_deny
        assert engine.rebuilds == 1
        evaluator.replace_policy(
            parse_policy(f"{STRANGER}:\n    &(action=start)\n", name="vo")
        )
        pre = engine.check_action(STRANGER, "start")
        assert not pre.guaranteed_deny
        assert engine.rebuilds == 2

    def test_extra_epoch_source_forces_rebuild(self, policy):
        class Broadcast:
            policy_epoch = 0

        engine, _ = self.make_engine(policy)
        broadcast = Broadcast()
        engine.ensure_fresh()
        engine.add_epoch_source(broadcast)
        engine.ensure_fresh()
        assert engine.rebuilds == 2
        broadcast.policy_epoch = 1
        engine.ensure_fresh()
        assert engine.rebuilds == 3

    def test_metrics_exported(self, policy):
        registry = MetricsRegistry()
        evaluator = PolicyEvaluator(policy, source="vo")
        engine = QueryEngine(
            [evaluator], registry=registry, consumer="test"
        )
        engine.check_action(STRANGER, "start")
        engine.check_action(ALICE, "start")
        assert registry.value(
            "query_prefilter_checks_total", consumer="test"
        ) == 2.0
        assert registry.value(
            "query_prefilter_denied_total", consumer="test", level="subject"
        ) == 1.0
        assert registry.value(
            "query_index_rebuilds_total", consumer="test"
        ) == 1.0

    def test_explain_merges_sources(self, policy):
        local = parse_policy(
            f"{ALICE}:\n    &(action=signal)(jobowner=self)\n", name="local"
        )
        combined = CombinedEvaluator(
            [
                PolicyEvaluator(policy, source="vo"),
                PolicyEvaluator(local, source="local"),
            ]
        )
        engine = QueryEngine.from_combined(combined)
        explanation = engine.explain(ALICE)
        assert explanation.known
        assert explanation.actions() == ("cancel", "signal", "start")
        sources = {p.source for p in explanation.permissions}
        assert sources == {"vo", "local"}

    def test_explain_unknown_subject(self, policy):
        engine, _ = self.make_engine(policy)
        explanation = engine.explain(STRANGER)
        assert not explanation.known
        assert explanation.permissions == ()

    def test_needs_at_least_one_source(self):
        with pytest.raises(ValueError):
            QueryEngine([])


class TestCombinedGuarantees:
    """The guaranteed-deny matrix across combination algorithms."""

    def setup_method(self):
        vo = parse_policy(
            f"{ALICE}:\n    &(action=start)(jobtag!=NULL)\n", name="vo"
        )
        local = parse_policy(
            f"{BOB}:\n    &(action=start)(jobtag!=NULL)\n", name="local"
        )
        self.vo = PolicyEvaluator(vo, source="vo")
        self.local = PolicyEvaluator(local, source="local")

    def engine(self, algorithm):
        return QueryEngine(
            [self.vo, self.local], algorithm=algorithm
        )

    def test_all_must_permit_denies_on_any_abstain(self):
        engine = self.engine(CombinationAlgorithm.ALL_MUST_PERMIT)
        # Alice is unknown to local -> local abstains -> combined deny
        assert engine.check_action(ALICE, "start").guaranteed_deny
        assert engine.check_action(BOB, "start").guaranteed_deny
        assert engine.check_action(STRANGER, "start").guaranteed_deny

    def test_permit_overrides_defers_on_abstain(self):
        engine = self.engine(
            CombinationAlgorithm.PERMIT_OVERRIDES_NOT_APPLICABLE
        )
        # local abstains, vo could permit -> undecided
        assert not engine.check_action(ALICE, "start").guaranteed_deny
        assert not engine.check_action(BOB, "start").guaranteed_deny
        # nobody has a statement -> all abstain -> guaranteed deny
        assert engine.check_action(STRANGER, "start").guaranteed_deny

    def test_permit_overrides_explicit_deny_wins(self):
        engine = self.engine(
            CombinationAlgorithm.PERMIT_OVERRIDES_NOT_APPLICABLE
        )
        # vo has statements for Alice but no grant for cancel ->
        # explicit forward DENY from vo -> combined deny even though
        # local abstains
        pre = engine.check_action(ALICE, "cancel")
        assert pre.guaranteed_deny
        assert pre.level == "action"
