"""The policy enforcement point."""

import pytest

from repro.core.builtin_callouts import broken_callout, deny_all, permit_all
from repro.core.callout import (
    GATEKEEPER_AUTHZ_CALLOUT,
    GRAM_AUTHZ_CALLOUT,
    CalloutRegistry,
)
from repro.core.errors import AuthorizationDenied, AuthorizationSystemFailure
from repro.core.pep import EnforcementPoint, PEPPlacement
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification

ALICE = "/O=Grid/OU=org/CN=Alice"


def make_pep(callout):
    registry = CalloutRegistry()
    registry.register(GRAM_AUTHZ_CALLOUT, callout)
    return EnforcementPoint(registry=registry)


@pytest.fixture
def request_():
    return AuthorizationRequest.start(ALICE, parse_specification("&(executable=x)"))


class TestAuthorize:
    def test_permit_returns_decision(self, request_):
        pep = make_pep(permit_all)
        decision = pep.authorize(request_)
        assert decision.is_permit
        assert pep.permits == 1

    def test_denial_raises_with_reasons(self, request_):
        pep = make_pep(deny_all)
        with pytest.raises(AuthorizationDenied) as excinfo:
            pep.authorize(request_)
        assert excinfo.value.reasons
        assert pep.denials == 1

    def test_system_failure_propagates(self, request_):
        pep = make_pep(broken_callout)
        with pytest.raises(AuthorizationSystemFailure):
            pep.authorize(request_)
        assert pep.failures == 1

    def test_unconfigured_registry_fails_closed(self, request_):
        pep = EnforcementPoint(registry=CalloutRegistry())
        with pytest.raises(AuthorizationSystemFailure):
            pep.authorize(request_)


class TestDecide:
    def test_decide_swallows_denial(self, request_):
        pep = make_pep(deny_all)
        decision = pep.decide(request_)
        assert decision.is_deny

    def test_decide_still_raises_on_system_failure(self, request_):
        pep = make_pep(broken_callout)
        with pytest.raises(AuthorizationSystemFailure):
            pep.decide(request_)

    def test_decide_matches_authorize_on_permit(self, request_):
        pep = make_pep(permit_all)
        via_decide = pep.decide(request_)
        via_authorize = pep.authorize(request_)
        assert via_decide.is_permit and via_authorize.is_permit
        assert via_decide.source == via_authorize.source
        assert pep.permits == 2

    def test_decide_matches_authorize_on_denial(self, request_):
        pep = make_pep(deny_all)
        via_decide = pep.decide(request_)
        with pytest.raises(AuthorizationDenied) as excinfo:
            pep.authorize(request_)
        assert via_decide.reasons == excinfo.value.reasons
        assert via_decide.context is not None
        assert via_decide.context.effect is via_decide.effect
        assert pep.denials == 2

    def test_decide_counts_like_authorize(self, request_):
        """Both entry points feed the same metrics and audit trail."""
        pep = make_pep(deny_all)
        pep.decide(request_)
        with pytest.raises(AuthorizationDenied):
            pep.authorize(request_)
        assert pep.decisions_made == 2
        assert len(pep.audit_log) == 2

    def test_decide_system_failure_carries_context(self, request_):
        pep = make_pep(broken_callout)
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            pep.decide(request_)
        assert excinfo.value.context is not None
        assert excinfo.value.context.failure


class TestAudit:
    def test_every_decision_is_audited(self, request_):
        pep = make_pep(permit_all)
        pep.authorize(request_)
        assert len(pep.audit_log) == 1
        record = pep.audit_log[0]
        assert record.permitted
        assert record.request is request_

    def test_failures_audited_with_message(self, request_):
        pep = make_pep(broken_callout)
        with pytest.raises(AuthorizationSystemFailure):
            pep.authorize(request_)
        record = pep.audit_log[0]
        assert not record.permitted
        assert record.failure

    def test_audit_log_is_bounded(self, request_):
        pep = make_pep(permit_all)
        pep.audit_limit = 5
        for _ in range(12):
            pep.authorize(request_)
        assert len(pep.audit_log) == 5
        assert pep.permits == 12

    def test_decisions_made(self, request_):
        pep = make_pep(permit_all)
        pep.authorize(request_)
        pep.authorize(request_)
        assert pep.decisions_made == 2


class TestPlacement:
    def test_default_placement_is_job_manager(self):
        assert make_pep(permit_all).placement is PEPPlacement.JOB_MANAGER

    def test_gatekeeper_placement(self):
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all)
        pep = EnforcementPoint(registry=registry, placement=PEPPlacement.GATEKEEPER)
        assert pep.placement is PEPPlacement.GATEKEEPER
        assert "gatekeeper" in str(pep)

    def test_gatekeeper_callout_type_is_invoked(self, request_):
        """The §6.2 placement uses its own abstract callout type."""
        registry = CalloutRegistry()
        registry.register(GATEKEEPER_AUTHZ_CALLOUT, permit_all)
        pep = EnforcementPoint(
            registry=registry,
            callout_type=GATEKEEPER_AUTHZ_CALLOUT,
            placement=PEPPlacement.GATEKEEPER,
        )
        decision = pep.authorize(request_)
        assert decision.is_permit
        assert decision.context.placement == "gatekeeper"

    def test_gatekeeper_type_unconfigured_fails_closed(self, request_):
        """gram.authz being configured does not satisfy gatekeeper.authz."""
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all)
        pep = EnforcementPoint(
            registry=registry,
            callout_type=GATEKEEPER_AUTHZ_CALLOUT,
            placement=PEPPlacement.GATEKEEPER,
        )
        with pytest.raises(AuthorizationSystemFailure):
            pep.authorize(request_)

    def test_both_placements_agree_on_the_same_policy(self, request_):
        """Same callout behind either placement yields the same effect."""
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, deny_all)
        registry.register(GATEKEEPER_AUTHZ_CALLOUT, deny_all)
        jm_pep = EnforcementPoint(registry=registry)
        gk_pep = EnforcementPoint(
            registry=registry,
            callout_type=GATEKEEPER_AUTHZ_CALLOUT,
            placement=PEPPlacement.GATEKEEPER,
        )
        assert jm_pep.decide(request_).effect is gk_pep.decide(request_).effect
        assert jm_pep.decide(request_).context.placement == "job-manager"
        assert gk_pep.decide(request_).context.placement == "gatekeeper"
