"""End-to-end semantics of the paper's Figure 3 policy.

Every claim the paper's prose makes about Figure 3 is asserted here:

* the group requirement forces jobtags on start requests;
* Bo Liu "can only start jobs using the test1 and test2 executables",
  from /sandbox/test, with the stated jobtags, and count < 4;
* Kate Keahey may start TRANSP with jobtag NFC and may "cancel all
  the jobs with jobtag NFC; for example, jobs based on the executable
  test1 started by Bo Liu" (the paper says test1 but the rule binds
  on the jobtag; we follow the rule).
"""

import pytest

from repro.core.evaluator import PolicyEvaluator
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification

from tests.conftest import BO, KATE, OUTSIDER


@pytest.fixture
def pdp(figure3_policy):
    return PolicyEvaluator(figure3_policy)


def start(who, rsl):
    return AuthorizationRequest.start(who, parse_specification(rsl))


def manage(who, action, rsl, owner):
    return AuthorizationRequest.manage(
        who, action, parse_specification(rsl), jobowner=owner
    )


class TestGroupRequirement:
    def test_start_without_jobtag_denied_for_group_members(self, pdp):
        request = start(BO, "&(executable=test1)(directory=/sandbox/test)(count=1)")
        assert pdp.evaluate(request).is_deny

    def test_requirement_names_the_missing_attribute(self, pdp):
        request = start(BO, "&(executable=test1)(directory=/sandbox/test)(count=1)")
        decision = pdp.evaluate(request)
        assert any("jobtag" in reason for reason in decision.reasons)


class TestBoLiu:
    def test_may_start_test1_as_ads(self, pdp):
        request = start(
            BO, "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)"
        )
        assert pdp.evaluate(request).is_permit

    def test_may_start_test2_as_nfc(self, pdp):
        request = start(
            BO, "&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=3)"
        )
        assert pdp.evaluate(request).is_permit

    def test_may_not_cross_jobtags(self, pdp):
        """test1 is bound to ADS and test2 to NFC."""
        request = start(
            BO, "&(executable=test1)(directory=/sandbox/test)(jobtag=NFC)(count=2)"
        )
        assert pdp.evaluate(request).is_deny

    def test_may_not_start_other_executables(self, pdp):
        request = start(
            BO, "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=1)"
        )
        assert pdp.evaluate(request).is_deny

    def test_count_constraint_is_strict(self, pdp):
        at_limit = start(
            BO, "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)"
        )
        below = start(
            BO, "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)"
        )
        assert pdp.evaluate(at_limit).is_deny
        assert pdp.evaluate(below).is_permit

    def test_directory_constraint(self, pdp):
        request = start(
            BO, "&(executable=test1)(directory=/tmp)(jobtag=ADS)(count=1)"
        )
        assert pdp.evaluate(request).is_deny

    def test_may_not_cancel_even_own_jobs(self, pdp):
        """Figure 3 gives Bo no cancel rights at all."""
        request = manage(
            BO, "cancel", "&(executable=test1)(jobtag=ADS)", owner=BO
        )
        assert pdp.evaluate(request).is_deny


class TestKateKeahey:
    def test_may_start_transp_as_nfc(self, pdp):
        request = start(
            KATE, "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)"
        )
        assert pdp.evaluate(request).is_permit

    def test_may_cancel_bos_nfc_job(self, pdp):
        """The paper's headline example of VO-wide job management."""
        bos_job = "&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)"
        request = manage(KATE, "cancel", bos_job, owner=BO)
        assert pdp.evaluate(request).is_permit

    def test_may_not_cancel_ads_jobs(self, pdp):
        bos_job = "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)"
        request = manage(KATE, "cancel", bos_job, owner=BO)
        assert pdp.evaluate(request).is_deny

    def test_may_not_cancel_untagged_jobs(self, pdp):
        request = manage(KATE, "cancel", "&(executable=test2)", owner=BO)
        assert pdp.evaluate(request).is_deny

    def test_may_not_signal(self, pdp):
        request = manage(
            KATE, "signal", "&(executable=test2)(jobtag=NFC)", owner=BO
        )
        assert pdp.evaluate(request).is_deny

    def test_may_not_start_test1(self, pdp):
        request = start(
            KATE, "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=1)"
        )
        assert pdp.evaluate(request).is_deny


class TestOutsiders:
    def test_outsider_gets_nothing(self, pdp):
        request = start(
            OUTSIDER,
            "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=1)",
        )
        decision = pdp.evaluate(request)
        assert decision.is_deny

    def test_outsider_cannot_manage(self, pdp):
        request = manage(
            OUTSIDER, "cancel", "&(executable=test2)(jobtag=NFC)", owner=BO
        )
        assert pdp.evaluate(request).is_deny
