"""Differential suite: reverse-index pre-decisions vs forward evaluation.

The safety bar for the reverse index is *deny-safe only*: across
randomized policies, subjects, actions, constraint shapes, wildcard
statements, deny-override requirements and mid-stream policy-epoch
bumps, a ``guaranteed_deny`` pre-decision must never suppress a
request forward evaluation would PERMIT.  Zero tolerance — one unsafe
answer means the pre-filter is dropping legitimate work.  Enumeration
parity is pinned alongside: every forward PERMIT's action must appear
in the subject's reachable-permission set.

The streams replay ≥10k probes in total (pinned by the floor test at
the bottom, like the compiled-engine and capability parity suites)
through :func:`repro.workloads.query_audit.run_query_audit`, which
mixes member, in-group-stranger and out-of-universe probes and bumps
policy epochs mid-stream — the engine must rebuild before its next
answer, so a stale index serving even one decision fails loudly here.
"""

import pytest

from repro.core.combination import CombinationAlgorithm
from repro.workloads.generator import PolicyShape
from repro.workloads.query_audit import (
    QueryAuditConfig,
    run_query_audit,
)


def assert_deny_safe(result):
    assert result.unsafe == 0, (
        f"{result.unsafe} guaranteed-DENY pre-decision(s) suppressed a "
        f"forward PERMIT; first: {result.first_unsafe}"
    )
    assert result.enumeration_misses == 0, (
        f"{result.enumeration_misses} forward PERMIT(s) missing from "
        f"the enumerated reachable-permission set"
    )


CONFIGS = [
    pytest.param(
        QueryAuditConfig(
            shape=PolicyShape(users=12, seed=3),
            pool_size=90,
            cases=3000,
            seed=19,
        ),
        id="small-pool-all-must-permit",
    ),
    pytest.param(
        QueryAuditConfig(
            shape=PolicyShape(
                users=40,
                statements_per_user=2,
                assertions_per_statement=3,
                seed=17,
            ),
            pool_size=260,
            cases=4000,
            seed=23,
            bump_every=600,
            algorithm=CombinationAlgorithm.PERMIT_OVERRIDES_NOT_APPLICABLE,
        ),
        id="wide-policy-permit-overrides",
    ),
    pytest.param(
        QueryAuditConfig(
            shape=PolicyShape(users=25, seed=41),
            pool_size=180,
            cases=3000,
            seed=31,
            bump_every=400,
            deep=False,
            stranger_fraction=0.5,
        ),
        id="classification-only-heavy-strangers",
    ),
]


@pytest.mark.parametrize("config", CONFIGS)
def test_deny_safety_zero_tolerance(config):
    result = run_query_audit(config)
    assert result.cases == config.cases
    assert_deny_safe(result)
    # The stream genuinely exercised both sides and the bump machinery.
    assert result.fresh_permits > 0
    assert result.prefiltered > 0
    if config.bump_every:
        assert result.epoch_bumps == (config.cases - 1) // config.bump_every
        # one initial build plus one rebuild per bump — the engine
        # never answered from a stale index
        assert result.rebuilds == result.epoch_bumps + 1


def test_deep_prefilter_catches_most_denials():
    result = run_query_audit(QueryAuditConfig(cases=3000))
    assert_deny_safe(result)
    # the deep check proves the bulk of forward denials statically —
    # that coverage is the whole point of pre-filtering
    assert result.deny_coverage > 0.8
    # and all three proof levels appear in a mixed stream
    assert set(result.levels) == {"subject", "action", "constraint"}


def test_total_probe_floor():
    """The suite above must replay at least the advertised 10k probes."""
    total = sum(param.values[0].cases for param in CONFIGS) + 3000
    assert total >= 10_000
