"""The default-deny policy decision point."""


from repro.core.decision import Effect
from repro.core.evaluator import PolicyEvaluator
from repro.core.parser import parse_policy
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification

ALICE = "/O=Grid/OU=org/CN=Alice"
BOB = "/O=Grid/OU=org/CN=Bob"
EVE = "/O=Other/CN=Eve"


def evaluator(text: str) -> PolicyEvaluator:
    return PolicyEvaluator(parse_policy(text, name="test"))


def start(who: str, rsl: str) -> AuthorizationRequest:
    return AuthorizationRequest.start(who, parse_specification(rsl))


def manage(who: str, action: str, rsl: str, owner: str) -> AuthorizationRequest:
    return AuthorizationRequest.manage(
        who, action, parse_specification(rsl), jobowner=owner
    )


class TestDefaultDeny:
    def test_unknown_user_is_not_applicable(self):
        ev = evaluator(f"{ALICE}: &(action=start)")
        decision = ev.evaluate(start(EVE, "&(executable=x)"))
        assert decision.effect is Effect.NOT_APPLICABLE
        assert decision.is_deny

    def test_known_user_unmatched_request_is_denied(self):
        ev = evaluator(f"{ALICE}: &(action=start)(executable=good)")
        decision = ev.evaluate(start(ALICE, "&(executable=bad)"))
        assert decision.effect is Effect.DENY
        assert decision.reasons

    def test_action_not_granted_is_denied(self):
        ev = evaluator(f"{ALICE}: &(action=start)(executable=x)")
        decision = ev.evaluate(manage(ALICE, "cancel", "&(executable=x)", ALICE))
        assert decision.is_deny


class TestGrants:
    def test_matching_grant_permits(self):
        ev = evaluator(f"{ALICE}: &(action=start)(executable=x)")
        decision = ev.evaluate(start(ALICE, "&(executable=x)"))
        assert decision.is_permit
        assert "granted by" in decision.reasons[0]

    def test_any_assertion_suffices(self):
        ev = evaluator(
            f"{ALICE}: &(action=start)(executable=a) &(action=start)(executable=b)"
        )
        assert ev.evaluate(start(ALICE, "&(executable=b)")).is_permit

    def test_any_statement_suffices(self):
        text = f"""
        {ALICE}: &(action=start)(executable=a)
        {ALICE}: &(action=start)(executable=b)
        """
        ev = evaluator(text)
        assert ev.evaluate(start(ALICE, "&(executable=b)")).is_permit

    def test_group_grant_via_prefix(self):
        ev = evaluator("/O=Grid/OU=org: &(action=information)")
        decision = ev.evaluate(manage(BOB, "information", "&(executable=x)", ALICE))
        assert decision.is_permit

    def test_jobowner_self_grant(self):
        ev = evaluator(f"/O=Grid/OU=org: &(action=cancel)(jobowner=self)")
        own = manage(ALICE, "cancel", "&(executable=x)", ALICE)
        others = manage(ALICE, "cancel", "&(executable=x)", BOB)
        assert ev.evaluate(own).is_permit
        assert ev.evaluate(others).is_deny


class TestRequirements:
    POLICY = f"""
    &/O=Grid/OU=org:
        (action=start)(jobtag!=NULL)
    {ALICE}: &(action=start)(executable=x)
    """

    def test_requirement_blocks_even_granted_requests(self):
        ev = evaluator(self.POLICY)
        decision = ev.evaluate(start(ALICE, "&(executable=x)"))
        assert decision.is_deny
        assert "requirement" in decision.reasons[0]

    def test_requirement_satisfied_grant_applies(self):
        ev = evaluator(self.POLICY)
        decision = ev.evaluate(start(ALICE, "&(executable=x)(jobtag=T)"))
        assert decision.is_permit

    def test_requirement_guard_limits_scope(self):
        """The jobtag requirement guards on start; cancel is exempt."""
        text = self.POLICY + f"\n{ALICE}: &(action=cancel)(jobowner=self)"
        ev = evaluator(text)
        decision = ev.evaluate(manage(ALICE, "cancel", "&(executable=x)", ALICE))
        assert decision.is_permit

    def test_requirement_alone_grants_nothing(self):
        ev = evaluator("&/O=Grid/OU=org: (action=start)(jobtag!=NULL)")
        decision = ev.evaluate(start(ALICE, "&(executable=x)(jobtag=T)"))
        assert decision.is_deny

    def test_requirement_does_not_apply_to_outsiders(self):
        text = self.POLICY + f"\n{EVE}: &(action=start)(executable=x)"
        ev = evaluator(text)
        # Eve is outside /O=Grid/OU=org: no jobtag requirement for her.
        assert ev.evaluate(start(EVE, "&(executable=x)")).is_permit


class TestComputedAttributes:
    def test_client_cannot_spoof_action(self):
        """action in the submitted RSL is replaced by the real action."""
        ev = evaluator(f"{ALICE}: &(action=cancel)")
        request = start(ALICE, "&(executable=x)(action=cancel)")
        assert ev.evaluate(request).is_deny

    def test_client_cannot_spoof_jobowner(self):
        ev = evaluator(f'{ALICE}: &(action=cancel)(jobowner="{ALICE}")')
        request = manage(ALICE, "cancel", f'&(executable=x)(jobowner="{ALICE}")', BOB)
        assert ev.evaluate(request).is_deny


class TestBookkeeping:
    def test_evaluation_counter(self):
        ev = evaluator(f"{ALICE}: &(action=start)")
        for _ in range(3):
            ev.evaluate(start(ALICE, "&(executable=x)"))
        assert ev.evaluations == 3

    def test_source_attached_to_decisions(self):
        ev = PolicyEvaluator(
            parse_policy(f"{ALICE}: &(action=start)", name="vo-policy")
        )
        decision = ev.evaluate(start(ALICE, "&(executable=x)"))
        assert decision.source == "vo-policy"

    def test_deny_reasons_deduplicated_and_bounded(self):
        statements = "\n".join(
            f"{ALICE}: &(action=start)(executable=good{i})" for i in range(20)
        )
        ev = evaluator(statements)
        decision = ev.evaluate(start(ALICE, "&(executable=bad)"))
        assert decision.is_deny
        assert len(decision.reasons) <= 6


class TestSummariseFailures:
    """Limit semantics of the deny-summary helper: the fixed header
    plus up to *limit* distinct reasons, first-seen order, and the
    header is not counted against the limit."""

    summarise = staticmethod(PolicyEvaluator._summarise_failures)

    def test_header_always_first(self):
        assert self.summarise([]) == ("no grant assertion matched the request",)

    def test_deduplicates_preserving_first_seen_order(self):
        out = self.summarise(["b", "a", "b", "c", "a"])
        assert out == ("no grant assertion matched the request", "b", "a", "c")

    def test_header_not_counted_against_limit(self):
        reasons = [f"r{i}" for i in range(10)]
        out = self.summarise(reasons, limit=5)
        assert len(out) == 6  # header + 5 distinct reasons
        assert out[1:] == ("r0", "r1", "r2", "r3", "r4")

    def test_duplicates_do_not_consume_limit(self):
        reasons = ["dup"] * 50 + [f"r{i}" for i in range(5)]
        out = self.summarise(reasons, limit=3)
        assert out[1:] == ("dup", "r0", "r1")

    def test_failure_equal_to_header_not_repeated(self):
        out = self.summarise(["no grant assertion matched the request", "x"])
        assert out == ("no grant assertion matched the request", "x")

    def test_large_input_linear_shape(self):
        """A wide deny (hundreds of near-duplicate reasons) summarises
        to the same bounded tuple — this used to be an O(n^2) scan."""
        reasons = [f"r{i % 7}" for i in range(5000)]
        out = self.summarise(reasons, limit=5)
        assert out[0] == "no grant assertion matched the request"
        assert len(out) == 6
