"""The Figure 3 policy-file syntax."""

import pytest

from repro.core.errors import PolicyParseError
from repro.core.model import StatementKind
from repro.core.parser import (
    make_subject,
    parse_policy,
    parse_policy_file,
    split_assertions,
)


class TestBasicStatements:
    def test_single_grant(self):
        policy = parse_policy("/O=Grid/CN=Alice: &(action=start)(count<4)")
        assert len(policy) == 1
        statement = policy.statements[0]
        assert statement.kind is StatementKind.GRANT
        assert len(statement.assertions) == 1

    def test_requirement_marker(self):
        policy = parse_policy("&/O=Grid/OU=org: (action=start)(jobtag!=NULL)")
        assert policy.statements[0].kind is StatementKind.REQUIREMENT

    def test_multiple_assertions_on_one_line(self):
        policy = parse_policy(
            "/O=Grid/CN=Alice: &(action=start)(executable=a) &(action=cancel)"
        )
        assert len(policy.statements[0].assertions) == 2

    def test_assertions_on_continuation_lines(self):
        text = """
        /O=Grid/CN=Alice:
            &(action=start)(executable=a)
            &(action=cancel)(jobowner=self)
        """
        policy = parse_policy(text)
        assert len(policy.statements[0].assertions) == 2

    def test_multiple_statements(self):
        text = """
        /O=Grid/CN=Alice: &(action=start)
        /O=Grid/CN=Bob: &(action=cancel)
        """
        policy = parse_policy(text)
        assert len(policy) == 2

    def test_comments_and_blank_lines_ignored(self):
        text = """
        # the VO policy
        /O=Grid/CN=Alice: &(action=start)   # inline comment

        # done
        """
        policy = parse_policy(text)
        assert len(policy) == 1

    def test_hash_inside_quotes_is_not_a_comment(self):
        policy = parse_policy('/O=Grid/CN=A: &(action=start)(comment="#1 job")')
        spec = policy.statements[0].assertions[0].spec
        assert spec.first_value("comment") == "#1 job"

    def test_policy_name_recorded(self):
        policy = parse_policy("/O=Grid/CN=A: &(action=start)", name="vo")
        assert policy.name == "vo"
        assert policy.statements[0].origin == "vo"


class TestSubjectInterpretation:
    def test_cn_terminated_is_exact(self):
        subject = make_subject("/O=Grid/OU=x/CN=Alice")
        assert subject.exact

    def test_ou_terminated_is_prefix(self):
        subject = make_subject("/O=Grid/O=Globus/OU=mcs.anl.gov")
        assert not subject.exact

    def test_explicit_star_forces_prefix(self):
        subject = make_subject("/O=Grid/OU=x/CN=Ali*")
        assert not subject.exact
        assert subject.pattern == "/O=Grid/OU=x/CN=Ali"


class TestAssertionSplitting:
    def test_split_on_top_level_ampersand(self):
        chunks = split_assertions("&(a=1)(b=2) &(c=3)")
        assert len(chunks) == 2

    def test_leading_assertion_may_omit_ampersand(self):
        chunks = split_assertions("(a=1)(b=2) &(c=3)")
        assert len(chunks) == 2

    def test_single_assertion(self):
        chunks = split_assertions("(action = start)(jobtag != NULL)")
        assert len(chunks) == 1


class TestErrors:
    def test_body_before_subject_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("&(action=start)")

    def test_statement_without_assertions_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("/O=Grid/CN=Alice:")

    def test_bad_rsl_in_assertion_rejected(self):
        with pytest.raises(PolicyParseError) as excinfo:
            parse_policy("/O=Grid/CN=Alice: &(action=)")
        assert "assertion" in str(excinfo.value)

    def test_error_carries_line_number(self):
        with pytest.raises(PolicyParseError) as excinfo:
            parse_policy("\n\n/O=Grid/CN=Alice: &(broken")
        assert "line 3" in str(excinfo.value)

    def test_missing_file_raises_parse_error(self, tmp_path):
        with pytest.raises(PolicyParseError):
            parse_policy_file(str(tmp_path / "missing.policy"))


class TestFileLoading:
    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "vo.policy"
        path.write_text("/O=Grid/CN=Alice: &(action=start)\n")
        policy = parse_policy_file(str(path))
        assert len(policy) == 1
        assert policy.name == str(path)


class TestFigure3Structure:
    def test_figure3_parses_into_three_statements(self, figure3_policy):
        assert len(figure3_policy) == 3

    def test_first_statement_is_group_requirement(self, figure3_policy):
        first = figure3_policy.statements[0]
        assert first.kind is StatementKind.REQUIREMENT
        assert not first.subject.exact

    def test_bo_liu_has_two_grants(self, figure3_policy):
        bo_statement = figure3_policy.statements[1]
        assert bo_statement.kind is StatementKind.GRANT
        assert bo_statement.subject.exact
        assert len(bo_statement.assertions) == 2

    def test_kate_can_start_and_cancel(self, figure3_policy):
        kate_statement = figure3_policy.statements[2]
        actions = {a for ass in kate_statement.assertions for a in ass.actions}
        assert actions == {"start", "cancel"}
