"""The versioned policy store: publish, reject, rollback, hot reload."""

import json

import pytest

from repro.core.parser import parse_policy
from repro.core.store import (
    REJECT_EMPTY,
    REJECT_PARSE,
    REJECT_SOURCES,
    REJECT_VALIDATOR,
    BundleRejected,
    PolicyBundle,
    PolicyStoreError,
    PolicyWatcher,
    VersionedPolicyStore,
)
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig
from repro.sim.clock import Clock

ORG = "/O=Grid/OU=store.example.org"

VO_TEXT = f"""
{ORG}:
    &(action=start)(executable=sim)
    &(action=cancel)(jobowner=self)
    &(action=information)
"""

#: Same grammar, different grants: cancels become peer-allowed.
VO_TEXT_V2 = f"""
{ORG}:
    &(action=start)(executable=sim)
    &(action=cancel)
    &(action=information)
"""

BROKEN_TEXT = "this is not ( a policy"


def bundle(text=VO_TEXT, name="vo"):
    return PolicyBundle.from_texts({name: text})


class TestPolicyBundle:
    def test_digest_is_content_addressed(self):
        assert bundle().digest == bundle().digest
        assert bundle().digest != bundle(VO_TEXT_V2).digest

    def test_digest_ignores_assembly_route(self):
        """Files, strings and re-rendered policies name the same bundle."""
        policy = parse_policy(VO_TEXT, name="vo")
        rerendered = PolicyBundle.from_policies([policy])
        again = PolicyBundle.from_texts({"vo": str(policy)})
        assert rerendered.digest == again.digest

    def test_parse_round_trips(self):
        policies = bundle().parse()
        assert len(policies) == 1
        assert policies[0].name == "vo"

    def test_source_names_preserve_order(self):
        two = PolicyBundle.from_texts({"vo": VO_TEXT, "local": VO_TEXT_V2})
        assert two.source_names == ("vo", "local")


class TestPublish:
    def test_first_publish_is_epoch_one(self):
        store = VersionedPolicyStore()
        snapshot = store.publish(bundle())
        assert snapshot.epoch == 1
        assert store.policy_epoch == 1
        assert store.active() is snapshot
        assert snapshot.parent == ""

    def test_identical_content_is_a_noop(self):
        store = VersionedPolicyStore()
        first = store.publish(bundle())
        again = store.publish(bundle())
        assert again is first
        assert store.policy_epoch == 1
        assert store.noop_publishes == 1
        assert store.published_total == 1

    def test_changed_content_bumps_the_epoch(self):
        store = VersionedPolicyStore()
        store.publish(bundle())
        second = store.publish(bundle(VO_TEXT_V2))
        assert second.epoch == 2
        assert second.parent == bundle().digest

    def test_parse_failure_rejects_atomically(self):
        store = VersionedPolicyStore()
        active = store.publish(bundle())
        with pytest.raises(BundleRejected) as excinfo:
            store.publish(bundle(BROKEN_TEXT))
        assert excinfo.value.reason == REJECT_PARSE
        assert store.active() is active
        assert store.policy_epoch == 1
        assert store.rejected_total == 1

    def test_empty_bundle_rejected(self):
        store = VersionedPolicyStore()
        with pytest.raises(BundleRejected) as excinfo:
            store.publish(PolicyBundle(sources=()))
        assert excinfo.value.reason == REJECT_EMPTY

    def test_validator_veto_rejects_atomically(self):
        store = VersionedPolicyStore()
        active = store.publish(bundle())

        def veto(bundle_, policies):
            raise ValueError("not on my watch")

        store.add_validator(veto)
        with pytest.raises(BundleRejected) as excinfo:
            store.publish(bundle(VO_TEXT_V2))
        assert excinfo.value.reason == REJECT_VALIDATOR
        assert store.active() is active

    def test_subscribers_see_each_publish_once(self):
        store = VersionedPolicyStore()
        seen = []
        store.subscribe(seen.append)
        store.publish(bundle())
        store.publish(bundle())  # no-op: not delivered
        store.publish(bundle(VO_TEXT_V2))
        assert [snapshot.epoch for snapshot in seen] == [1, 2]

    def test_get_by_digest_prefix(self):
        store = VersionedPolicyStore()
        snapshot = store.publish(bundle())
        assert store.get(snapshot.digest) is snapshot
        assert store.get(snapshot.digest[:10]) is snapshot
        assert store.get("no-such") is None


class TestRollback:
    def test_rollback_is_a_new_epoch_with_old_content(self):
        store = VersionedPolicyStore()
        first = store.publish(bundle())
        store.publish(bundle(VO_TEXT_V2))
        rolled = store.rollback()
        assert rolled.epoch == 3
        assert rolled.digest == first.digest
        assert rolled.origin == "rollback"

    def test_rollback_by_digest(self):
        store = VersionedPolicyStore()
        first = store.publish(bundle())
        store.publish(bundle(VO_TEXT_V2))
        rolled = store.rollback(to=first.digest[:12])
        assert rolled.digest == first.digest

    def test_rollback_past_history_fails(self):
        store = VersionedPolicyStore()
        store.publish(bundle())
        with pytest.raises(PolicyStoreError):
            store.rollback(steps=5)
        with pytest.raises(PolicyStoreError):
            VersionedPolicyStore().rollback()


class TestDurableLog:
    def test_log_replays_into_a_fresh_store(self, tmp_path):
        log = str(tmp_path / "policies.jsonl")
        store = VersionedPolicyStore(log_path=log)
        store.publish(bundle())
        store.publish(bundle(VO_TEXT_V2))

        replica = VersionedPolicyStore(log_path=log)
        assert replica.policy_epoch == 2
        assert replica.active().digest == store.active().digest
        assert [s.epoch for s in replica.log_entries()] == [1, 2]

    def test_truncated_trailing_line_is_skipped_not_fatal(self, tmp_path):
        log = str(tmp_path / "policies.jsonl")
        store = VersionedPolicyStore(log_path=log)
        store.publish(bundle())
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"epoch": 2, "digest": "deadbeef", "sour')  # crash

        replica = VersionedPolicyStore(log_path=log)
        assert replica.policy_epoch == 1
        assert replica.replay_skipped_lines == 1


class TestPolicyWatcher:
    def write(self, path, text, mtime):
        path.write_text(text)
        import os

        os.utime(path, (mtime, mtime))

    def test_reload_on_mtime_change(self, tmp_path):
        clock = Clock()
        policy_file = tmp_path / "vo.policy"
        self.write(policy_file, VO_TEXT, 1000.0)
        store = VersionedPolicyStore(clock=clock)
        store.publish(bundle())
        watcher = PolicyWatcher(
            store, [("vo", str(policy_file))], clock, interval=5.0
        )
        watcher.start()

        clock.advance(5.0)
        assert watcher.polls == 1
        assert store.policy_epoch == 1  # untouched file: no reload

        self.write(policy_file, VO_TEXT_V2, 2000.0)
        clock.advance(5.0)
        assert watcher.reloads == 1
        assert store.policy_epoch == 2
        assert store.active().origin == "watcher"

    def test_paths_accept_a_mapping(self, tmp_path):
        clock = Clock()
        policy_file = tmp_path / "vo.policy"
        self.write(policy_file, VO_TEXT, 1000.0)
        store = VersionedPolicyStore(clock=clock)
        store.publish(bundle())
        # {name: path} is the natural shape; it must behave exactly
        # like the [(name, path)] pair form, not silently watch junk.
        watcher = PolicyWatcher(
            store, {"vo": str(policy_file)}, clock, interval=5.0
        )
        watcher.start()
        self.write(policy_file, VO_TEXT_V2, 2000.0)
        clock.advance(5.0)
        assert watcher.reloads == 1
        assert store.policy_epoch == 2

    def test_touched_but_identical_content_is_a_noop(self, tmp_path):
        clock = Clock()
        policy_file = tmp_path / "vo.policy"
        self.write(policy_file, VO_TEXT, 1000.0)
        store = VersionedPolicyStore(clock=clock)
        store.publish(PolicyBundle.from_files([("vo", str(policy_file))]))
        watcher = PolicyWatcher(
            store, [("vo", str(policy_file))], clock, interval=5.0
        )
        watcher.start()

        self.write(policy_file, VO_TEXT, 3000.0)  # touch, same bytes
        clock.advance(5.0)
        assert watcher.noops == 1
        assert watcher.reloads == 0
        assert store.policy_epoch == 1

    def test_broken_file_rejected_old_epoch_serves(self, tmp_path):
        clock = Clock()
        policy_file = tmp_path / "vo.policy"
        self.write(policy_file, VO_TEXT, 1000.0)
        store = VersionedPolicyStore(clock=clock)
        before = store.publish(
            PolicyBundle.from_files([("vo", str(policy_file))])
        )
        watcher = PolicyWatcher(
            store, [("vo", str(policy_file))], clock, interval=5.0
        )
        watcher.start()

        self.write(policy_file, BROKEN_TEXT, 2000.0)
        clock.advance(5.0)
        assert watcher.rejected == 1
        assert store.active() is before
        assert store.policy_epoch == 1

        # The polling loop survives the rejection and picks up the fix.
        self.write(policy_file, VO_TEXT_V2, 3000.0)
        clock.advance(5.0)
        assert watcher.reloads == 1
        assert store.policy_epoch == 2

    def test_stop_halts_polling(self, tmp_path):
        clock = Clock()
        policy_file = tmp_path / "vo.policy"
        self.write(policy_file, VO_TEXT, 1000.0)
        store = VersionedPolicyStore(clock=clock)
        watcher = PolicyWatcher(
            store, [("vo", str(policy_file))], clock, interval=5.0
        )
        watcher.start()
        clock.advance(5.0)
        watcher.stop()
        clock.advance(50.0)
        assert watcher.polls == 1


ALICE = f"{ORG}/CN=Alice"
BOB = f"{ORG}/CN=Bob"
RSL = "&(executable=sim)(count=1)(runtime=100)"


def build_store_service(**overrides):
    store = VersionedPolicyStore()
    defaults = dict(
        policies=(parse_policy(VO_TEXT, name="vo"),),
        policy_store=store,
    )
    defaults.update(overrides)
    return GramService(ServiceConfig(**defaults)), store


class TestServiceIntegration:
    def test_service_seeds_an_empty_store(self):
        service, store = build_store_service()
        assert store.policy_epoch == 1
        assert store.active().origin == "seed"
        assert store.active().bundle.source_names == ("vo",)

    def test_service_adopts_a_prepublished_store(self):
        store = VersionedPolicyStore()
        store.publish(bundle(VO_TEXT_V2))
        service = GramService(
            ServiceConfig(
                policies=(parse_policy(VO_TEXT, name="vo"),),
                policy_store=store,
            )
        )
        # V2 allows peer cancel; the config's text would deny it.
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        bob = GramClient(service.add_user(BOB, "bob"), service.gatekeeper)
        contact = alice.submit(RSL).contact
        assert bob.cancel(contact).code is GramErrorCode.SUCCESS

    def test_publish_swaps_decisions_atomically(self):
        service, store = build_store_service()
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        bob = GramClient(service.add_user(BOB, "bob"), service.gatekeeper)
        contact = alice.submit(RSL).contact
        denied = bob.cancel(contact)
        assert denied.code is GramErrorCode.AUTHORIZATION_DENIED

        store.publish(bundle(VO_TEXT_V2))
        assert bob.cancel(contact).code is GramErrorCode.SUCCESS

    def test_invalid_publish_leaves_old_epoch_serving(self):
        service, store = build_store_service(decision_cache=True)
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        contact = alice.submit(RSL).contact
        epoch_before = store.policy_epoch

        with pytest.raises(BundleRejected):
            store.publish(bundle(BROKEN_TEXT))

        # Zero failed decisions at the surviving epoch.
        assert store.policy_epoch == epoch_before
        assert alice.status(contact).code is GramErrorCode.SUCCESS
        assert alice.cancel(contact).code is GramErrorCode.SUCCESS

    def test_source_topology_change_is_vetoed(self):
        service, store = build_store_service()
        with pytest.raises(BundleRejected) as excinfo:
            store.publish(
                PolicyBundle.from_texts(
                    {"vo": VO_TEXT, "local": VO_TEXT_V2}
                )
            )
        assert excinfo.value.reason == REJECT_SOURCES

    def test_rejection_metric_exported(self):
        service, store = build_store_service()
        with pytest.raises(BundleRejected):
            store.publish(bundle(BROKEN_TEXT))
        registry = service.telemetry.registry
        assert registry.value(
            "policy_reload_rejected_total", reason=REJECT_PARSE
        ) == 1.0
        assert registry.value("policy_store_publish_total", origin="seed") == 1.0

    def test_hot_reload_through_the_service_watcher(self, tmp_path):
        policy_file = tmp_path / "vo.policy"
        policy_file.write_text(VO_TEXT)
        import os

        os.utime(policy_file, (1000.0, 1000.0))
        service, store = build_store_service()
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        bob = GramClient(service.add_user(BOB, "bob"), service.gatekeeper)
        contact = alice.submit(RSL).contact
        service.watch_policy_files([("vo", str(policy_file))], interval=5.0)

        policy_file.write_text(VO_TEXT_V2)
        os.utime(policy_file, (2000.0, 2000.0))
        assert bob.cancel(contact).code is GramErrorCode.AUTHORIZATION_DENIED
        service.run(5.0)
        assert store.policy_epoch == 2
        assert bob.cancel(contact).code is GramErrorCode.SUCCESS

    def test_capability_revoked_on_publish_survives_noop(self):
        service, store = build_store_service(capability_grants=True)
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        contact = alice.submit(RSL).contact
        token = service.shard_state.job_managers[contact.job_id].capability
        issuer = service.capability.issuer
        assert issuer.validate(token) == "valid"

        store.publish(store.active().bundle)  # digest no-op: survives
        assert issuer.validate(token) == "valid"

        store.publish(bundle(VO_TEXT_V2))  # real publish: revoked
        assert issuer.validate(token) != "valid"

    def test_log_line_format(self, tmp_path):
        log = str(tmp_path / "log.jsonl")
        store = VersionedPolicyStore(log_path=log)
        store.publish(bundle())
        with open(log, "r", encoding="utf-8") as handle:
            record = json.loads(handle.readline())
        assert record["epoch"] == 1
        assert record["sources"] == [["vo", VO_TEXT]]
