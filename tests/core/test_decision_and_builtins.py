"""Decision objects and the stock callout implementations."""


from repro.core.builtin_callouts import (
    combined_policy_callout,
    deny_all,
    initiator_only,
    permit_all,
    policy_callout,
)
from repro.core.combination import CombinationAlgorithm
from repro.core.decision import Decision, Effect
from repro.core.evaluator import PolicyEvaluator
from repro.core.parser import parse_policy
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification

ALICE = "/O=Grid/OU=d/CN=Alice"
BOB = "/O=Grid/OU=d/CN=Bob"


def start(who=ALICE, rsl="&(executable=x)"):
    return AuthorizationRequest.start(who, parse_specification(rsl))


class TestDecision:
    def test_factories(self):
        assert Decision.permit().effect is Effect.PERMIT
        assert Decision.deny().effect is Effect.DENY
        assert Decision.not_applicable().effect is Effect.NOT_APPLICABLE
        assert Decision.indeterminate("why").effect is Effect.INDETERMINATE

    def test_default_deny_classification(self):
        assert not Decision.permit().is_deny
        assert Decision.deny().is_deny
        assert Decision.not_applicable().is_deny
        assert Decision.indeterminate("x").is_deny

    def test_with_source(self):
        decision = Decision.permit().with_source("vo")
        assert decision.source == "vo"
        assert decision.is_permit

    def test_str_includes_source_and_reasons(self):
        decision = Decision.deny(reasons=("too big",), source="vo")
        text = str(decision)
        assert "deny" in text
        assert "vo" in text
        assert "too big" in text

    def test_reasons_are_tuples(self):
        decision = Decision.deny(reasons=["a", "b"])
        assert decision.reasons == ("a", "b")


class TestStockCallouts:
    def test_permit_and_deny_all(self):
        assert permit_all(start()).is_permit
        assert deny_all(start()).is_deny

    def test_initiator_only_permits_start(self):
        assert initiator_only(start()).is_permit

    def test_initiator_only_management(self):
        own = AuthorizationRequest.manage(
            ALICE, "cancel", parse_specification("&(executable=x)"), jobowner=ALICE
        )
        other = AuthorizationRequest.manage(
            ALICE, "cancel", parse_specification("&(executable=x)"), jobowner=BOB
        )
        assert initiator_only(own).is_permit
        assert initiator_only(other).is_deny

    def test_policy_callout_wraps_evaluator(self):
        policy = parse_policy(f"{ALICE}: &(action=start)(executable=x)")
        callout = policy_callout(PolicyEvaluator(policy, source="vo"))
        assert callout(start()).is_permit
        assert callout(start(rsl="&(executable=y)")).is_deny
        assert "vo" in callout.__name__

    def test_combined_policy_callout(self):
        vo = parse_policy(f"{ALICE}: &(action=start)(count<4)", name="vo")
        local = parse_policy("/O=Grid/OU=d: &(action=start)(count<=2)", name="local")
        callout = combined_policy_callout([vo, local])
        assert callout(start(rsl="&(executable=x)(count=2)")).is_permit
        assert callout(start(rsl="&(executable=x)(count=3)")).is_deny

    def test_combined_callout_permissive_algorithm(self):
        vo = parse_policy(f"{ALICE}: &(action=start)(count<4)", name="vo")
        local = parse_policy("/O=Grid/OU=d: &(action=start)(count<=8)", name="local")
        callout = combined_policy_callout(
            [vo, local],
            algorithm=CombinationAlgorithm.PERMIT_OVERRIDES_NOT_APPLICABLE,
        )
        # Bob has no VO grant; under the permissive algorithm the VO
        # abstains and the local grant carries him.
        assert callout(start(who=BOB, rsl="&(executable=x)(count=2)")).is_permit
