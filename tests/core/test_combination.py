"""Multi-source policy combination (paper requirement 1)."""

import pytest

from repro.core.combination import CombinationAlgorithm, CombinedEvaluator
from repro.core.decision import Decision
from repro.core.errors import AuthorizationSystemFailure
from repro.core.evaluator import PolicyEvaluator
from repro.core.parser import parse_policy
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification

ALICE = "/O=Grid/OU=org/CN=Alice"

VO = f"""
{ALICE}: &(action=start)(executable=sim)(count<8)
"""

LOCAL = """
/O=Grid/OU=org: &(action=start)(count<=4)(queue!=reserved)
"""


def combined(algorithm=CombinationAlgorithm.ALL_MUST_PERMIT):
    return CombinedEvaluator(
        [
            PolicyEvaluator(parse_policy(VO, name="vo")),
            PolicyEvaluator(parse_policy(LOCAL, name="local")),
        ],
        algorithm=algorithm,
    )


def start(rsl: str, who: str = ALICE) -> AuthorizationRequest:
    return AuthorizationRequest.start(who, parse_specification(rsl))


class TestAllMustPermit:
    def test_both_permit(self):
        decision = combined().evaluate(start("&(executable=sim)(count=2)"))
        assert decision.is_permit

    def test_vo_denies(self):
        decision = combined().evaluate(start("&(executable=other)(count=2)"))
        assert decision.is_deny
        assert any("[vo]" in reason for reason in decision.reasons)

    def test_local_denies(self):
        """VO allows count<8 but the site caps at 4: site wins."""
        decision = combined().evaluate(start("&(executable=sim)(count=6)"))
        assert decision.is_deny
        assert any("[local]" in reason for reason in decision.reasons)

    def test_effective_envelope_is_intersection(self):
        ok = combined().evaluate(start("&(executable=sim)(count=4)"))
        assert ok.is_permit

    def test_abstaining_source_blocks(self):
        """A user the VO says nothing about gets nothing."""
        stranger = "/O=Grid/OU=org/CN=Stranger"
        decision = combined().evaluate(
            start("&(executable=sim)(count=2)", who=stranger)
        )
        assert decision.is_deny
        assert any("grants nothing" in reason for reason in decision.reasons)


class TestPermitOverridesNotApplicable:
    def test_abstaining_source_defers(self):
        stranger = "/O=Grid/OU=org/CN=Stranger"
        evaluator = combined(CombinationAlgorithm.PERMIT_OVERRIDES_NOT_APPLICABLE)
        decision = evaluator.evaluate(
            start("&(executable=anything)(count=2)", who=stranger)
        )
        # local permits (prefix match), vo abstains -> permit
        assert decision.is_permit

    def test_explicit_deny_still_wins(self):
        evaluator = combined(CombinationAlgorithm.PERMIT_OVERRIDES_NOT_APPLICABLE)
        decision = evaluator.evaluate(start("&(executable=sim)(count=9)"))
        assert decision.is_deny

    def test_all_abstain_is_deny(self):
        outsider = "/O=Mars/CN=Marvin"
        evaluator = combined(CombinationAlgorithm.PERMIT_OVERRIDES_NOT_APPLICABLE)
        decision = evaluator.evaluate(
            start("&(executable=sim)(count=1)", who=outsider)
        )
        assert decision.is_deny


class TestSystemFailures:
    def test_broken_source_raises_system_failure(self):
        class Exploder:
            source = "broken"

            def evaluate(self, request):
                raise RuntimeError("pdp crashed")

        evaluator = CombinedEvaluator(
            [PolicyEvaluator(parse_policy(VO, name="vo")), Exploder()]
        )
        with pytest.raises(AuthorizationSystemFailure):
            evaluator.evaluate(start("&(executable=sim)(count=2)"))

    def test_indeterminate_decision_raises(self):
        evaluator = combined()
        with pytest.raises(AuthorizationSystemFailure):
            evaluator.combine(
                [Decision.permit(source="vo"), Decision.indeterminate("boom", source="x")]
            )

    def test_failure_is_not_a_denial(self):
        """System failure must surface as its own error class, never
        silently merge into deny (the paper's error distinction)."""
        evaluator = combined()
        try:
            evaluator.combine([Decision.indeterminate("boom", source="x")])
        except AuthorizationSystemFailure as exc:
            assert "boom" in str(exc)
        else:
            pytest.fail("expected AuthorizationSystemFailure")


class TestConstruction:
    def test_needs_at_least_one_source(self):
        with pytest.raises(ValueError):
            CombinedEvaluator([])

    def test_sources_listed(self):
        assert combined().sources == ("vo", "local")
