"""Extended attributes, actions, and authorization requests."""

import pytest

from repro.core.attributes import ACTION, JOBOWNER, Action
from repro.core.request import AuthorizationRequest
from repro.gsi.names import DistinguishedName
from repro.rsl.parser import parse_specification

ALICE = "/O=Grid/OU=org/CN=Alice"
BOB = "/O=Grid/OU=org/CN=Bob"


class TestAction:
    def test_parse_canonical_values(self):
        assert Action.parse("start") is Action.START
        assert Action.parse("cancel") is Action.CANCEL
        assert Action.parse("information") is Action.INFORMATION
        assert Action.parse("signal") is Action.SIGNAL

    def test_parse_is_case_insensitive(self):
        assert Action.parse("START") is Action.START

    def test_status_aliases_information(self):
        assert Action.parse("status") is Action.INFORMATION

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            Action.parse("explode")

    def test_management_classification(self):
        assert not Action.START.is_management
        assert Action.CANCEL.is_management
        assert Action.SIGNAL.is_management


class TestStartRequests:
    def test_requester_is_owner(self):
        request = AuthorizationRequest.start(
            ALICE, parse_specification("&(executable=x)")
        )
        assert request.owner == request.requester
        assert request.is_self_managed

    def test_evaluation_spec_adds_computed_attributes(self):
        request = AuthorizationRequest.start(
            ALICE, parse_specification("&(executable=x)")
        )
        spec = request.evaluation_specification()
        assert spec.first_value(ACTION) == "start"
        assert spec.first_value(JOBOWNER) == ALICE

    def test_spoofed_action_is_replaced(self):
        request = AuthorizationRequest.start(
            ALICE, parse_specification("&(executable=x)(action=cancel)")
        )
        spec = request.evaluation_specification()
        values = [
            str(v)
            for r in spec.relations_for(ACTION)
            for v in r.values
        ]
        assert values == ["start"]

    def test_spoofed_jobowner_is_replaced(self):
        request = AuthorizationRequest.start(
            ALICE, parse_specification(f'&(executable=x)(jobowner="{BOB}")')
        )
        spec = request.evaluation_specification()
        assert spec.first_value(JOBOWNER) == ALICE

    def test_jobtag_accessor(self):
        request = AuthorizationRequest.start(
            ALICE, parse_specification("&(executable=x)(jobtag=NFC)")
        )
        assert request.jobtag == "NFC"

    def test_jobtag_absent(self):
        request = AuthorizationRequest.start(
            ALICE, parse_specification("&(executable=x)")
        )
        assert request.jobtag is None


class TestManagementRequests:
    def test_manage_carries_owner(self):
        request = AuthorizationRequest.manage(
            ALICE, "cancel", parse_specification("&(executable=x)"), jobowner=BOB
        )
        assert str(request.owner) == BOB
        assert not request.is_self_managed

    def test_manage_accepts_action_enum(self):
        request = AuthorizationRequest.manage(
            ALICE,
            Action.SIGNAL,
            parse_specification("&(executable=x)"),
            jobowner=BOB,
        )
        assert request.action is Action.SIGNAL

    def test_manage_rejects_start(self):
        with pytest.raises(ValueError):
            AuthorizationRequest.manage(
                ALICE, "start", parse_specification("&(executable=x)"), jobowner=BOB
            )

    def test_accepts_distinguished_name_objects(self):
        dn = DistinguishedName.parse(ALICE)
        request = AuthorizationRequest.manage(
            dn, "cancel", parse_specification("&(a=1)"), jobowner=dn
        )
        assert request.is_self_managed

    def test_evaluation_spec_owner_is_initiator_not_requester(self):
        request = AuthorizationRequest.manage(
            ALICE, "cancel", parse_specification("&(executable=x)"), jobowner=BOB
        )
        spec = request.evaluation_specification()
        assert spec.first_value(JOBOWNER) == BOB

    def test_str_mentions_action_and_job(self):
        request = AuthorizationRequest.manage(
            ALICE,
            "cancel",
            parse_specification("&(executable=x)"),
            jobowner=BOB,
            job_id="42",
        )
        text = str(request)
        assert "cancel" in text
        assert "42" in text
