"""The runtime-configurable callout API."""

import pytest

from repro.core.builtin_callouts import deny_all, permit_all
from repro.core.callout import (
    GRAM_AUTHZ_CALLOUT,
    CalloutConfiguration,
    CalloutRegistry,
    CalloutType,
    default_registry,
)
from repro.core.decision import Decision
from repro.core.errors import AuthorizationSystemFailure
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification

ALICE = "/O=Grid/OU=org/CN=Alice"


@pytest.fixture
def request_():
    return AuthorizationRequest.start(ALICE, parse_specification("&(executable=x)"))


class TestRegistration:
    def test_register_via_api(self, request_):
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all)
        assert registry.configured(GRAM_AUTHZ_CALLOUT)
        assert registry.invoke(GRAM_AUTHZ_CALLOUT, request_).is_permit

    def test_register_rejects_non_callable(self):
        registry = CalloutRegistry()
        with pytest.raises(TypeError):
            registry.register(GRAM_AUTHZ_CALLOUT, "not callable")

    def test_configure_by_module_and_symbol(self, request_):
        """The dlopen-style path: module + symbol resolved at runtime."""
        registry = CalloutRegistry()
        registry.configure(
            CalloutConfiguration(
                type_name=GRAM_AUTHZ_CALLOUT,
                module="repro.core.builtin_callouts",
                symbol="permit_all",
            )
        )
        assert registry.invoke(GRAM_AUTHZ_CALLOUT, request_).is_permit

    def test_missing_module_is_system_failure(self):
        config = CalloutConfiguration(
            type_name=GRAM_AUTHZ_CALLOUT, module="no.such.module", symbol="f"
        )
        with pytest.raises(AuthorizationSystemFailure):
            CalloutRegistry().configure(config)

    def test_missing_symbol_is_system_failure(self):
        config = CalloutConfiguration(
            type_name=GRAM_AUTHZ_CALLOUT,
            module="repro.core.builtin_callouts",
            symbol="does_not_exist",
        )
        with pytest.raises(AuthorizationSystemFailure):
            CalloutRegistry().configure(config)

    def test_non_callable_symbol_is_system_failure(self):
        config = CalloutConfiguration(
            type_name=GRAM_AUTHZ_CALLOUT,
            module="repro.core.builtin_callouts",
            symbol="__doc__",
        )
        with pytest.raises(AuthorizationSystemFailure):
            CalloutRegistry().configure(config)

    def test_clear(self, request_):
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all)
        registry.clear(GRAM_AUTHZ_CALLOUT)
        assert not registry.configured(GRAM_AUTHZ_CALLOUT)


class TestConfigurationFile:
    def test_load_from_file(self, tmp_path, request_):
        config = tmp_path / "callouts.conf"
        config.write_text(
            "# GRAM authorization\n"
            "gram.authz  repro.core.builtin_callouts  permit_all\n"
        )
        registry = CalloutRegistry()
        assert registry.configure_from_file(str(config)) == 1
        assert registry.invoke(GRAM_AUTHZ_CALLOUT, request_).is_permit

    def test_malformed_line_rejected(self, tmp_path):
        config = tmp_path / "callouts.conf"
        config.write_text("gram.authz only_two_fields\n")
        with pytest.raises(AuthorizationSystemFailure):
            CalloutRegistry().configure_from_file(str(config))

    def test_missing_file_is_system_failure(self, tmp_path):
        with pytest.raises(AuthorizationSystemFailure):
            CalloutRegistry().configure_from_file(str(tmp_path / "nope.conf"))

    def test_comments_and_blanks_skipped(self, tmp_path):
        config = tmp_path / "callouts.conf"
        config.write_text("\n# comment only\n\n")
        assert CalloutRegistry().configure_from_file(str(config)) == 0

    def test_failure_midway_leaves_registry_unchanged(self, tmp_path, request_):
        """All-or-nothing: a bad later line must not register earlier ones."""
        config = tmp_path / "callouts.conf"
        config.write_text(
            "gram.authz  repro.core.builtin_callouts  permit_all\n"
            "gram.authz  no.such.module  whatever\n"
        )
        registry = CalloutRegistry()
        with pytest.raises(AuthorizationSystemFailure):
            registry.configure_from_file(str(config))
        assert not registry.configured(GRAM_AUTHZ_CALLOUT)

    def test_failure_midway_preserves_prior_configuration(self, tmp_path, request_):
        """A registry that was already configured stays exactly as it was."""
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, deny_all)
        before = registry.callout_labels(GRAM_AUTHZ_CALLOUT)
        config = tmp_path / "callouts.conf"
        config.write_text(
            "gram.authz  repro.core.builtin_callouts  permit_all\n"
            "gram.authz  repro.core.builtin_callouts  does_not_exist\n"
        )
        with pytest.raises(AuthorizationSystemFailure):
            registry.configure_from_file(str(config))
        assert registry.callout_labels(GRAM_AUTHZ_CALLOUT) == before
        assert registry.invoke(GRAM_AUTHZ_CALLOUT, request_).is_deny

    def test_malformed_line_after_good_lines_is_atomic(self, tmp_path):
        config = tmp_path / "callouts.conf"
        config.write_text(
            "gram.authz  repro.core.builtin_callouts  permit_all\n"
            "gram.authz  only_two_fields\n"
        )
        registry = CalloutRegistry()
        with pytest.raises(AuthorizationSystemFailure):
            registry.configure_from_file(str(config))
        assert not registry.configured(GRAM_AUTHZ_CALLOUT)


class TestInvocation:
    def test_unconfigured_type_is_system_failure(self, request_):
        with pytest.raises(AuthorizationSystemFailure):
            CalloutRegistry().invoke("unknown.type", request_)

    def test_chained_callouts_all_must_permit(self, request_):
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all)
        registry.register(GRAM_AUTHZ_CALLOUT, deny_all)
        decision = registry.invoke(GRAM_AUTHZ_CALLOUT, request_)
        assert decision.is_deny

    def test_first_denial_short_circuits(self, request_):
        calls = []

        def first(request):
            calls.append("first")
            return Decision.deny(reasons=("no",))

        def second(request):
            calls.append("second")
            return Decision.permit()

        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, first)
        registry.register(GRAM_AUTHZ_CALLOUT, second)
        registry.invoke(GRAM_AUTHZ_CALLOUT, request_)
        assert calls == ["first"]

    def test_raising_callout_is_system_failure(self, request_):
        registry = CalloutRegistry()
        registry.configure(
            CalloutConfiguration(
                type_name=GRAM_AUTHZ_CALLOUT,
                module="repro.core.builtin_callouts",
                symbol="broken_callout",
            )
        )
        with pytest.raises(AuthorizationSystemFailure):
            registry.invoke(GRAM_AUTHZ_CALLOUT, request_)

    def test_wrong_return_type_is_system_failure(self, request_):
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, lambda request: True)
        with pytest.raises(AuthorizationSystemFailure):
            registry.invoke(GRAM_AUTHZ_CALLOUT, request_)

    def test_indeterminate_return_is_system_failure(self, request_):
        registry = CalloutRegistry()
        registry.register(
            GRAM_AUTHZ_CALLOUT, lambda request: Decision.indeterminate("?")
        )
        with pytest.raises(AuthorizationSystemFailure):
            registry.invoke(GRAM_AUTHZ_CALLOUT, request_)

    def test_invocation_counter(self, request_):
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all)
        registry.invoke(GRAM_AUTHZ_CALLOUT, request_)
        registry.invoke(GRAM_AUTHZ_CALLOUT, request_)
        assert registry.invocations == 2


class TestDefaultRegistry:
    def test_standard_types_declared(self):
        registry = default_registry()
        assert "gram.authz" in registry.declared_types()
        assert "gatekeeper.authz" in registry.declared_types()

    def test_declaring_type_is_idempotent(self):
        registry = default_registry()
        registry.declare_type(CalloutType(name="gram.authz"))
        assert registry.declared_types().count("gram.authz") == 1
