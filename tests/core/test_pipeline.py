"""The explainable decision pipeline: context, middleware, epoch cache."""

import pytest

from repro.core.builtin_callouts import (
    broken_callout,
    combined_policy_callout,
    deny_all,
    permit_all,
)
from repro.core.callout import GRAM_AUTHZ_CALLOUT, CalloutRegistry
from repro.core.decision import Effect
from repro.core.dynamic import PolicyStore
from repro.core.errors import AuthorizationDenied, AuthorizationSystemFailure
from repro.core.parser import parse_policy
from repro.core.pep import EnforcementPoint
from repro.core.pipeline import (
    CACHE_HIT,
    CACHE_MISS,
    DecisionCache,
    DecisionContext,
    MetricsMiddleware,
    TracingMiddleware,
    current_context,
)
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification

ALICE = "/O=Grid/OU=org/CN=Alice"
BOB = "/O=Grid/OU=org/CN=Bob"

GRANT_ALICE = f"""
{ALICE}:
    &(action=start)(count<=4)
    &(action=information)
"""

DENY_EVERYONE = f"""
{ALICE}:
    &(action=signal)
"""


def make_pep(callout, **kwargs):
    registry = CalloutRegistry()
    registry.register(GRAM_AUTHZ_CALLOUT, callout)
    return EnforcementPoint(registry=registry, **kwargs)


def start_request(requester=ALICE, rsl="&(executable=x)(count=2)"):
    return AuthorizationRequest.start(requester, parse_specification(rsl))


class TestDecisionContext:
    def test_permit_carries_context_with_stages(self):
        pep = make_pep(permit_all)
        decision = pep.authorize(start_request())
        context = decision.context
        assert context is not None
        assert context.effect is Effect.PERMIT
        assert "pep" in context.stage_names
        assert any(name.startswith("callout:") for name in context.stage_names)
        assert all(stage.duration >= 0.0 for stage in context.stages)
        assert context.duration >= 0.0

    def test_denial_exception_carries_context(self):
        pep = make_pep(deny_all)
        with pytest.raises(AuthorizationDenied) as excinfo:
            pep.authorize(start_request())
        context = excinfo.value.context
        assert context is not None
        assert context.effect is Effect.DENY

    def test_system_failure_carries_context(self):
        pep = make_pep(broken_callout)
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            pep.authorize(start_request())
        context = excinfo.value.context
        assert context is not None
        assert context.effect is Effect.INDETERMINATE
        assert context.failure

    def test_context_identifies_the_request(self):
        pep = make_pep(permit_all)
        request = start_request(rsl="&(executable=x)(jobtag=exp7)(count=2)")
        context = pep.authorize(request).context
        assert context.requester == ALICE
        assert context.action == "start"
        assert context.jobtag == "exp7"
        assert context.jobowner == ALICE

    def test_provenance_derived_from_decision_source(self):
        pep = make_pep(permit_all)
        context = pep.authorize(start_request()).context
        assert context.source_names == ("permit_all",)

    def test_combined_policies_record_every_source(self):
        callout = combined_policy_callout(
            [
                parse_policy(GRANT_ALICE, name="vo"),
                parse_policy(GRANT_ALICE, name="local"),
            ]
        )
        pep = make_pep(callout)
        context = pep.authorize(start_request()).context
        assert context.source_names == ("vo", "local")
        assert {s.effect for s in context.sources} == {"permit"}
        assert "source:vo" in context.stage_names
        assert "source:local" in context.stage_names

    def test_json_round_trip(self):
        pep = make_pep(permit_all)
        context = pep.authorize(start_request()).context
        again = DecisionContext.from_dict(context.to_dict())
        assert again.request_id == context.request_id
        assert again.effect is Effect.PERMIT
        assert again.stage_names == context.stage_names
        assert again.source_names == context.source_names

    def test_explain_is_readable(self):
        pep = make_pep(permit_all)
        context = pep.authorize(start_request()).context
        text = context.explain()
        assert ALICE in text
        assert "permit" in text

    def test_no_context_outside_a_decision(self):
        assert current_context() is None
        pep = make_pep(permit_all)
        pep.authorize(start_request())
        assert current_context() is None


class TestMetricsMiddleware:
    def test_counts_back_the_pep_counters(self):
        pep = make_pep(permit_all)
        pep.authorize(start_request())
        pep.authorize(start_request())
        assert pep.metrics.permits == pep.permits == 2
        assert pep.metrics.invocations == 2

    def test_outcome_classification(self):
        metrics = MetricsMiddleware()
        for callout, exc in (
            (permit_all, None),
            (deny_all, AuthorizationDenied),
            (broken_callout, AuthorizationSystemFailure),
        ):
            pep = make_pep(callout, metrics=metrics)
            if exc is None:
                pep.authorize(start_request())
            else:
                with pytest.raises(exc):
                    pep.authorize(start_request())
        assert (metrics.permits, metrics.denials, metrics.failures) == (1, 1, 1)
        assert metrics.decisions == 3

    def test_latency_histogram_observes_every_decision(self):
        pep = make_pep(permit_all)
        for _ in range(5):
            pep.authorize(start_request())
        histogram = pep.metrics.latency_histogram()
        assert sum(count for _, count in histogram) == 5
        assert pep.metrics.total_seconds > 0.0

    def test_snapshot_shape(self):
        pep = make_pep(permit_all)
        pep.authorize(start_request())
        snapshot = pep.metrics.snapshot()
        assert snapshot["permits"] == 1
        assert snapshot["latency_histogram"]


class TestTracingMiddleware:
    def test_traces_every_decision(self):
        tracing = TracingMiddleware()
        pep = make_pep(permit_all, tracing=tracing)
        pep.authorize(start_request())
        with pytest.raises(AuthorizationDenied):
            pep.registry.register(GRAM_AUTHZ_CALLOUT, deny_all)
            pep.authorize(start_request(BOB))
        assert len(tracing) == 2
        assert tracing.records[0].effect is Effect.PERMIT
        assert tracing.records[1].effect is Effect.DENY

    def test_jsonl_export(self, tmp_path):
        tracing = TracingMiddleware()
        pep = make_pep(permit_all, tracing=tracing)
        pep.authorize(start_request())
        path = tmp_path / "decisions.jsonl"
        assert tracing.export(str(path)) == 1
        line = path.read_text().strip()
        assert '"effect": "permit"' in line or '"permit"' in line
        assert tracing.to_jsonl().strip() == line

    def test_bounded_retention(self):
        tracing = TracingMiddleware(limit=3)
        pep = make_pep(permit_all, tracing=tracing)
        for _ in range(10):
            pep.authorize(start_request())
        assert len(tracing) == 3


class TestDecisionCache:
    def test_repeat_decision_hits(self):
        cache = DecisionCache()
        pep = make_pep(permit_all, cache=cache)
        first = pep.authorize(start_request())
        second = pep.authorize(start_request())
        assert first.context.cache_status == CACHE_MISS
        assert second.context.cache_status == CACHE_HIT
        assert (cache.hits, cache.misses) == (1, 1)

    def test_hit_replays_provenance(self):
        callout = combined_policy_callout([parse_policy(GRANT_ALICE, name="vo")])
        cache = DecisionCache(epoch_sources=[callout.evaluator])
        pep = make_pep(callout, cache=cache)
        pep.authorize(start_request())
        hit = pep.authorize(start_request())
        assert hit.context.cache_status == CACHE_HIT
        assert hit.context.source_names == ("vo",)

    def test_denials_are_cached_too(self):
        cache = DecisionCache()
        pep = make_pep(deny_all, cache=cache)
        for _ in range(2):
            with pytest.raises(AuthorizationDenied):
                pep.authorize(start_request())
        assert cache.hits == 1

    def test_system_failures_never_cached(self):
        cache = DecisionCache()
        pep = make_pep(broken_callout, cache=cache)
        for _ in range(2):
            with pytest.raises(AuthorizationSystemFailure):
                pep.authorize(start_request())
        assert cache.hits == 0
        assert len(cache) == 0

    def test_key_distinguishes_requesters(self):
        cache = DecisionCache()
        pep = make_pep(permit_all, cache=cache)
        pep.authorize(start_request(ALICE))
        pep.authorize(start_request(BOB))
        assert cache.hits == 0

    def test_key_distinguishes_job_descriptions(self):
        """Same subject/action/jobtag, different request — no collision."""
        cache = DecisionCache()
        pep = make_pep(permit_all, cache=cache)
        pep.authorize(start_request(rsl="&(executable=x)(jobtag=t)(count=2)"))
        pep.authorize(start_request(rsl="&(executable=y)(jobtag=t)(count=8)"))
        assert cache.hits == 0

    def test_lru_bound(self):
        cache = DecisionCache(maxsize=2)
        pep = make_pep(permit_all, cache=cache)
        for count in (1, 2, 3):
            pep.authorize(start_request(rsl=f"&(executable=x)(count={count})"))
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_metrics_count_cache_hits(self):
        pep = make_pep(permit_all, cache=DecisionCache())
        pep.authorize(start_request())
        pep.authorize(start_request())
        assert pep.metrics.cache_hits == 1
        assert pep.permits == 2  # hits still count as decisions


class TestPolicyEpochInvalidation:
    """The acceptance-criterion behaviour: a policy mutation bumps the
    epoch and invalidates the cached decision on the very next check."""

    def test_store_mutation_invalidates_cached_decision(self):
        store = PolicyStore(parse_policy(GRANT_ALICE, name="vo"))
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, store.callout())
        cache = DecisionCache(epoch_sources=[store])
        pep = EnforcementPoint(registry=registry, cache=cache)
        request = start_request()

        epoch_before = store.policy_epoch
        assert pep.authorize(request).context.cache_status == CACHE_MISS
        assert pep.authorize(request).context.cache_status == CACHE_HIT

        store.install_text(DENY_EVERYONE, comment="revoke start")
        assert store.policy_epoch == epoch_before + 1

        with pytest.raises(AuthorizationDenied) as excinfo:
            pep.authorize(request)
        assert excinfo.value.context.cache_status == CACHE_MISS
        assert cache.hits == 1

    def test_rollback_also_bumps_the_epoch(self):
        store = PolicyStore(parse_policy(GRANT_ALICE, name="vo"))
        store.install_text(DENY_EVERYONE)
        before = store.policy_epoch
        store.rollback(to_version=1)
        assert store.policy_epoch == before + 1

    def test_combined_evaluator_epoch_covers_all_sources(self):
        callout = combined_policy_callout(
            [
                parse_policy(GRANT_ALICE, name="vo"),
                parse_policy(GRANT_ALICE, name="local"),
            ]
        )
        combined = callout.evaluator
        before = combined.policy_epoch
        combined.evaluators[1].replace_policy(parse_policy(DENY_EVERYONE))
        assert combined.policy_epoch != before

    def test_vo_membership_mutation_bumps_epoch(self):
        from repro.vo.organization import VirtualOrganization

        vo = VirtualOrganization("fusion")
        before = vo.policy_epoch
        vo.add_member(ALICE, groups=("analysts",))
        assert vo.policy_epoch == before + 1
        vo.remove_member(ALICE)
        assert vo.policy_epoch == before + 2


class TestMiddlewareStack:
    def test_custom_middleware_observes_decisions(self):
        seen = []

        def observer(request, context, call_next):
            decision = call_next(request, context)
            seen.append((context.requester, decision.effect))
            return decision

        pep = make_pep(permit_all, middlewares=(observer,))
        pep.authorize(start_request())
        assert seen == [(ALICE, Effect.PERMIT)]

    def test_stack_order(self):
        pep = make_pep(
            permit_all, tracing=TracingMiddleware(), cache=DecisionCache()
        )
        names = [getattr(m, "name", "custom") for m in pep.middlewares]
        assert names == ["metrics", "tracing", "decision-cache"]

    def test_use_cache_and_use_tracing_enable_late(self):
        pep = make_pep(permit_all)
        pep.authorize(start_request())
        cache = pep.use_cache()
        tracing = pep.use_tracing()
        pep.authorize(start_request())
        pep.authorize(start_request())
        assert cache.hits == 1
        assert len(tracing) == 2
