"""Interactions between multiple requirement statements and grants."""


from repro.core.evaluator import PolicyEvaluator
from repro.core.parser import parse_policy
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification

ORG = "/O=Grid/OU=req2"
ALICE = f"{ORG}/CN=Alice"
BOB = f"{ORG}/OU=special/CN=Bob"


def evaluate(policy_text, who, action="start", rsl="&(executable=sim)", owner=None):
    evaluator = PolicyEvaluator(parse_policy(policy_text, name="t"))
    spec = parse_specification(rsl)
    if action == "start":
        request = AuthorizationRequest.start(who, spec)
    else:
        request = AuthorizationRequest.manage(
            who, action, spec, jobowner=owner or who
        )
    return evaluator.evaluate(request)


class TestMultipleRequirements:
    POLICY = f"""
    &{ORG}: (action=start)(jobtag!=NULL)
    &{ORG}: (action=start)(maxcputime!=NULL)
    {ALICE}: &(action=start)(executable=sim)
    """

    def test_all_requirements_must_hold(self):
        denied_no_tag = evaluate(
            self.POLICY, ALICE, rsl="&(executable=sim)(maxcputime=10)"
        )
        denied_no_budget = evaluate(
            self.POLICY, ALICE, rsl="&(executable=sim)(jobtag=T)"
        )
        permitted = evaluate(
            self.POLICY, ALICE, rsl="&(executable=sim)(jobtag=T)(maxcputime=10)"
        )
        assert denied_no_tag.is_deny
        assert denied_no_budget.is_deny
        assert permitted.is_permit

    def test_first_violated_requirement_reported(self):
        decision = evaluate(self.POLICY, ALICE, rsl="&(executable=sim)")
        assert "jobtag" in decision.reasons[0]


class TestNestedScopeRequirements:
    POLICY = f"""
    &{ORG}: (action=start)(jobtag!=NULL)
    &{ORG}/OU=special: (action=start)(queue=NULL)
    {ALICE}: &(action=start)(executable=sim)
    {BOB}: &(action=start)(executable=sim)
    """

    def test_narrower_requirement_binds_only_its_subjects(self):
        # Alice is outside OU=special: she may name a queue.
        alice_with_queue = evaluate(
            self.POLICY, ALICE, rsl="&(executable=sim)(jobtag=T)(queue=gold)"
        )
        assert alice_with_queue.is_permit
        # Bob is inside it: the queue attribute is forbidden for him.
        bob_with_queue = evaluate(
            self.POLICY, BOB, rsl="&(executable=sim)(jobtag=T)(queue=gold)"
        )
        assert bob_with_queue.is_deny
        bob_plain = evaluate(
            self.POLICY, BOB, rsl="&(executable=sim)(jobtag=T)"
        )
        assert bob_plain.is_permit


class TestMultiActionGuards:
    POLICY = f"""
    &{ORG}: (action=cancel suspend)(jobtag!=NULL)
    {ALICE}:
        &(action=cancel)(jobowner=self)
        &(action=suspend)(jobowner=self)
        &(action=information)(jobowner=self)
    """

    def test_guard_with_two_actions_covers_both(self):
        cancel_untagged = evaluate(
            self.POLICY, ALICE, action="cancel", rsl="&(executable=sim)"
        )
        suspend_untagged = evaluate(
            self.POLICY, ALICE, action="suspend", rsl="&(executable=sim)"
        )
        assert cancel_untagged.is_deny
        assert suspend_untagged.is_deny

    def test_unguarded_action_exempt(self):
        info = evaluate(
            self.POLICY, ALICE, action="information", rsl="&(executable=sim)"
        )
        assert info.is_permit

    def test_guarded_actions_pass_with_tag(self):
        cancel_tagged = evaluate(
            self.POLICY, ALICE, action="cancel", rsl="&(executable=sim)(jobtag=T)"
        )
        assert cancel_tagged.is_permit


class TestActionlessRequirement:
    def test_requirement_without_action_guard_applies_everywhere(self):
        policy = f"""
        &{ORG}: (jobtag!=NULL)
        {ALICE}:
            &(action=start)(executable=sim)
            &(action=information)(jobowner=self)
        """
        start_untagged = evaluate(policy, ALICE, rsl="&(executable=sim)")
        info_untagged = evaluate(
            policy, ALICE, action="information", rsl="&(executable=sim)"
        )
        assert start_untagged.is_deny
        assert info_untagged.is_deny
        tagged = evaluate(policy, ALICE, rsl="&(executable=sim)(jobtag=T)")
        assert tagged.is_permit
