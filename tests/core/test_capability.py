"""Signed capability grants: mint/validate lifecycle and rejection vectors."""

import dataclasses
import json

import pytest

from repro.core.callout import CalloutRegistry, GRAM_AUTHZ_CALLOUT
from repro.core.capability import (
    ABSENT,
    BAD_SIGNATURE,
    CAPABILITY_HIT,
    EPOCH,
    EXPIRED,
    SCOPE,
    VALID,
    CapabilityIssuer,
    CapabilityMiddleware,
    CapabilityStore,
    CapabilityToken,
    default_capability_key,
    spec_digest,
)
from repro.core.decision import Decision, Effect
from repro.core.pep import EnforcementPoint
from repro.core.pipeline import DecisionContext, EpochCounter, request_key
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification
from repro.sim.clock import Clock, SimulationError

ORG = "/O=Grid/O=Globus/OU=mcs.anl.gov"
BO = f"{ORG}/CN=Bo Liu"
KATE = f"{ORG}/CN=Kate Keahey"

KEY = default_capability_key("grid.example.org")


def start(who=BO, rsl="&(executable=test1)(count=2)(jobtag=ADS)"):
    return AuthorizationRequest.start(who, parse_specification(rsl))


def manage(who, action, owner, rsl="&(executable=test1)(count=2)"):
    return AuthorizationRequest.manage(
        who, action, parse_specification(rsl), jobowner=owner
    )


def make_issuer(ttl=300.0, clock=None, epoch_sources=()):
    return CapabilityIssuer(
        key=KEY, clock=clock or Clock(), ttl=ttl, epoch_sources=epoch_sources
    )


class TestMintValidateLifecycle:
    def test_mint_produces_a_signed_valid_token(self):
        issuer = make_issuer()
        request = start()
        token = issuer.mint(request)
        assert token.signature
        assert token.verify_signature(KEY)
        assert issuer.validate(token, request) == VALID

    def test_token_scope_is_exactly_the_decided_request(self):
        token = make_issuer().mint(start())
        assert token.subject == BO
        assert token.actions == ("start",)
        assert token.jobtag == "ADS"
        assert token.spec_digest == spec_digest(
            parse_specification("&(executable=test1)(count=2)(jobtag=ADS)")
        )

    def test_epochs_bound_at_mint_time(self):
        counter = EpochCounter()
        issuer = make_issuer(epoch_sources=[("policy", counter)])
        token = issuer.mint(start())
        assert token.epochs == (("policy", "0"),)
        counter.bump()
        assert issuer.mint(start()).epochs == (("policy", "1"),)

    def test_mint_counts(self):
        issuer = make_issuer()
        issuer.mint(start())
        issuer.mint(start())
        assert issuer.minted == 2

    def test_zero_ttl_rejected(self):
        with pytest.raises(ValueError):
            make_issuer(ttl=0.0)


class TestTTLBoundary:
    """Expiry semantics on the sim clock, pinned at the boundary."""

    def test_expires_exactly_at_expires_at(self):
        clock = Clock()
        issuer = make_issuer(ttl=60.0, clock=clock)
        token = issuer.mint(start())
        assert token.expires_at == 60.0
        clock.advance(60.0 - 1e-9)
        assert issuer.validate(token, start()) == VALID
        clock.advance(1e-9)
        assert clock.now == 60.0
        # `now == expires_at` is already expired: a TTL of 60 means 60
        # seconds of validity, not 60-and-an-instant.
        assert issuer.validate(token, start()) == EXPIRED

    def test_validate_at_explicit_now(self):
        issuer = make_issuer(ttl=60.0)
        token = issuer.mint(start())
        assert issuer.validate(token, start(), now=59.999) == VALID
        assert issuer.validate(token, start(), now=60.0) == EXPIRED
        assert issuer.validate(token, start(), now=1e9) == EXPIRED

    def test_shard_local_clocks_are_monotonic(self):
        """A shard-local clock can never run backwards, so a token can
        never un-expire on the shard that watches it."""
        clock = Clock()
        clock.advance(100.0)
        with pytest.raises(SimulationError):
            clock.run_until(50.0)
        assert clock.now == 100.0

    def test_expiry_is_judged_by_the_validating_clock(self):
        """Cross-shard presentation: each shard judges expiry on its
        own clock, so a token minted under a fast clock is simply
        expired there while a lagging shard still honours the
        timestamp — validity can only shrink as any clock advances."""
        fast, slow = Clock(), Clock()
        minting = make_issuer(ttl=60.0, clock=fast)
        validating = make_issuer(ttl=60.0, clock=slow)
        token = minting.mint(start())
        fast.advance(120.0)
        assert minting.validate(token, start()) == EXPIRED
        assert validating.validate(token, start()) == VALID
        slow.advance(59.0)
        assert validating.validate(token, start()) == VALID
        slow.advance(1.0)
        assert validating.validate(token, start()) == EXPIRED


class TestRejectionVectors:
    def test_tampered_field_breaks_the_signature(self):
        issuer = make_issuer()
        token = issuer.mint(start())
        widened = dataclasses.replace(token, actions=("start", "cancel"))
        assert issuer.validate(widened, start()) == BAD_SIGNATURE

    def test_tampered_expiry_breaks_the_signature(self):
        issuer = make_issuer()
        token = issuer.mint(start())
        extended = dataclasses.replace(token, expires_at=1e12)
        assert issuer.validate(extended, start()) == BAD_SIGNATURE

    def test_forged_signature_rejected(self):
        issuer = make_issuer()
        token = issuer.mint(start())
        forged = dataclasses.replace(token, signature="ab" * 32)
        assert issuer.validate(forged, start()) == BAD_SIGNATURE

    def test_unsigned_token_rejected(self):
        issuer = make_issuer()
        token = dataclasses.replace(issuer.mint(start()), signature="")
        assert issuer.validate(token, start()) == BAD_SIGNATURE

    def test_wrong_key_rejected(self):
        token = make_issuer().mint(start())
        other = CapabilityIssuer(key=b"\x00" * 32, clock=Clock())
        assert other.validate(token, start()) == BAD_SIGNATURE

    def test_scope_widening_rejected_without_tampering(self):
        """A perfectly valid token presented for a request outside its
        scope: different action, subject, owner or job description."""
        issuer = make_issuer()
        token = issuer.mint(start())
        assert issuer.validate(token, manage(BO, "cancel", BO)) == SCOPE
        assert issuer.validate(token, start(who=KATE)) == SCOPE
        assert (
            issuer.validate(token, start(rsl="&(executable=test1)(count=3)(jobtag=ADS)"))
            == SCOPE
        )

    def test_epoch_bump_revokes(self):
        counter = EpochCounter()
        issuer = make_issuer(epoch_sources=[("policy", counter)])
        token = issuer.mint(start())
        assert issuer.validate(token, start()) == VALID
        counter.bump()
        assert issuer.validate(token, start()) == EPOCH

    def test_check_order_signature_first(self):
        """An expired, out-of-scope, tampered token reports the
        signature failure — nothing about an unauthenticated artifact
        is trusted enough to report on."""
        clock = Clock()
        counter = EpochCounter()
        issuer = make_issuer(ttl=10.0, clock=clock, epoch_sources=[("p", counter)])
        token = issuer.mint(start())
        clock.advance(100.0)
        counter.bump()
        tampered = dataclasses.replace(token, actions=("cancel",))
        assert issuer.validate(tampered, manage(KATE, "cancel", KATE)) == BAD_SIGNATURE
        # With a good signature, expiry outranks epoch and scope.
        assert issuer.validate(token, manage(KATE, "cancel", KATE)) == EXPIRED


class TestSerialization:
    def test_round_trip_preserves_signature_validity(self):
        issuer = make_issuer(epoch_sources=[("policy", EpochCounter())])
        token = issuer.mint(start())
        restored = CapabilityToken.from_json(token.to_json())
        assert restored == token
        assert restored.verify_signature(KEY)
        assert issuer.validate(restored, start()) == VALID

    def test_json_is_plain_data(self):
        token = make_issuer().mint(start())
        data = json.loads(token.to_json())
        assert data["subject"] == BO
        assert data["actions"] == ["start"]
        assert data["signature"] == token.signature

    def test_mutated_json_fails_verification(self):
        token = make_issuer().mint(start())
        data = token.to_dict()
        data["jobowner"] = KATE
        assert not CapabilityToken.from_dict(data).verify_signature(KEY)


class TestCapabilityStore:
    def test_lru_eviction(self):
        store = CapabilityStore(maxsize=2)
        issuer = make_issuer()
        requests = [
            start(rsl=f"&(executable=test1)(count={n})") for n in (1, 2, 3)
        ]
        for request in requests:
            store.put(
                request_key(request),
                issuer.mint(request),
                Decision.permit(),
                (),
            )
        assert len(store) == 2
        assert store.evictions == 1
        assert store.get(request_key(requests[0])) is None
        assert store.get(request_key(requests[2])) is not None

    def test_find_by_token_id(self):
        store = CapabilityStore()
        issuer = make_issuer()
        request = start()
        token = issuer.mint(request)
        store.put(request_key(request), token, Decision.permit(), ())
        assert store.find(token.token_id) is token
        assert store.find("cap-nope") is None


def permit_callout(request, context=None):
    return Decision.permit(source="test")


def deny_callout(request, context=None):
    return Decision.deny(reasons=("no",), source="test")


def build_pep(callout=permit_callout, issuer=None):
    registry = CalloutRegistry()
    registry.register(GRAM_AUTHZ_CALLOUT, callout)
    middleware = CapabilityMiddleware(issuer or make_issuer())
    pep = EnforcementPoint(registry=registry, capability=middleware)
    return pep, middleware


class TestMiddlewareInThePEP:
    def test_first_decision_mints_second_hits(self):
        pep, middleware = build_pep()
        request = start()
        first = pep.authorize(request)
        assert first.context.cache_status != CAPABILITY_HIT
        assert first.context.capability is not None
        second = pep.authorize(request)
        assert second.context.cache_status == CAPABILITY_HIT
        assert second.context.capability.token_id == first.context.capability.token_id
        assert middleware.hits == 1
        assert middleware.issuer.minted == 1
        assert "capability" in second.context.stage_names

    def test_denials_are_never_tokenized(self):
        pep, middleware = build_pep(callout=deny_callout)
        request = start()
        for _ in range(3):
            assert not pep.decide(request).is_permit
        assert middleware.issuer.minted == 0
        assert middleware.hits == 0
        assert middleware.miss_reasons[ABSENT] == 3

    def test_hit_preserves_provenance_sources(self):
        def sourced(request, context=None):
            if context is not None:
                context.add_source("vo", Effect.PERMIT, epoch=0)
            return Decision.permit(source="vo")

        pep, _ = build_pep(callout=sourced)
        request = start()
        fresh = pep.authorize(request)
        hit = pep.authorize(request)
        assert hit.context.source_names == fresh.context.source_names

    def test_epoch_bump_discards_and_remints(self):
        counter = EpochCounter()
        issuer = make_issuer(epoch_sources=[("policy", counter)])
        pep, middleware = build_pep(issuer=issuer)
        request = start()
        first = pep.authorize(request)
        counter.bump()
        again = pep.authorize(request)
        assert again.context.cache_status != CAPABILITY_HIT
        assert middleware.revoked == 1
        assert middleware.miss_reasons[EPOCH] == 1
        # The replacement token binds the new epoch.
        assert again.context.capability.epochs != first.context.capability.epochs
        assert pep.authorize(request).context.cache_status == CAPABILITY_HIT

    def test_expiry_discards_and_remints(self):
        clock = Clock()
        issuer = make_issuer(ttl=30.0, clock=clock)
        pep, middleware = build_pep(issuer=issuer)
        request = start()
        pep.authorize(request)
        clock.advance(30.0)
        refreshed = pep.authorize(request)
        assert refreshed.context.cache_status != CAPABILITY_HIT
        assert middleware.miss_reasons[EXPIRED] == 1
        assert refreshed.context.capability.expires_at == 60.0

    def test_capability_sits_in_front_of_the_cache(self):
        pep, _ = build_pep()
        names = [getattr(m, "name", "") for m in pep.middlewares]
        assert "capability" in names
        pep.use_cache()
        names = [getattr(m, "name", "") for m in pep.middlewares]
        assert names.index("capability") < names.index("decision-cache")

    def test_use_capability_installs_on_a_plain_pep(self):
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_callout)
        pep = EnforcementPoint(registry=registry)
        pep.use_capability(CapabilityMiddleware(make_issuer()))
        request = start()
        pep.authorize(request)
        assert pep.authorize(request).context.cache_status == CAPABILITY_HIT

    def test_context_to_dict_carries_the_token_id(self):
        pep, _ = build_pep()
        request = start()
        decision = pep.authorize(request)
        data = decision.context.to_dict()
        assert data["capability"] == decision.context.capability.token_id
        plain = DecisionContext.from_request(request)
        assert plain.to_dict()["capability"] == ""


class TestCLIInspect:
    def token_file(self, tmp_path, token):
        path = tmp_path / "token.json"
        path.write_text(token.to_json(), encoding="utf-8")
        return str(path)

    def test_inspect_valid_token(self, tmp_path, capsys):
        from repro.cli import main

        token = make_issuer(ttl=60.0).mint(start())
        path = self.token_file(tmp_path, token)
        code = main(
            ["capability", "inspect", path, "--key", KEY.hex(), "--now", "30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "signature: valid" in out
        assert "live" in out
        assert token.token_id in out

    def test_inspect_host_derived_key(self, tmp_path, capsys):
        from repro.cli import main

        token = make_issuer().mint(start())
        path = self.token_file(tmp_path, token)
        assert main(
            ["capability", "inspect", path, "--host", "grid.example.org"]
        ) == 0
        assert "signature: valid" in capsys.readouterr().out

    def test_inspect_flags_expired_and_forged(self, tmp_path, capsys):
        from repro.cli import main

        token = make_issuer(ttl=60.0).mint(start())
        path = self.token_file(tmp_path, token)
        assert main(["capability", "inspect", path, "--now", "60"]) == 1
        assert "EXPIRED" in capsys.readouterr().out
        assert main(
            ["capability", "inspect", path, "--key", "00" * 32, "--now", "10"]
        ) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_inspect_rejects_non_token_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text("not json", encoding="utf-8")
        assert main(["capability", "inspect", str(path)]) == 2
