"""Dynamic policies: versioned stores and time windows."""

import pytest

from repro.core.dynamic import (
    DynamicEvaluator,
    DynamicPolicy,
    PolicyStore,
    TimeWindow,
)
from repro.core.model import PolicyAssertion, PolicyStatement, Subject
from repro.core.parser import parse_policy
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification
from repro.sim.clock import Clock

ALICE = "/O=Grid/OU=org/CN=Alice"
BASE = f"{ALICE}: &(action=start)(executable=sim)(count<4)"


def start(rsl="&(executable=sim)(count=2)", who=ALICE):
    return AuthorizationRequest.start(who, parse_specification(rsl))


class TestTimeWindow:
    def test_contains(self):
        window = TimeWindow(not_before=10.0, not_after=20.0)
        assert not window.contains(9.9)
        assert window.contains(10.0)
        assert window.contains(19.9)
        assert not window.contains(20.0)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow(not_before=10.0, not_after=10.0)


class TestDynamicPolicy:
    def demo_statement(self):
        return PolicyStatement(
            subject=Subject.identity(ALICE),
            assertions=(
                PolicyAssertion.parse("&(action=start)(executable=demo)(count<=32)"),
            ),
        )

    def test_windowed_grant_appears_and_disappears(self):
        clock = Clock()
        dynamic = DynamicPolicy(parse_policy(BASE, name="vo"))
        dynamic.add_window(self.demo_statement(), not_before=100.0, not_after=200.0)
        evaluator = DynamicEvaluator(dynamic, clock)
        demo_request = start("&(executable=demo)(count=16)")

        assert evaluator.evaluate(demo_request).is_deny      # before
        clock.advance(150.0)
        assert evaluator.evaluate(demo_request).is_permit    # during the demo
        clock.advance(100.0)
        assert evaluator.evaluate(demo_request).is_deny      # after

    def test_base_policy_unaffected_by_windows(self):
        clock = Clock()
        dynamic = DynamicPolicy(parse_policy(BASE, name="vo"))
        dynamic.add_window(self.demo_statement(), not_before=100.0, not_after=200.0)
        evaluator = DynamicEvaluator(dynamic, clock)
        for t in (0.0, 150.0, 250.0):
            clock.run_until(t)
            assert evaluator.evaluate(start()).is_permit

    def test_snapshot_without_active_windows_is_base(self):
        dynamic = DynamicPolicy(parse_policy(BASE, name="vo"))
        dynamic.add_window(self.demo_statement(), not_before=100.0, not_after=200.0)
        assert dynamic.snapshot(0.0) is dynamic.base
        assert len(dynamic.snapshot(150.0)) == len(dynamic.base) + 1


class TestPolicyStore:
    def test_hot_reload_changes_decisions(self):
        store = PolicyStore(parse_policy(BASE, name="vo"))
        big = start("&(executable=sim)(count=16)")
        assert store.evaluate(big).is_deny
        store.install_text(f"{ALICE}: &(action=start)(executable=sim)(count<32)")
        assert store.evaluate(big).is_permit

    def test_versions_increment_and_diff(self):
        store = PolicyStore(parse_policy(BASE, name="vo"))
        assert store.version == 1
        diff = store.install_text(
            BASE + f"\n{ALICE}: &(action=cancel)(jobowner=self)"
        )
        assert store.version == 2
        assert len(diff.added) == 1

    def test_rollback(self):
        store = PolicyStore(parse_policy(BASE, name="vo"))
        store.install_text(f"{ALICE}: &(action=start)(executable=other)")
        assert store.evaluate(start()).is_deny
        store.rollback(to_version=1)
        assert store.version == 3  # rollback is a new version
        assert store.evaluate(start()).is_permit

    def test_rollback_to_unknown_version(self):
        store = PolicyStore(parse_policy(BASE, name="vo"))
        with pytest.raises(KeyError):
            store.rollback(42)

    def test_listeners_notified_with_diff(self):
        store = PolicyStore(parse_policy(BASE, name="vo"))
        seen = []
        store.listeners.append(lambda version, diff: seen.append((version.version, diff)))
        store.install_text(f"{ALICE}: &(action=start)(executable=other)")
        assert len(seen) == 1
        assert seen[0][0] == 2
        assert not seen[0][1].is_empty

    def test_history_preserved(self):
        store = PolicyStore(parse_policy(BASE, name="vo"))
        store.install_text(f"{ALICE}: &(action=start)(executable=v2)")
        store.install_text(f"{ALICE}: &(action=start)(executable=v3)")
        assert [v.version for v in store.history()] == [1, 2, 3]

    def test_store_callout_sees_updates(self):
        """The PEP-facing callout reflects new versions immediately."""
        from repro.core.callout import GRAM_AUTHZ_CALLOUT, CalloutRegistry
        from repro.core.pep import EnforcementPoint
        from repro.core.errors import AuthorizationDenied

        store = PolicyStore(parse_policy(BASE, name="vo"))
        registry = CalloutRegistry()
        registry.register(GRAM_AUTHZ_CALLOUT, store.callout())
        pep = EnforcementPoint(registry=registry)

        big = start("&(executable=sim)(count=16)")
        with pytest.raises(AuthorizationDenied):
            pep.authorize(big)
        store.install_text(f"{ALICE}: &(action=start)(executable=sim)(count<32)")
        assert pep.authorize(big).is_permit
