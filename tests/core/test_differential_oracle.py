"""Differential testing: production evaluator vs. a reference oracle.

The oracle below re-implements the documented language semantics in
the most direct way possible — nested loops, no early exits, no
shared code with the production evaluator.  Hypothesis then compares
the two on randomly generated policies × requests.  A disagreement
means either the implementation or the documentation is wrong.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import CASE_INSENSITIVE_ATTRIBUTES, NULL, SELF
from repro.core.evaluator import PolicyEvaluator
from repro.core.model import (
    Policy,
    PolicyAssertion,
    PolicyStatement,
    StatementKind,
    Subject,
)
from repro.core.request import AuthorizationRequest
from repro.rsl.ast import Relation, Relop, Specification

ORG = "/O=Grid/OU=oracle"


# ---------------------------------------------------------------------------
# The reference oracle
# ---------------------------------------------------------------------------


def oracle_values(spec, attribute):
    out = []
    for relation in spec:
        if relation.attribute == attribute and relation.op is Relop.EQ:
            for value in relation.values:
                text = str(value)
                if text and text != NULL:
                    out.append(text)
    return out


def oracle_number(text):
    """Finite decimal numbers only — nan/inf/underscores are strings."""
    if "_" in text:
        return None
    try:
        number = float(text)
    except ValueError:
        return None
    if number != number or abs(number) == float("inf"):
        return None
    return number


def oracle_equal(attribute, a, b):
    na, nb = oracle_number(a), oracle_number(b)
    if na is not None and nb is not None:
        return na == nb
    if attribute in CASE_INSENSITIVE_ATTRIBUTES:
        return a.lower() == b.lower()
    return a == b


def oracle_relation(relation, request_spec, requester):
    attribute = relation.attribute
    present = oracle_values(request_spec, attribute)
    asserted = []
    for value in relation.values:
        text = str(value)
        if text == SELF:
            text = requester
        asserted.append(text)

    if relation.op is Relop.EQ:
        if NULL in asserted:
            return len(present) == 0
        if not present:
            return False
        return all(
            any(oracle_equal(attribute, p, a) for a in asserted) for p in present
        )
    if relation.op is Relop.NEQ:
        if NULL in asserted:
            return len(present) > 0
        return not any(
            oracle_equal(attribute, p, a) for p in present for a in asserted
        )
    # ordering
    if len(asserted) != 1:
        return False
    bound = oracle_number(asserted[0])
    if bound is None or not present:
        return False
    compare = {
        Relop.LT: lambda x: x < bound,
        Relop.LTE: lambda x: x <= bound,
        Relop.GT: lambda x: x > bound,
        Relop.GTE: lambda x: x >= bound,
    }[relation.op]
    for p in present:
        number = oracle_number(p)
        if number is None or not compare(number):
            return False
    return True


def oracle_assertion(assertion_spec, request_spec, requester):
    return all(
        oracle_relation(relation, request_spec, requester)
        for relation in assertion_spec
    )


def oracle_decide(policy, request) -> bool:
    """True = permit, False = deny (default deny)."""
    requester = str(request.requester)
    request_spec = request.evaluation_specification()

    # Requirements first.
    for statement in policy:
        if statement.kind is not StatementKind.REQUIREMENT:
            continue
        if not statement.subject.matches(request.requester):
            continue
        for assertion in statement.assertions:
            guard = assertion.guard()
            guard_holds = (
                len(guard) == 0
                or oracle_assertion(guard, request_spec, requester)
            )
            if guard_holds and not oracle_assertion(
                assertion.body(), request_spec, requester
            ):
                return False

    # Grants.
    for statement in policy:
        if statement.kind is not StatementKind.GRANT:
            continue
        if not statement.subject.matches(request.requester):
            continue
        for assertion in statement.assertions:
            if oracle_assertion(assertion.spec, request_spec, requester):
                return True
    return False


# ---------------------------------------------------------------------------
# Random policies and requests over a tiny, collision-rich vocabulary
# ---------------------------------------------------------------------------

attributes = st.sampled_from(["executable", "jobtag", "count", "queue"])
small_values = st.sampled_from(["a", "b", "NFC", "nfc", "1", "2", "4", NULL])
operators = st.sampled_from(list(Relop))
users = st.sampled_from([f"{ORG}/CN=U{i}" for i in range(4)])
actions = st.sampled_from(["start", "cancel", "information"])


@st.composite
def relations(draw):
    op = draw(operators)
    attribute = draw(attributes)
    count = 1 if op.is_ordering else draw(st.integers(1, 2))
    values = [draw(small_values) for _ in range(count)]
    if attribute == "jobowner":
        values = [SELF]
    return Relation.make(attribute, op, values)


@st.composite
def policies(draw):
    statements = []
    for _ in range(draw(st.integers(0, 4))):
        kind = draw(
            st.sampled_from([StatementKind.GRANT, StatementKind.REQUIREMENT])
        )
        subject = (
            Subject.prefix(ORG)
            if draw(st.booleans())
            else Subject.identity(draw(users))
        )
        assertions = []
        for _ in range(draw(st.integers(1, 2))):
            parts = [Relation.make("action", Relop.EQ, draw(actions))]
            for _ in range(draw(st.integers(0, 3))):
                parts.append(draw(relations()))
            assertions.append(PolicyAssertion(spec=Specification.make(parts)))
        statements.append(
            PolicyStatement(
                subject=subject, assertions=tuple(assertions), kind=kind
            )
        )
    return Policy.make(statements, name="oracle")


@st.composite
def requests(draw):
    parts = []
    for attribute in ("executable", "jobtag", "count", "queue"):
        if draw(st.booleans()):
            parts.append(
                Relation.make(attribute, Relop.EQ, draw(small_values))
            )
    if not parts:
        parts.append(Relation.make("executable", Relop.EQ, "a"))
    spec = Specification.make(parts)
    who = draw(users)
    action = draw(actions)
    if action == "start":
        return AuthorizationRequest.start(who, spec)
    return AuthorizationRequest.manage(
        who, action, spec, jobowner=draw(users)
    )


class TestDifferentialOracle:
    @given(policy=policies(), request=requests())
    @settings(max_examples=600, deadline=None)
    def test_production_evaluator_matches_the_oracle(self, policy, request):
        production = PolicyEvaluator(policy).evaluate(request).is_permit
        reference = oracle_decide(policy, request)
        assert production == reference, (
            f"\npolicy:\n{policy}\nrequest: {request}\n"
            f"spec: {request.evaluation_specification()}\n"
            f"production={production} oracle={reference}"
        )
