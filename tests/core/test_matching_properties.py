"""Property-based invariants of relation matching."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import NULL
from repro.core.matching import MatchContext, match_relation
from repro.gsi.names import DistinguishedName
from repro.rsl.ast import Relation, Relop, Specification

CTX = MatchContext(requester=DistinguishedName.parse("/O=Grid/CN=Tester"))

attr_names = st.sampled_from(["executable", "directory", "queue", "custom"])
word_values = st.text(
    alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8
)
numbers = st.integers(min_value=0, max_value=1000)


def spec_with(attribute, *values):
    return Specification.make(
        [Relation.make(attribute, Relop.EQ, list(values))] if values else []
    )


class TestEqNeqDuality:
    @given(attr=attr_names, value=word_values, present=word_values)
    @settings(max_examples=200)
    def test_eq_and_neq_disagree_when_attribute_present(
        self, attr, value, present
    ):
        """For a present single-valued attribute, (a=v) and (a!=v)
        are exact complements."""
        request = spec_with(attr, present)
        eq = match_relation(Relation.make(attr, Relop.EQ, value), request, CTX)
        neq = match_relation(Relation.make(attr, Relop.NEQ, value), request, CTX)
        assert eq.satisfied != neq.satisfied

    @given(attr=attr_names, value=word_values)
    @settings(max_examples=100)
    def test_absent_attribute_fails_eq_and_passes_neq(self, attr, value):
        request = Specification.make(
            [Relation.make("other", Relop.EQ, "x")]
        )
        eq = match_relation(Relation.make(attr, Relop.EQ, value), request, CTX)
        neq = match_relation(Relation.make(attr, Relop.NEQ, value), request, CTX)
        assert not eq.satisfied
        assert neq.satisfied


class TestNullDuality:
    @given(attr=attr_names, present=st.booleans(), value=word_values)
    @settings(max_examples=150)
    def test_eq_null_and_neq_null_are_complements(self, attr, present, value):
        request = spec_with(attr, value) if present else spec_with(attr)
        required_absent = match_relation(
            Relation.make(attr, Relop.EQ, NULL), request, CTX
        )
        required_present = match_relation(
            Relation.make(attr, Relop.NEQ, NULL), request, CTX
        )
        assert required_absent.satisfied != required_present.satisfied
        assert required_present.satisfied == present


class TestOrderingProperties:
    @given(attr=attr_names, value=numbers, bound=numbers)
    @settings(max_examples=200)
    def test_lt_matches_python_semantics(self, attr, value, bound):
        request = spec_with(attr, value)
        outcome = match_relation(
            Relation.make(attr, Relop.LT, bound), request, CTX
        )
        assert outcome.satisfied == (value < bound)

    @given(attr=attr_names, value=numbers, bound=numbers)
    @settings(max_examples=200)
    def test_lte_gte_cover_all_cases(self, attr, value, bound):
        request = spec_with(attr, value)
        lte = match_relation(Relation.make(attr, Relop.LTE, bound), request, CTX)
        gte = match_relation(Relation.make(attr, Relop.GTE, bound), request, CTX)
        # At least one of <=, >= always holds for comparable numbers.
        assert lte.satisfied or gte.satisfied
        if lte.satisfied and gte.satisfied:
            assert value == bound

    @given(attr=attr_names, values=st.lists(numbers, min_size=1, max_size=5), bound=numbers)
    @settings(max_examples=150)
    def test_multivalued_ordering_requires_all(self, attr, values, bound):
        request = Specification.make(
            [Relation.make(attr, Relop.EQ, values)]
        )
        outcome = match_relation(
            Relation.make(attr, Relop.LT, bound), request, CTX
        )
        assert outcome.satisfied == all(v < bound for v in values)


class TestFailureReasons:
    @given(attr=attr_names, value=word_values, wanted=word_values)
    @settings(max_examples=100)
    def test_unsatisfied_relations_always_explain_themselves(
        self, attr, value, wanted
    ):
        request = spec_with(attr, value)
        outcome = match_relation(
            Relation.make(attr, Relop.EQ, wanted), request, CTX
        )
        if not outcome.satisfied:
            assert attr in outcome.reason
