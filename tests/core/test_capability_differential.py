"""Differential oracle: capability fast path vs fresh combined evaluation.

The safety bar for signed capability grants is *never exceeds*: across
randomized policies, subjects, actions, mid-stream policy-epoch bumps
and TTL expiries, a decision served by capability validation must
never permit anything a fresh combined-engine evaluation would not
permit at that same moment.  Zero tolerance — one exceed is a
delegation bug.

The streams here replay ≥10k cases in total (pinned by the floor test
at the bottom, like the compiled-engine parity suite) through
:func:`repro.workloads.capability_audit.run_capability_audit`, which
deliberately opens every staleness window the design fails closed
against.
"""

import pytest

from repro.workloads.capability_audit import (
    AuditConfig,
    run_capability_audit,
)
from repro.workloads.generator import PolicyShape


def assert_never_exceeds(result):
    assert result.exceeded == 0, (
        f"{result.exceeded} capability decision(s) exceeded fresh "
        f"evaluation; first divergence: {result.first_divergence}"
    )
    # The stronger property also holds by construction (a miss
    # re-evaluates fresh, a hit replays a decision minted at the same
    # policy epochs): the fast path is semantically invisible.
    assert result.divergences == 0, (
        f"{result.divergences} divergence(s); first: {result.first_divergence}"
    )


CONFIGS = [
    pytest.param(
        AuditConfig(
            shape=PolicyShape(users=10, seed=3),
            pool_size=80,
            cases=3000,
            seed=11,
        ),
        id="small-pool-heavy-repeat",
    ),
    pytest.param(
        AuditConfig(
            shape=PolicyShape(
                users=50,
                statements_per_user=2,
                assertions_per_statement=3,
                seed=17,
            ),
            pool_size=250,
            cases=4000,
            seed=23,
            bump_every=500,
            advance_every=300,
        ),
        id="medium-frequent-bumps",
    ),
    pytest.param(
        AuditConfig(
            shape=PolicyShape(users=25, group_requirements=2, seed=29),
            pool_size=120,
            cases=2500,
            seed=31,
            ttl=90.0,
            bump_every=0,
            advance_every=200,
        ),
        id="short-ttl-no-bumps",
    ),
    pytest.param(
        AuditConfig(
            shape=PolicyShape(users=15, seed=41),
            pool_size=60,
            cases=2500,
            seed=43,
            bump_every=250,
            advance_every=0,
        ),
        id="bump-storm-no-expiry",
    ),
]


class TestNeverExceeds:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_stream(self, config):
        result = run_capability_audit(config)
        assert result.cases == config.cases
        assert_never_exceeds(result)

    def test_streams_actually_exercise_the_fast_path(self):
        """A vacuously-true audit (no hits) proves nothing; pin that
        the default stream serves real traffic from capabilities and
        revokes through real epoch bumps."""
        result = run_capability_audit(AuditConfig(cases=3000))
        assert_never_exceeds(result)
        assert result.hits > 100
        assert result.minted > 10
        assert result.revoked > 0
        assert result.miss_reasons["epoch"] > 0
        assert result.miss_reasons["expired"] > 0

    def test_no_mutation_stream_is_all_hits_after_warmup(self):
        """With no bumps and no clock movement every repeat of a
        permitted request is a capability hit — and still identical to
        fresh evaluation."""
        config = AuditConfig(
            shape=PolicyShape(users=8, seed=5),
            pool_size=40,
            cases=2000,
            seed=7,
            bump_every=0,
            advance_every=0,
        )
        result = run_capability_audit(config)
        assert_never_exceeds(result)
        # With nothing mutating, the only miss reason is "absent"
        # (first sight of each pool entry: mints for permits, plain
        # re-evaluation for denies); every repeat of a permit hits.
        assert result.misses == result.miss_reasons["absent"]
        assert result.hits == result.cases - result.misses
        assert result.minted <= result.misses
        assert result.hits > 0


def test_total_case_volume():
    """The acceptance criterion asks for ≥10k differential cases; the
    streams above add up — shrinking one without noticing fails here."""
    total = sum(param.values[0].cases for param in CONFIGS)
    total += 3000  # fast-path-coverage stream
    total += 2000  # no-mutation stream
    assert total >= 10_000
