"""Job model and queue configuration."""

import pytest

from repro.lrm.errors import QueueError
from repro.lrm.jobs import BatchJob, JobState
from repro.lrm.queues import JobQueue


class TestBatchJob:
    def test_auto_job_id(self):
        a = BatchJob(account="x", executable="e", cpus=1, runtime=1.0)
        b = BatchJob(account="x", executable="e", cpus=1, runtime=1.0)
        assert a.job_id != b.job_id

    def test_explicit_job_id_kept(self):
        j = BatchJob(account="x", executable="e", cpus=1, runtime=1.0, job_id="mine")
        assert j.job_id == "mine"

    def test_nonpositive_cpus_rejected(self):
        with pytest.raises(ValueError):
            BatchJob(account="x", executable="e", cpus=0, runtime=1.0)

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            BatchJob(account="x", executable="e", cpus=1, runtime=-1.0)

    def test_terminal_states(self):
        assert JobState.COMPLETED.is_terminal
        assert JobState.CANCELLED.is_terminal
        assert JobState.FAILED.is_terminal
        assert not JobState.RUNNING.is_terminal
        assert not JobState.SUSPENDED.is_terminal

    def test_cpu_seconds_zero_before_start(self):
        j = BatchJob(account="x", executable="e", cpus=4, runtime=10.0)
        assert j.cpu_seconds == 0.0

    def test_wait_time_none_before_start(self):
        j = BatchJob(account="x", executable="e", cpus=1, runtime=1.0)
        assert j.wait_time is None
        assert j.wall_time is None


class TestJobQueue:
    def test_unlimited_queue_admits_anything(self):
        queue = JobQueue(name="default")
        queue.admit(BatchJob(account="x", executable="e", cpus=999, runtime=1e9))

    def test_cpu_cap(self):
        queue = JobQueue(name="q", max_cpus_per_job=4)
        queue.admit(BatchJob(account="x", executable="e", cpus=4, runtime=1.0))
        with pytest.raises(QueueError):
            queue.admit(BatchJob(account="x", executable="e", cpus=5, runtime=1.0))

    def test_walltime_cap_requires_declared_bound(self):
        queue = JobQueue(name="q", max_walltime=100.0)
        with pytest.raises(QueueError):
            queue.admit(BatchJob(account="x", executable="e", cpus=1, runtime=1.0))

    def test_walltime_cap_rejects_large_request(self):
        queue = JobQueue(name="q", max_walltime=100.0)
        with pytest.raises(QueueError):
            queue.admit(
                BatchJob(
                    account="x", executable="e", cpus=1, runtime=1.0, max_walltime=200.0
                )
            )

    def test_effective_walltime_takes_minimum(self):
        queue = JobQueue(name="q", max_walltime=100.0)
        tight = BatchJob(
            account="x", executable="e", cpus=1, runtime=1.0, max_walltime=50.0
        )
        assert queue.effective_walltime(tight) == 50.0
        loose = BatchJob(
            account="x", executable="e", cpus=1, runtime=1.0, max_walltime=500.0
        )
        assert queue.effective_walltime(loose) == 100.0

    def test_effective_walltime_unbounded(self):
        queue = JobQueue(name="q")
        j = BatchJob(account="x", executable="e", cpus=1, runtime=1.0)
        assert queue.effective_walltime(j) is None
