"""Cluster and allocation behaviour."""

import pytest

from repro.lrm.cluster import Allocation, Cluster, Node
from repro.lrm.errors import AllocationError


class TestNode:
    def test_take_and_give_back(self):
        node = Node("n1", cpus=4)
        node.take(3)
        assert node.free == 1
        node.give_back(2)
        assert node.free == 3

    def test_overcommit_rejected(self):
        node = Node("n1", cpus=4)
        with pytest.raises(AllocationError):
            node.take(5)

    def test_over_release_rejected(self):
        node = Node("n1", cpus=4)
        node.take(1)
        with pytest.raises(AllocationError):
            node.give_back(2)

    def test_zero_cpu_node_rejected(self):
        with pytest.raises(ValueError):
            Node("n1", cpus=0)


class TestCluster:
    def test_homogeneous_construction(self):
        cluster = Cluster.homogeneous("c", node_count=3, cpus_per_node=4)
        assert cluster.total_cpus == 12
        assert cluster.free_cpus == 12
        assert len(cluster.nodes) == 3

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(ValueError):
            Cluster("c", [Node("same", 1), Node("same", 1)])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster("c", [])

    def test_allocation_spans_nodes(self):
        cluster = Cluster.homogeneous("c", node_count=2, cpus_per_node=4)
        allocation = cluster.allocate(6)
        assert allocation.total_cpus == 6
        assert len(allocation.parts) == 2
        assert cluster.free_cpus == 2

    def test_release_restores_capacity(self):
        cluster = Cluster.homogeneous("c", node_count=2, cpus_per_node=4)
        allocation = cluster.allocate(5)
        cluster.release(allocation)
        assert cluster.free_cpus == 8

    def test_cannot_allocate_more_than_free(self):
        cluster = Cluster.homogeneous("c", node_count=1, cpus_per_node=4)
        cluster.allocate(3)
        with pytest.raises(AllocationError):
            cluster.allocate(2)

    def test_zero_allocation_rejected(self):
        cluster = Cluster.homogeneous("c", node_count=1, cpus_per_node=4)
        with pytest.raises(AllocationError):
            cluster.allocate(0)

    def test_fits_vs_can_allocate(self):
        cluster = Cluster.homogeneous("c", node_count=1, cpus_per_node=4)
        cluster.allocate(3)
        assert cluster.fits(4)          # could run once resources free up
        assert not cluster.can_allocate(4)  # not right now
        assert not cluster.fits(5)      # never

    def test_utilization(self):
        cluster = Cluster.homogeneous("c", node_count=1, cpus_per_node=4)
        assert cluster.utilization == 0.0
        cluster.allocate(2)
        assert cluster.utilization == 0.5

    def test_release_unknown_node_rejected(self):
        cluster = Cluster.homogeneous("c", node_count=1, cpus_per_node=4)
        bogus = Allocation(parts=(("ghost", 1),))
        with pytest.raises(AllocationError):
            cluster.release(bogus)

    def test_many_small_allocations_fill_exactly(self):
        cluster = Cluster.homogeneous("c", node_count=4, cpus_per_node=4)
        allocations = [cluster.allocate(1) for _ in range(16)]
        assert cluster.free_cpus == 0
        for allocation in allocations:
            cluster.release(allocation)
        assert cluster.free_cpus == 16
