"""Batch scheduler behaviour."""

import pytest

from repro.lrm.cluster import Cluster
from repro.lrm.errors import AllocationError, QueueError, UnknownJobError
from repro.lrm.jobs import BatchJob, JobState
from repro.lrm.queues import JobQueue
from repro.lrm.scheduler import BatchScheduler
from repro.sim.clock import Clock


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def scheduler(clock):
    cluster = Cluster.homogeneous("c", node_count=2, cpus_per_node=4)
    queues = [
        JobQueue(name="default"),
        JobQueue(name="fast", priority=10, max_cpus_per_job=2, max_walltime=100.0),
    ]
    return BatchScheduler(cluster, clock, queues=queues)


def job(**kwargs):
    defaults = dict(account="alice", executable="sim", cpus=1, runtime=10.0)
    defaults.update(kwargs)
    return BatchJob(**defaults)


class TestSubmission:
    def test_job_starts_when_cpus_free(self, scheduler, clock):
        j = job()
        scheduler.submit(j)
        assert j.state is JobState.RUNNING
        clock.advance(10.0)
        assert j.state is JobState.COMPLETED

    def test_job_queues_when_cluster_busy(self, scheduler, clock):
        big = job(cpus=8, runtime=50.0)
        small = job(cpus=1, runtime=5.0)
        scheduler.submit(big)
        scheduler.submit(small)
        assert small.state is JobState.QUEUED
        clock.advance(50.0)
        assert small.state is JobState.RUNNING

    def test_unknown_queue_rejected(self, scheduler):
        with pytest.raises(QueueError):
            scheduler.submit(job(queue="nope"))

    def test_oversized_job_rejected_immediately(self, scheduler):
        with pytest.raises(AllocationError):
            scheduler.submit(job(cpus=100))

    def test_queue_cpu_cap_enforced(self, scheduler):
        with pytest.raises(QueueError):
            scheduler.submit(job(queue="fast", cpus=3, max_walltime=50.0))

    def test_queue_walltime_cap_enforced(self, scheduler):
        with pytest.raises(QueueError):
            scheduler.submit(job(queue="fast", max_walltime=1000.0))
        with pytest.raises(QueueError):
            scheduler.submit(job(queue="fast"))  # unlimited request

    def test_duplicate_job_id_rejected(self, scheduler):
        j = job()
        scheduler.submit(j)
        with pytest.raises(QueueError):
            scheduler.submit(job(job_id=j.job_id))


class TestOrdering:
    def test_fifo_within_priority(self, scheduler, clock):
        blocker = job(cpus=8, runtime=10.0)
        first = job(cpus=8, runtime=1.0)
        second = job(cpus=8, runtime=1.0)
        scheduler.submit(blocker)
        clock.advance(1.0)
        scheduler.submit(first)
        clock.advance(1.0)
        scheduler.submit(second)
        clock.advance(20.0)
        assert first.started_at < second.started_at

    def test_higher_job_priority_jumps_queue(self, scheduler, clock):
        blocker = job(cpus=8, runtime=10.0)
        normal = job(cpus=8, runtime=1.0)
        urgent = job(cpus=8, runtime=1.0, priority=5)
        scheduler.submit(blocker)
        scheduler.submit(normal)
        scheduler.submit(urgent)
        clock.advance(30.0)
        assert urgent.started_at < normal.started_at

    def test_higher_queue_priority_wins(self, scheduler, clock):
        blocker = job(cpus=8, runtime=10.0)
        normal = job(cpus=8, runtime=1.0)
        fast = job(cpus=2, runtime=1.0, queue="fast", max_walltime=50.0)
        scheduler.submit(blocker)
        scheduler.submit(normal)
        scheduler.submit(fast)
        clock.advance(30.0)
        assert fast.started_at < normal.started_at


class TestManagement:
    def test_cancel_queued_job(self, scheduler, clock):
        blocker = job(cpus=8, runtime=10.0)
        waiting = job(cpus=8)
        scheduler.submit(blocker)
        scheduler.submit(waiting)
        scheduler.cancel(waiting.job_id)
        assert waiting.state is JobState.CANCELLED
        clock.advance(50.0)
        assert waiting.state is JobState.CANCELLED

    def test_cancel_running_job_frees_cpus(self, scheduler, clock):
        j = job(cpus=8, runtime=100.0)
        scheduler.submit(j)
        clock.advance(5.0)
        scheduler.cancel(j.job_id)
        assert j.state is JobState.CANCELLED
        assert scheduler.cluster.free_cpus == 8

    def test_cancel_is_idempotent(self, scheduler):
        j = job()
        scheduler.submit(j)
        scheduler.cancel(j.job_id)
        scheduler.cancel(j.job_id)
        assert j.state is JobState.CANCELLED

    def test_suspend_frees_cpus_and_resume_continues(self, scheduler, clock):
        j = job(cpus=8, runtime=10.0)
        scheduler.submit(j)
        clock.advance(4.0)
        scheduler.suspend(j.job_id)
        assert j.state is JobState.SUSPENDED
        assert scheduler.cluster.free_cpus == 8
        clock.advance(100.0)
        scheduler.resume(j.job_id)
        clock.advance(6.0)
        assert j.state is JobState.COMPLETED

    def test_suspension_enables_preemption(self, scheduler, clock):
        """The use case: suspend a long job to run an urgent one."""
        long_job = job(cpus=8, runtime=1000.0)
        scheduler.submit(long_job)
        urgent = job(cpus=8, runtime=10.0, account="admin")
        scheduler.submit(urgent)
        assert urgent.state is JobState.QUEUED
        scheduler.suspend(long_job.job_id)
        assert urgent.state is JobState.RUNNING
        clock.advance(10.0)
        assert urgent.state is JobState.COMPLETED
        scheduler.resume(long_job.job_id)
        assert long_job.state is JobState.RUNNING

    def test_resume_without_cpus_requeues(self, scheduler, clock):
        first = job(cpus=8, runtime=100.0)
        scheduler.submit(first)
        clock.advance(1.0)
        scheduler.suspend(first.job_id)
        second = job(cpus=8, runtime=50.0)
        scheduler.submit(second)
        scheduler.resume(first.job_id)
        assert first.state is JobState.QUEUED
        clock.advance(50.0)
        assert first.state is JobState.RUNNING

    def test_signal_changes_priority(self, scheduler, clock):
        blocker = job(cpus=8, runtime=10.0)
        a = job(cpus=8, runtime=1.0)
        b = job(cpus=8, runtime=1.0)
        scheduler.submit(blocker)
        scheduler.submit(a)
        scheduler.submit(b)
        scheduler.signal_priority(b.job_id, 99)
        clock.advance(30.0)
        assert b.started_at < a.started_at

    def test_management_of_unknown_job_rejected(self, scheduler):
        with pytest.raises(UnknownJobError):
            scheduler.cancel("ghost")
        with pytest.raises(UnknownJobError):
            scheduler.suspend("ghost")

    def test_suspend_requires_running(self, scheduler):
        blocker = job(cpus=8, runtime=10.0)
        waiting = job(cpus=8)
        scheduler.submit(blocker)
        scheduler.submit(waiting)
        with pytest.raises(UnknownJobError):
            scheduler.suspend(waiting.job_id)

    def test_fail_marks_failed(self, scheduler):
        j = job(runtime=100.0)
        scheduler.submit(j)
        scheduler.fail(j.job_id, "killed by sandbox: cpu")
        assert j.state is JobState.FAILED
        assert "sandbox" in j.exit_reason


class TestWalltime:
    def test_walltime_kill(self, scheduler, clock):
        j = job(runtime=1000.0, max_walltime=50.0)
        scheduler.submit(j)
        clock.advance(51.0)
        assert j.state is JobState.FAILED
        assert j.exit_reason == "walltime exceeded"

    def test_job_finishing_before_walltime_is_fine(self, scheduler, clock):
        j = job(runtime=10.0, max_walltime=50.0)
        scheduler.submit(j)
        clock.advance(60.0)
        assert j.state is JobState.COMPLETED

    def test_suspension_disarms_walltime(self, scheduler, clock):
        j = job(cpus=1, runtime=40.0, max_walltime=50.0)
        scheduler.submit(j)
        clock.advance(10.0)
        scheduler.suspend(j.job_id)
        clock.advance(100.0)  # would exceed walltime if still armed
        assert j.state is JobState.SUSPENDED


class TestAccounting:
    def test_cpu_seconds_accumulate(self, scheduler, clock):
        j = job(cpus=4, runtime=10.0)
        scheduler.submit(j)
        clock.advance(10.0)
        usage = scheduler.usage("alice")
        assert usage.cpu_seconds == pytest.approx(40.0)
        assert usage.jobs_completed == 1

    def test_cancelled_jobs_count_partial_usage(self, scheduler, clock):
        j = job(cpus=2, runtime=100.0)
        scheduler.submit(j)
        clock.advance(10.0)
        scheduler.cancel(j.job_id)
        usage = scheduler.usage("alice")
        assert usage.cpu_seconds == pytest.approx(20.0)
        assert usage.jobs_cancelled == 1

    def test_terminal_hook_fires(self, scheduler, clock):
        seen = []
        j = job(runtime=5.0)
        scheduler.submit(j)
        scheduler.on_job_terminal(j.job_id, lambda j: seen.append(j.job_id))
        clock.advance(5.0)
        assert seen == [j.job_id]

    def test_add_terminal_hook_deprecated_but_functional(
        self, scheduler, clock
    ):
        seen = []
        with pytest.warns(DeprecationWarning, match="on_job_terminal"):
            scheduler.add_terminal_hook(lambda j: seen.append(j.job_id))
        j = job(runtime=5.0)
        scheduler.submit(j)
        clock.advance(5.0)
        assert seen == [j.job_id]

    def test_usage_summary_all_accounts_sorted(self, scheduler, clock):
        scheduler.submit(job(runtime=5.0, account="zed"))
        scheduler.submit(job(runtime=5.0))  # alice
        clock.advance(5.0)
        summary = scheduler.usage_summary()
        assert list(summary) == ["alice", "zed"]
        assert summary["alice"]["jobs_completed"] == 1
        assert summary["alice"]["cpu_seconds"] == pytest.approx(5.0)

    def test_usage_summary_survives_forget(self, scheduler, clock):
        j = job(runtime=5.0)
        scheduler.submit(j)
        clock.advance(5.0)
        scheduler.forget(j.job_id)
        summary = scheduler.usage_summary("alice")
        assert summary["alice"]["jobs_completed"] == 1
        assert summary["alice"]["jobs_finished"] == 1

    def test_jobs_filter_by_state(self, scheduler, clock):
        done = job(runtime=1.0)
        running = job(runtime=100.0)
        scheduler.submit(done)
        scheduler.submit(running)
        clock.advance(2.0)
        assert done in scheduler.jobs(JobState.COMPLETED)
        assert running in scheduler.jobs(JobState.RUNNING)
        assert len(scheduler.jobs()) == 2


class TestPerJobTerminalCallbacks:
    def test_callback_fires_once_for_its_job_only(self, scheduler, clock):
        seen = []
        a = job(runtime=5.0)
        b = job(runtime=7.0)
        scheduler.submit(a)
        scheduler.submit(b)
        scheduler.on_job_terminal(a.job_id, lambda j: seen.append(("a", j.job_id)))
        scheduler.on_job_terminal(b.job_id, lambda j: seen.append(("b", j.job_id)))
        clock.advance(5.0)
        assert seen == [("a", a.job_id)]
        clock.advance(2.0)
        assert seen == [("a", a.job_id), ("b", b.job_id)]

    def test_registrations_consumed_on_fire(self, scheduler, clock):
        a = job(runtime=5.0)
        scheduler.submit(a)
        scheduler.on_job_terminal(a.job_id, lambda j: None)
        assert scheduler.terminal_callback_count == 1
        clock.advance(5.0)
        assert scheduler.terminal_callback_count == 0

    def test_already_terminal_job_fires_immediately(self, scheduler, clock):
        a = job(runtime=1.0)
        scheduler.submit(a)
        clock.advance(1.0)
        seen = []
        scheduler.on_job_terminal(a.job_id, lambda j: seen.append(j.state))
        assert seen == [JobState.COMPLETED]
        assert scheduler.terminal_callback_count == 0

    def test_multiple_callbacks_fire_in_registration_order(self, scheduler, clock):
        order = []
        a = job(runtime=5.0)
        scheduler.submit(a)
        scheduler.on_job_terminal(a.job_id, lambda j: order.append("first"))
        scheduler.on_job_terminal(a.job_id, lambda j: order.append("second"))
        clock.advance(5.0)
        assert order == ["first", "second"]

    def test_drop_job_terminal_discards_pending(self, scheduler, clock):
        seen = []
        a = job(runtime=5.0)
        scheduler.submit(a)
        scheduler.on_job_terminal(a.job_id, lambda j: seen.append(j))
        scheduler.drop_job_terminal(a.job_id)
        clock.advance(5.0)
        assert seen == []

    def test_cancellation_also_dispatches(self, scheduler, clock):
        seen = []
        a = job(runtime=50.0)
        scheduler.submit(a)
        scheduler.on_job_terminal(a.job_id, lambda j: seen.append(j.state))
        scheduler.cancel(a.job_id)
        assert seen == [JobState.CANCELLED]


class TestForget:
    def test_forget_drops_terminal_record(self, scheduler, clock):
        a = job(runtime=1.0)
        scheduler.submit(a)
        clock.advance(1.0)
        scheduler.forget(a.job_id)
        assert len(scheduler.jobs()) == 0
        with pytest.raises(UnknownJobError):
            scheduler.job(a.job_id)

    def test_forget_preserves_aggregated_usage(self, scheduler, clock):
        a = job(cpus=2, runtime=10.0)
        scheduler.submit(a)
        clock.advance(10.0)
        scheduler.forget(a.job_id)
        usage = scheduler.usage("alice")
        assert usage.jobs_completed == 1
        assert usage.cpu_seconds == pytest.approx(20.0)

    def test_forget_rejects_non_terminal_jobs(self, scheduler, clock):
        a = job(runtime=50.0)
        scheduler.submit(a)
        with pytest.raises(QueueError):
            scheduler.forget(a.job_id)

    def test_forgotten_job_id_can_be_reused(self, scheduler, clock):
        a = job(runtime=1.0, job_id="fixed-id")
        scheduler.submit(a)
        clock.advance(1.0)
        scheduler.forget("fixed-id")
        b = job(runtime=1.0, job_id="fixed-id")
        scheduler.submit(b)
        assert b.state is JobState.RUNNING
