"""Property-based invariants of the batch scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lrm.cluster import Cluster
from repro.lrm.jobs import BatchJob, JobState
from repro.lrm.scheduler import BatchScheduler
from repro.sim.clock import Clock

job_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),   # cpus
        st.floats(min_value=0.5, max_value=50.0),  # runtime
        st.integers(min_value=0, max_value=5),   # priority
    ),
    min_size=1,
    max_size=20,
)


def run_workload(specs):
    clock = Clock()
    cluster = Cluster.homogeneous("c", node_count=2, cpus_per_node=4)
    scheduler = BatchScheduler(cluster, clock)
    jobs = []
    for index, (cpus, runtime, priority) in enumerate(specs):
        job = BatchJob(
            account=f"acct{index % 3}",
            executable="sim",
            cpus=cpus,
            runtime=runtime,
            priority=priority,
        )
        scheduler.submit(job)
        jobs.append(job)
        clock.advance(0.25)
    clock.advance(sum(runtime for _, runtime, _ in specs) + 100.0)
    return scheduler, cluster, jobs, clock


class TestSchedulerProperties:
    @given(specs=job_specs)
    @settings(max_examples=60, deadline=None)
    def test_every_job_eventually_completes(self, specs):
        _, _, jobs, _ = run_workload(specs)
        assert all(job.state is JobState.COMPLETED for job in jobs)

    @given(specs=job_specs)
    @settings(max_examples=60, deadline=None)
    def test_cluster_is_fully_released_at_the_end(self, specs):
        _, cluster, _, _ = run_workload(specs)
        assert cluster.free_cpus == cluster.total_cpus

    @given(specs=job_specs)
    @settings(max_examples=60, deadline=None)
    def test_cpus_never_oversubscribed(self, specs):
        """Check the invariant at every event boundary."""
        clock = Clock()
        cluster = Cluster.homogeneous("c", node_count=2, cpus_per_node=4)
        scheduler = BatchScheduler(cluster, clock)
        for index, (cpus, runtime, priority) in enumerate(specs):
            scheduler.submit(
                BatchJob(
                    account="a",
                    executable="sim",
                    cpus=cpus,
                    runtime=runtime,
                    priority=priority,
                )
            )
            assert 0 <= cluster.used_cpus <= cluster.total_cpus
        while clock.step() is not None:
            assert 0 <= cluster.used_cpus <= cluster.total_cpus
            running = scheduler.jobs(JobState.RUNNING)
            assert sum(j.cpus for j in running) == cluster.used_cpus

    @given(specs=job_specs)
    @settings(max_examples=60, deadline=None)
    def test_accounting_conserves_cpu_seconds(self, specs):
        scheduler, _, jobs, _ = run_workload(specs)
        expected = sum(job.cpus * job.runtime for job in jobs)
        recorded = sum(
            scheduler.usage(acct).cpu_seconds for acct in {j.account for j in jobs}
        )
        assert recorded == pytest.approx(expected, rel=1e-6)

    @given(specs=job_specs)
    @settings(max_examples=40, deadline=None)
    def test_wait_times_are_nonnegative(self, specs):
        _, _, jobs, _ = run_workload(specs)
        for job in jobs:
            assert job.wait_time is not None
            assert job.wait_time >= 0.0
