"""MDS-informed brokering over a federation.

The federation broker peeks at live site state; a real VO tool would
query the information service instead.  This test wires the two
together: sites publish into MDS, a planner picks by the directory's
(possibly stale) view, and placement still succeeds.
"""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.mds import InformationService
from repro.vo.federation import FederatedDeployment

ALICE = "/O=Grid/OU=mdsb/CN=Alice"
VO_POLICY = f"""
{ALICE}:
    &(action=start)(executable=sim)(count<=8)(jobtag!=NULL)
    &(action=information)(jobowner=self)
"""
JOB = "&(executable=sim)(count=8)(jobtag=T)(runtime=100)"


@pytest.fixture
def setup():
    federation = FederatedDeployment(parse_policy(VO_POLICY, name="vo"))
    federation.add_site("small", node_count=2, cpus_per_node=4)
    federation.add_site("large", node_count=8, cpus_per_node=4)
    credential = federation.add_member(ALICE, "alice")
    mds = InformationService(max_age=300.0)
    for site in federation.sites:
        mds.publish_service(site.name, site.service)
    return federation, credential, mds


class TestMDSDrivenPlacement:
    def test_planner_picks_the_emptiest_advertised_site(self, setup):
        federation, credential, mds = setup
        best = mds.find(min_free_cpus=8)[0]
        assert best.name == "large"
        client = GramClient(
            credential, federation.site(best.name).service.gatekeeper
        )
        assert client.submit(JOB).ok

    def test_republishing_tracks_consumption(self, setup):
        federation, credential, mds = setup
        client = GramClient(
            credential, federation.site("large").service.gatekeeper
        )
        for _ in range(3):
            assert client.submit(JOB).ok
        mds.publish_service("large", federation.site("large").service)
        record = mds.lookup("large")
        assert record.free_cpus == 8  # 32 - 3*8

    def test_stale_records_age_out_of_planning(self, setup):
        federation, credential, mds = setup
        federation.run(400.0)  # beyond max_age without republish
        now = federation.site("large").service.clock.now
        assert mds.find(min_free_cpus=1, now=now) == ()
        # Republish and the directory is useful again.
        for site in federation.sites:
            mds.publish_service(site.name, site.service)
        assert len(mds.find(min_free_cpus=1, now=now)) == 2

    def test_directory_reflects_policy_sources(self, setup):
        _, _, mds = setup
        record = mds.lookup("small")
        assert "vo" in record.policy_sources
