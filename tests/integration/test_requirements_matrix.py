"""The four requirements of paper §2, each verified end to end.

1. Combining policies from different sources.
2. Fine-grain control of how resources are used.
3. VO-wide management of jobs and resource allocations.
4. Fine-grain, dynamic enforcement mechanisms.
"""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode, GramJobState
from repro.gram.service import GramService, ServiceConfig

ORG = "/O=Grid/O=Fusion/OU=req"
ALICE = f"{ORG}/CN=Alice Analyst"
ADMIN = f"{ORG}/CN=Andy Admin"


class TestRequirement1CombiningPolicies:
    """Resource-owner and VO policies are both enforced on one request."""

    VO = f"""
    {ALICE}: &(action=start)(executable=TRANSP)(count<=16)
    """
    LOCAL = f"""
    {ORG}: &(action=start)(count<=4)
    """

    def build(self):
        service = GramService(
            ServiceConfig(
                policies=(
                    parse_policy(self.VO, name="vo"),
                    parse_policy(self.LOCAL, name="local"),
                )
            )
        )
        return service, GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)

    def test_intersection_permits(self):
        _, alice = self.build()
        assert alice.submit("&(executable=TRANSP)(count=4)(runtime=5)").ok

    def test_vo_policy_alone_is_not_enough(self):
        """VO allows 16 CPUs but the site allows 4: site limit binds."""
        _, alice = self.build()
        response = alice.submit("&(executable=TRANSP)(count=8)(runtime=5)")
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert any("[local]" in reason for reason in response.reasons)

    def test_site_policy_alone_is_not_enough(self):
        _, alice = self.build()
        response = alice.submit("&(executable=rogue)(count=2)(runtime=5)")
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert any("[vo]" in reason for reason in response.reasons)


class TestRequirement2FineGrainControl:
    """Beyond yes/no access: executables, directories, sizes, queues."""

    VO = f"""
    {ALICE}:
        &(action=start)(executable=TRANSP)(directory=/opt/vo)(count<4)(queue!=reserved)
    """

    def build(self):
        from repro.lrm.queues import JobQueue

        service = GramService(
            ServiceConfig(
                policies=(parse_policy(self.VO, name="vo"),),
                queues=(JobQueue("default"), JobQueue("reserved", priority=9)),
            )
        )
        return GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)

    def test_exact_conforming_request_permitted(self):
        alice = self.build()
        assert alice.submit(
            "&(executable=TRANSP)(directory=/opt/vo)(count=2)(runtime=5)"
        ).ok

    @pytest.mark.parametrize(
        "mutation",
        [
            "&(executable=OTHER)(directory=/opt/vo)(count=2)(runtime=5)",
            "&(executable=TRANSP)(directory=/tmp)(count=2)(runtime=5)",
            "&(executable=TRANSP)(directory=/opt/vo)(count=4)(runtime=5)",
            "&(executable=TRANSP)(directory=/opt/vo)(count=2)(queue=reserved)(runtime=5)",
        ],
        ids=["executable", "directory", "count", "reserved-queue"],
    )
    def test_each_dimension_is_enforced(self, mutation):
        alice = self.build()
        response = alice.submit(mutation)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED


class TestRequirement3VOWideManagement:
    """Jobs are resources: non-initiators manage them under policy,
    scoped by jobtag, excluding jobs outside the VO's domain."""

    VO = f"""
    &{ORG}: (action=start)(jobtag!=NULL)
    {ALICE}: &(action=start)(executable=TRANSP)(count<=4)(jobtag!=NULL)
    {ADMIN}:
        &(action=start)(executable=TRANSP)(count<=4)(jobtag!=NULL)
        &(action=cancel)(jobtag=VO)
        &(action=information)(jobtag=VO)
    """

    def build(self):
        service = GramService(ServiceConfig(policies=(parse_policy(self.VO, name="vo"),)))
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        admin = GramClient(service.add_user(ADMIN, "admin"), service.gatekeeper)
        return service, alice, admin

    def test_admin_manages_vo_tagged_job(self):
        _, alice, admin = self.build()
        submitted = alice.submit(
            "&(executable=TRANSP)(count=2)(jobtag=VO)(runtime=100)"
        )
        assert submitted.ok
        assert admin.status(submitted.contact).ok
        assert admin.cancel(submitted.contact).ok

    def test_jobs_outside_the_vo_domain_are_untouchable(self):
        """A job tagged for a personal allocation is not under VO
        management even though the same user submitted it."""
        _, alice, admin = self.build()
        personal = alice.submit(
            "&(executable=TRANSP)(count=2)(jobtag=PERSONAL)(runtime=100)"
        )
        assert personal.ok
        response = admin.cancel(personal.contact)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_dynamic_job_population(self):
        """Management policy needs no per-job configuration: any new
        job with the right tag is instantly manageable (static methods
        of policy management would not be effective — §2 req 3)."""
        service, alice, admin = self.build()
        contacts = [
            alice.submit(
                "&(executable=TRANSP)(count=1)(jobtag=VO)(runtime=100)"
            ).contact
            for _ in range(5)
        ]
        for contact in contacts:
            assert admin.cancel(contact).ok


class TestRequirement4DynamicEnforcement:
    """Enforcement reacts to the request, not the account."""

    VO = f"""
    {ALICE}:
        &(action=start)(executable=TRANSP)(maxcputime<=50)(count<=2)
        &(action=information)
    """

    def test_two_jobs_same_user_different_limits(self):
        """Same user, same account — but each job is held to the
        limits *it* declared, something per-account static
        configuration cannot express (§4.3 shortcoming 4)."""
        service = GramService(
            ServiceConfig(
                policies=(parse_policy(self.VO, name="vo"),),
                enforcement="sandbox",
            )
        )
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)

        modest = alice.submit(
            "&(executable=TRANSP)(count=1)(maxcputime=10)(runtime=5)"
        )
        greedy = alice.submit(
            "&(executable=TRANSP)(count=1)(maxcputime=10)(runtime=500)"
        )
        assert modest.ok and greedy.ok
        service.run(600.0)
        assert alice.status(modest.contact).state is GramJobState.DONE
        assert alice.status(greedy.contact).state is GramJobState.FAILED
        violations = service.enforcement.violations
        assert len(violations) == 1
        assert violations[0].limit == "cpu-seconds"
