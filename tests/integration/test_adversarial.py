"""Adversarial attempts against the full stack.

Each test is an attack the design must stop: identity spoofing,
computed-attribute spoofing, credential theft/replay, expiry and
revocation races, and contact guessing.
"""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig
from repro.gsi.credentials import CertificateAuthority, Credential
from repro.gsi.keys import KeyPair
from repro.gsi.proxy import delegate

ORG = "/O=Grid/OU=adv"
ALICE = f"{ORG}/CN=Alice"
MALLORY = f"{ORG}/CN=Mallory"

POLICY = f"""
{ALICE}:
    &(action=start)(executable=sim)(count<=4)(jobtag!=NULL)
    &(action=cancel)(jobowner=self)
    &(action=information)(jobowner=self)
{MALLORY}:
    &(action=start)(executable=sim)(count<=1)(jobtag!=NULL)
    &(action=information)(jobowner=self)
"""


@pytest.fixture
def service():
    return GramService(ServiceConfig(policies=(parse_policy(POLICY, name="vo"),)))


@pytest.fixture
def alice(service):
    return GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)


@pytest.fixture
def mallory(service):
    return GramClient(service.add_user(MALLORY, "mallory"), service.gatekeeper)


class TestIdentitySpoofing:
    def test_stolen_certificate_without_key_fails(self, service, alice):
        """Mallory grabs Alice's public certificate but not her key."""
        stolen = Credential(
            certificate=alice.credential.certificate,
            key_pair=KeyPair("mallory-keys"),
        )
        impostor = GramClient(stolen, service.gatekeeper)
        response = impostor.submit("&(executable=sim)(count=1)(jobtag=T)")
        assert response.code is GramErrorCode.AUTHENTICATION_FAILED

    def test_self_issued_certificate_fails(self, service):
        """Mallory runs her own CA and mints an 'Alice' certificate."""
        rogue_ca = CertificateAuthority("/O=Rogue/CN=CA", now=0.0)
        forged = rogue_ca.issue(ALICE, now=0.0)
        impostor = GramClient(forged, service.gatekeeper)
        response = impostor.submit("&(executable=sim)(count=1)(jobtag=T)")
        assert response.code is GramErrorCode.AUTHENTICATION_FAILED

    def test_proxy_of_stolen_certificate_fails(self, service, alice):
        """Even wrapping the stolen cert in a fresh proxy chain fails:
        the proxy is signed by a key that does not match the cert."""
        stolen = Credential(
            certificate=alice.credential.certificate,
            key_pair=KeyPair("mallory-keys"),
        )
        proxy = delegate(stolen, now=service.clock.now)
        impostor = GramClient(proxy, service.gatekeeper)
        response = impostor.submit("&(executable=sim)(count=1)(jobtag=T)")
        assert response.code is GramErrorCode.AUTHENTICATION_FAILED


class TestComputedAttributeSpoofing:
    def test_action_spoof_in_rsl_ignored(self, service, mallory, alice):
        """Mallory writes (action=cancel) into a start request hoping
        the evaluator reads her cancel-free policy differently."""
        response = mallory.submit(
            "&(executable=sim)(count=1)(jobtag=T)(action=cancel)(runtime=10)"
        )
        # Evaluated as a start; her start grant allows it.
        assert response.ok

    def test_jobowner_spoof_cannot_steal_management_rights(
        self, service, alice, mallory
    ):
        """Mallory submits claiming Alice as jobowner, then tries to
        have Alice's self-cancel grant apply to her."""
        job = alice.submit("&(executable=sim)(count=2)(jobtag=T)(runtime=100)")
        assert job.ok
        response = mallory.cancel(job.contact)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_count_smuggling_via_duplicate_relations(self, service, alice):
        """(count=1)(count=400): every supplied value must satisfy the
        policy bound — the small value cannot launder the big one."""
        response = alice.submit(
            "&(executable=sim)(count=1)(count=400)(jobtag=T)"
        )
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED


class TestTemporalAttacks:
    def test_expired_proxy_rejected_later(self, service):
        credential = service.add_user(f"{ORG}/CN=Temp", "temp")
        proxy = delegate(credential, now=service.clock.now, lifetime=50.0)
        client = GramClient(proxy, service.gatekeeper)
        service.run(100.0)
        response = client.submit("&(executable=sim)(count=1)(jobtag=T)")
        assert response.code is GramErrorCode.AUTHENTICATION_FAILED

    def test_revoked_user_locked_out(self, service, alice):
        service.ca.revoke(alice.credential.certificate, "compromised")
        response = alice.submit("&(executable=sim)(count=1)(jobtag=T)")
        assert response.code is GramErrorCode.AUTHENTICATION_FAILED

    def test_revocation_blocks_management_of_existing_jobs(self, service, alice):
        job = alice.submit("&(executable=sim)(count=2)(jobtag=T)(runtime=100)")
        assert job.ok
        service.ca.revoke(alice.credential.certificate)
        response = alice.cancel(job.contact)
        assert response.code is GramErrorCode.AUTHENTICATION_FAILED


class TestContactGuessing:
    def test_guessed_contact_still_requires_authorization(
        self, service, alice, mallory
    ):
        """Knowing a job's contact URL conveys no rights: Mallory can
        address Alice's JMI but the callout still denies her."""
        job = alice.submit("&(executable=sim)(count=2)(jobtag=T)(runtime=100)")
        assert job.ok
        # Mallory 'guesses' the contact (she just reads it here).
        response = mallory.status(job.contact)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_unknown_contact_is_distinguishable_but_unexploitable(
        self, service, mallory
    ):
        from repro.gram.protocol import JobContact

        ghost = JobContact(host="x", job_id="999999")
        response = mallory.cancel(ghost)
        assert response.code is GramErrorCode.NO_SUCH_JOB
