"""The complete §2 story: provider envelope + VO fine-grain policy +
enforcement + reporting, in one deployment.

The resource provider grants the VO a coarse allocation; the VO
divides it among its two user classes; enforcement holds jobs to
their declared budgets; the provider reads a roll-up of what the VO
consumed; VO admins read why members were denied.
"""

import pytest

from repro.core.callout import GRAM_AUTHZ_CALLOUT
from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode, GramJobState
from repro.gram.reporting import authorization_stats, denial_report, vo_usage
from repro.gram.service import GramService, ServiceConfig
from repro.vo.allocation import AllocationMeter, VOAllocation, allocation_callout
from repro.vo.organization import VirtualOrganization

ORG = "/O=Grid/O=Fusion/OU=story"
DEV = f"{ORG}/OU=dev/CN=Dev"
ANALYST = f"{ORG}/OU=analysis/CN=Ana"

VO_POLICY = f"""
&{ORG}: (action=start)(jobtag!=NULL)
{ORG}/OU=dev:
    &(action=start)(directory=/sandbox/dev)(count<2)(maxcputime<=60)
    &(action=information)(jobowner=self)
{ORG}/OU=analysis:
    &(action=start)(executable=TRANSP)(count<=8)(maxcputime<=4000)
    &(action=information)(jobowner=self)
    &(action=cancel)(jobowner=self)
"""


@pytest.fixture
def deployment():
    service = GramService(
        ServiceConfig(
            node_count=4,
            cpus_per_node=4,
            policies=(parse_policy(VO_POLICY, name="nfc"),),
            enforcement="sandbox",
        )
    )
    vo = VirtualOrganization("NFC")
    dev_cred = service.add_user(DEV, "dev")
    ana_cred = service.add_user(ANALYST, "ana")
    vo.add_member(DEV, groups=("dev",))
    vo.add_member(ANALYST, groups=("analysis",))
    account_of = {DEV: "dev", ANALYST: "ana"}

    allocation = VOAllocation(vo=vo, cpu_seconds_budget=5000.0, concurrent_cpu_cap=12)
    meter = AllocationMeter(allocation, service.scheduler, account_of)
    existing = service.registry._callouts[GRAM_AUTHZ_CALLOUT][0][1]
    service.registry.clear(GRAM_AUTHZ_CALLOUT)
    service.registry.register(GRAM_AUTHZ_CALLOUT, allocation_callout(meter))
    service.registry.register(GRAM_AUTHZ_CALLOUT, existing)

    dev = GramClient(dev_cred, service.gatekeeper)
    analyst = GramClient(ana_cred, service.gatekeeper)
    return service, vo, meter, account_of, dev, analyst


class TestTheWholeStory:
    def test_provider_envelope_and_vo_policy_compose(self, deployment):
        service, vo, meter, account_of, dev, analyst = deployment

        # 1. The analyst runs the sanctioned application — permitted.
        big = analyst.submit(
            "&(executable=TRANSP)(count=8)(jobtag=NFC)(maxcputime=4000)(runtime=100)"
        )
        assert big.ok

        # 2. A second big job would exceed the provider's concurrent cap.
        over_cap = analyst.submit(
            "&(executable=TRANSP)(count=8)(jobtag=NFC)(maxcputime=400)(runtime=10)"
        )
        assert over_cap.code is GramErrorCode.AUTHORIZATION_DENIED
        assert any("concurrent-CPU cap" in r for r in over_cap.reasons)

        # 3. The developer fits inside what remains of the cap.
        small = dev.submit(
            "&(executable=gcc)(directory=/sandbox/dev)(count=1)(jobtag=DEBUG)"
            "(maxcputime=30)(runtime=10)"
        )
        assert small.ok

        # 4. VO fine-grain policy still bites inside the envelope.
        rogue = dev.submit(
            "&(executable=gcc)(directory=/tmp)(count=1)(jobtag=DEBUG)(maxcputime=30)"
        )
        assert rogue.code is GramErrorCode.AUTHORIZATION_DENIED

        # 5. Enforcement kills a job that overruns its declaration.
        liar = dev.submit(
            "&(executable=gcc)(directory=/sandbox/dev)(count=1)(jobtag=DEBUG)"
            "(maxcputime=10)(runtime=500)"
        )
        assert liar.ok
        service.run(600.0)
        assert dev.status(liar.contact).state is GramJobState.FAILED

        # 6. The provider reads the VO roll-up.
        report = vo_usage(vo, service.scheduler, account_of)
        assert report.jobs_submitted == 3
        assert report.cpu_seconds > 0
        assert report.cpu_seconds <= 5000.0  # inside the budget

        # 7. The VO admin reads the denial report.
        denials = denial_report(service.pep)
        assert denials  # both denied requests are visible
        stats = authorization_stats(service.pep)
        assert stats.denials >= 2
        assert stats.failures == 0

    def test_budget_drains_across_the_vo(self, deployment):
        service, vo, meter, account_of, dev, analyst = deployment
        # Burn most of the budget with one long analyst run (staying
        # inside its own declared maxcputime so the sandbox lets it
        # finish: 8 CPUs x 450 s = 3600 cpu-s of the 5000 budget).
        burner = analyst.submit(
            "&(executable=TRANSP)(count=8)(jobtag=NFC)(maxcputime=4000)(runtime=450)"
        )
        assert burner.ok
        service.run(470.0)
        assert meter.remaining_budget() == pytest.approx(1400.0)

        # Even the developer's tiny job is now blocked once the
        # budget fully drains (8 CPUs x 175 s = the remaining 1400).
        top_up = analyst.submit(
            "&(executable=TRANSP)(count=8)(jobtag=NFC)(maxcputime=1400)(runtime=175)"
        )
        assert top_up.ok
        service.run(200.0)
        assert meter.remaining_budget() == 0.0
        blocked = dev.submit(
            "&(executable=gcc)(directory=/sandbox/dev)(count=1)(jobtag=DEBUG)"
            "(maxcputime=10)(runtime=5)"
        )
        assert blocked.code is GramErrorCode.AUTHORIZATION_DENIED
        assert any("exhausted" in r for r in blocked.reasons)
