"""Management-sequence edge cases across the full stack.

The §2 preemption story involves sequences of management actions
(suspend → start urgent → resume; cancel-after-suspend; double
suspend) whose interactions must stay consistent across the JM, the
scheduler and enforcement.
"""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode, GramJobState
from repro.gram.service import GramService, ServiceConfig

ADMIN = "/O=Grid/OU=pre/CN=Admin"
USER = "/O=Grid/OU=pre/CN=User"

POLICY = f"""
&/O=Grid/OU=pre: (action=start)(jobtag!=NULL)
{USER}:
    &(action=start)(executable=sim)(count<=16)(jobtag!=NULL)
    &(action=information)(jobowner=self)
{ADMIN}:
    &(action=start)(executable=sim)(count<=16)(jobtag!=NULL)
    &(action=suspend)(jobtag=VO)
    &(action=resume)(jobtag=VO)
    &(action=cancel)(jobtag=VO)
    &(action=signal)(jobtag=VO)
    &(action=information)(jobtag!=NULL)
"""

LONG_JOB = "&(executable=sim)(count=16)(jobtag=VO)(runtime=1000)"


@pytest.fixture
def stack():
    service = GramService(
        ServiceConfig(
            node_count=4,
            cpus_per_node=4,
            policies=(parse_policy(POLICY, name="vo"),),
        )
    )
    user = GramClient(service.add_user(USER, "user"), service.gatekeeper)
    admin = GramClient(service.add_user(ADMIN, "admin"), service.gatekeeper)
    return service, user, admin


class TestSuspendResumeSequences:
    def test_double_suspend_is_an_error_not_a_crash(self, stack):
        service, user, admin = stack
        job = user.submit(LONG_JOB)
        assert admin.suspend(job.contact).ok
        second = admin.suspend(job.contact)
        assert second.code is GramErrorCode.NO_SUCH_JOB  # LRM refuses
        # The job is still intact and resumable.
        assert admin.resume(job.contact).ok

    def test_resume_without_suspend_is_an_error(self, stack):
        service, user, admin = stack
        job = user.submit(LONG_JOB)
        response = admin.resume(job.contact)
        assert response.code is GramErrorCode.NO_SUCH_JOB

    def test_cancel_while_suspended(self, stack):
        service, user, admin = stack
        job = user.submit(LONG_JOB)
        admin.suspend(job.contact)
        cancelled = admin.cancel(job.contact)
        assert cancelled.ok
        assert cancelled.state is GramJobState.FAILED
        assert service.cluster.free_cpus == service.cluster.total_cpus

    def test_suspend_resume_preserves_progress(self, stack):
        service, user, admin = stack
        job = user.submit(
            "&(executable=sim)(count=16)(jobtag=VO)(runtime=100)"
        )
        service.run(40.0)
        admin.suspend(job.contact)
        service.run(500.0)
        admin.resume(job.contact)
        service.run(59.0)
        assert user.status(job.contact).state is GramJobState.ACTIVE
        service.run(2.0)
        assert user.status(job.contact).state is GramJobState.DONE

    def test_full_preemption_story(self, stack):
        service, user, admin = stack
        long_job = user.submit(LONG_JOB)
        urgent = admin.submit(
            "&(executable=sim)(count=16)(jobtag=VO)(runtime=30)"
        )
        assert urgent.ok
        assert urgent.state is GramJobState.PENDING  # cluster full

        assert admin.suspend(long_job.contact).ok
        # The urgent job starts the moment CPUs free up.
        assert admin.status(urgent.contact).state is GramJobState.ACTIVE
        service.run(30.0)
        assert admin.status(urgent.contact).state is GramJobState.DONE
        assert admin.resume(long_job.contact).ok
        assert user.status(long_job.contact).state is GramJobState.ACTIVE


class TestSignalSequences:
    def test_priority_signal_reorders_waiting_jobs(self, stack):
        service, user, admin = stack
        blocker = user.submit(LONG_JOB)
        first = user.submit("&(executable=sim)(count=16)(jobtag=VO)(runtime=10)")
        second = user.submit("&(executable=sim)(count=16)(jobtag=VO)(runtime=10)")
        assert first.state is GramJobState.PENDING
        assert second.state is GramJobState.PENDING
        assert admin.signal(second.contact, priority=50).ok
        admin.cancel(blocker.contact)
        # The boosted job starts first.
        assert admin.status(second.contact).state is GramJobState.ACTIVE
        assert admin.status(first.contact).state is GramJobState.PENDING

    def test_signal_terminal_job_is_graceful(self, stack):
        service, user, admin = stack
        job = user.submit("&(executable=sim)(count=1)(jobtag=VO)(runtime=5)")
        service.run(10.0)
        response = admin.signal(job.contact, priority=9)
        assert response.code is GramErrorCode.NO_SUCH_JOB
