"""The §6.2 Job Manager trust-model limitation, demonstrated.

"A user managing a job may cancel a job started by somebody else ...
but they may not apply their higher resource rights to, for example,
raise the job's priority" — because the JMI runs with the initiator's
local credential, not the manager's.
"""

import pytest

from repro.accounts.local import AccountLimits
from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.service import GramService, ServiceConfig

USER = "/O=Grid/OU=trust/CN=Lowly User"
ADMIN = "/O=Grid/OU=trust/CN=Mighty Admin"

POLICY = f"""
{USER}:
    &(action=start)(executable=sim)(jobtag!=NULL)
    &(action=information)(jobowner=self)
{ADMIN}:
    &(action=cancel)(jobtag=VO)
    &(action=signal)(jobtag=VO)
    &(action=information)(jobtag=VO)
"""


@pytest.fixture
def stack():
    service = GramService(
        ServiceConfig(policies=(parse_policy(POLICY, name="vo"),))
    )
    user_cred = service.add_user(USER, "lowly")
    admin_cred = service.add_user(ADMIN, "mighty")
    # The initiator's account can only hold priority 5; the admin's
    # own account could go to 100 — but the JMI doesn't run as them.
    service.accounts.get("lowly").limits = AccountLimits(max_priority=5)
    service.accounts.get("mighty").limits = AccountLimits(max_priority=100)
    user = GramClient(user_cred, service.gatekeeper)
    admin = GramClient(admin_cred, service.gatekeeper)
    return service, user, admin


class TestTrustLimitation:
    def test_authorized_manager_can_cancel(self, stack):
        service, user, admin = stack
        job = user.submit("&(executable=sim)(jobtag=VO)(runtime=100)")
        assert admin.cancel(job.contact).ok

    def test_priority_clamped_to_initiators_ceiling(self, stack):
        """The signal is *authorized* (policy grants it) but its
        effect is capped by the account the JMI runs under."""
        service, user, admin = stack
        job = user.submit("&(executable=sim)(jobtag=VO)(runtime=100)")
        response = admin.signal(job.contact, priority=50)
        assert response.ok  # authorization succeeded
        lrm_job = service.scheduler.job(job.contact.job_id)
        assert lrm_job.priority == 5  # ... but the effect was clamped

    def test_priority_below_ceiling_applies_fully(self, stack):
        service, user, admin = stack
        job = user.submit("&(executable=sim)(jobtag=VO)(runtime=100)")
        admin.signal(job.contact, priority=3)
        assert service.scheduler.job(job.contact.job_id).priority == 3

    def test_unlimited_account_has_no_clamp(self, stack):
        service, user, admin = stack
        service.accounts.get("lowly").limits = AccountLimits()  # no ceiling
        job = user.submit("&(executable=sim)(jobtag=VO)(runtime=100)")
        admin.signal(job.contact, priority=50)
        assert service.scheduler.job(job.contact.job_id).priority == 50
