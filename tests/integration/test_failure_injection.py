"""Failure injection across the authorization path.

The system must fail *closed* and report authorization-system failures
distinctly from policy denials (paper §5.2 error extension).
"""


from repro.core.builtin_callouts import broken_callout
from repro.core.callout import GRAM_AUTHZ_CALLOUT
from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig

ALICE = "/O=Grid/OU=fi/CN=Alice"
POLICY = f"{ALICE}: &(action=start)(executable=sim) &(action=information) &(action=cancel)(jobowner=self)"
GOOD = "&(executable=sim)(count=1)(runtime=50)"


def build(policies=None):
    service = GramService(
        ServiceConfig(policies=policies or (parse_policy(POLICY, name="vo"),))
    )
    client = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
    return service, client


class TestBrokenCallouts:
    def test_crashing_callout_fails_closed_on_start(self):
        service, alice = build()
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(GRAM_AUTHZ_CALLOUT, broken_callout)
        response = alice.submit(GOOD)
        assert response.code is GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE
        assert service.gatekeeper.active_job_managers == 0

    def test_crashing_callout_fails_closed_on_management(self):
        service, alice = build()
        submitted = alice.submit(GOOD)
        assert submitted.ok
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(GRAM_AUTHZ_CALLOUT, broken_callout)
        response = alice.cancel(submitted.contact)
        assert response.code is GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE
        # The job keeps running: a broken authz system must not let
        # anyone (even the owner) act, but must not kill work either.
        service.run(10.0)
        assert service.scheduler.job(submitted.contact.job_id).state.value == "running"

    def test_unconfigured_callout_fails_closed(self):
        service, alice = build()
        service.registry.clear()
        response = alice.submit(GOOD)
        assert response.code is GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE

    def test_failure_and_denial_use_distinct_codes(self):
        service, alice = build()
        denied = alice.submit("&(executable=rogue)(count=1)")
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(GRAM_AUTHZ_CALLOUT, broken_callout)
        failed = alice.submit(GOOD)
        assert denied.code is GramErrorCode.AUTHORIZATION_DENIED
        assert failed.code is GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE
        assert denied.code is not failed.code


class TestBrokenPolicySources:
    def test_one_crashing_source_blocks_requests(self):
        class Exploder:
            source = "exploder"

            def evaluate(self, request):
                raise OSError("policy file unreadable")

        from repro.core.combination import CombinedEvaluator
        from repro.core.evaluator import PolicyEvaluator

        service, alice = build()
        combined = CombinedEvaluator(
            [PolicyEvaluator(parse_policy(POLICY, name="vo")), Exploder()]
        )
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(
            GRAM_AUTHZ_CALLOUT, lambda request: combined.evaluate(request)
        )
        response = alice.submit(GOOD)
        assert response.code is GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE


class TestAuditTrail:
    def test_failures_land_in_the_audit_log(self):
        service, alice = build()
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(GRAM_AUTHZ_CALLOUT, broken_callout)
        alice.submit(GOOD)
        assert service.pep.failures == 1
        record = service.pep.audit_log[-1]
        assert record.failure
        assert not record.permitted

    def test_denials_land_in_the_audit_log_with_reasons(self):
        service, alice = build()
        alice.submit("&(executable=rogue)(count=1)")
        record = service.pep.audit_log[-1]
        assert record.decision is not None
        assert record.decision.is_deny
