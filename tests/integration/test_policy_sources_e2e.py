"""Pluggable policy sources through the real callout API (paper §5).

The prototype demonstrated the same policies served by plain files,
Akenti and CAS.  Here all three source types drive a live GRAM
resource through the callout registry, and agree.
"""


from repro.core.callout import GRAM_AUTHZ_CALLOUT
from repro.core.decision import Decision
from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig
from repro.gsi.keys import KeyPair
from repro.vo.akenti import akenti_sources_from_policy
from repro.vo.cas import CASPolicySource, CASServer, attach_cas_policy
from repro.vo.organization import VirtualOrganization
from repro.workloads.scenarios import FIGURE3_POLICY_TEXT

from tests.conftest import BO, KATE

GOOD = "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(runtime=50)"
BAD = "&(executable=rogue)(directory=/sandbox/test)(jobtag=ADS)(count=2)(runtime=50)"


class TestAkentiBackedResource:
    def build(self):
        policy = parse_policy(FIGURE3_POLICY_TEXT, name="vo")
        stakeholder_key = KeyPair("vo-stakeholder")
        engine = akenti_sources_from_policy(
            policy, resource="cluster", stakeholder="VO", stakeholder_key=stakeholder_key
        )
        service = GramService(ServiceConfig())
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(
            GRAM_AUTHZ_CALLOUT, lambda request: engine.decide(request), label="akenti"
        )
        return service

    def test_akenti_permits_conforming_start(self):
        service = self.build()
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        assert bo.submit(GOOD).ok

    def test_akenti_denies_rogue_start(self):
        service = self.build()
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        assert bo.submit(BAD).code is GramErrorCode.AUTHORIZATION_DENIED

    def test_akenti_authorizes_cross_user_cancel(self):
        service = self.build()
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        kate = GramClient(service.add_user(KATE, "keahey"), service.gatekeeper)
        submitted = bo.submit(
            "&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)"
            "(count=2)(runtime=50)"
        )
        assert submitted.ok
        assert kate.cancel(submitted.contact).ok


class TestCASBackedResource:
    def build(self):
        service = GramService(ServiceConfig())
        vo = VirtualOrganization("NFC")
        vo.add_member(BO)
        vo.add_member(KATE)
        cas_credential = service.ca.issue("/O=Grid/CN=NFC CAS", now=0.0)
        cas = CASServer(vo, cas_credential, parse_policy(FIGURE3_POLICY_TEXT, name="vo"))
        source = CASPolicySource(cas_credential.key_pair.public)

        # Resource side: per-request credential lookup.  The callout
        # closure captures the "current credential" the way the JM
        # would pass it through the callout arguments.
        holder = {}

        def cas_callout(request):
            credential = holder.get("credential")
            if credential is None:
                return Decision.indeterminate("no credential bound")
            return source.evaluate(request, credential, now=service.clock.now)

        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(GRAM_AUTHZ_CALLOUT, cas_callout, label="cas")
        return service, cas, holder

    def test_cas_credential_carries_enforceable_policy(self):
        service, cas, holder = self.build()
        bo_identity = service.add_user(BO, "boliu")
        signed = cas.issue(bo_identity, now=service.clock.now)
        bo_proxy = attach_cas_policy(bo_identity, signed, now=service.clock.now)
        holder["credential"] = bo_proxy

        bo = GramClient(bo_proxy, service.gatekeeper)
        assert bo.submit(GOOD).ok
        assert bo.submit(BAD).code is GramErrorCode.AUTHORIZATION_DENIED

    def test_plain_credential_without_cas_policy_fails(self):
        service, _, holder = self.build()
        bo_identity = service.add_user(BO, "boliu")
        holder["credential"] = bo_identity
        bo = GramClient(bo_identity, service.gatekeeper)
        response = bo.submit(GOOD)
        # NOT_APPLICABLE from the only source -> denied, not a crash.
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED


class TestSourceAgreement:
    def test_file_akenti_and_cas_agree_on_a_request_matrix(self):
        """The generality claim: identical decisions from all three
        representations of the Figure 3 policy."""
        from repro.core.evaluator import PolicyEvaluator
        from repro.core.request import AuthorizationRequest
        from repro.rsl.parser import parse_specification
        from repro.gsi.credentials import CertificateAuthority

        policy = parse_policy(FIGURE3_POLICY_TEXT, name="vo")
        file_pdp = PolicyEvaluator(policy)
        akenti = akenti_sources_from_policy(
            policy, "cluster", "VO", KeyPair("stake")
        )

        ca = CertificateAuthority("/O=Grid/CN=CA", now=0.0)
        vo = VirtualOrganization("NFC")
        vo.add_member(BO)
        vo.add_member(KATE)
        cas_credential = ca.issue("/O=Grid/CN=CAS", now=0.0)
        cas = CASServer(vo, cas_credential, policy)
        cas_source = CASPolicySource(cas_credential.key_pair.public)
        credentials = {
            who: attach_cas_policy(
                ca.issue(who, now=0.0), cas.issue(ca.issue(who, now=0.0), now=0.0), now=0.0
            )
            for who in (BO, KATE)
        }

        probes = []
        for who in (BO, KATE):
            for rsl in (
                "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)",
                "&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)",
                "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=1)",
                "&(executable=rogue)(count=2)",
            ):
                probes.append(
                    AuthorizationRequest.start(who, parse_specification(rsl))
                )
        probes.append(
            AuthorizationRequest.manage(
                KATE,
                "cancel",
                parse_specification("&(executable=test2)(jobtag=NFC)"),
                jobowner=BO,
            )
        )

        for probe in probes:
            file_verdict = file_pdp.evaluate(probe).is_permit
            akenti_verdict = akenti.decide(probe).is_permit
            cas_verdict = cas_source.evaluate(
                probe, credentials[str(probe.requester)], now=1.0
            ).is_permit
            assert file_verdict == akenti_verdict == cas_verdict, str(probe)
