"""Stock GT2 behaviour (LEGACY mode) vs. the paper's extension.

These tests pin down exactly the shortcomings of §4.3 that the
extension removes: identity-only start authorization and the static
initiator-only management rule.
"""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.jobmanager import AuthorizationMode
from repro.gram.protocol import GramErrorCode, GramJobState
from repro.gram.service import GramService, ServiceConfig

from tests.conftest import BO, KATE

ANY_JOB = "&(executable=anything)(count=4)(runtime=100)"


@pytest.fixture
def legacy():
    return GramService(ServiceConfig(mode=AuthorizationMode.LEGACY))


@pytest.fixture
def legacy_bo(legacy):
    return GramClient(legacy.add_user(BO, "boliu"), legacy.gatekeeper)


@pytest.fixture
def legacy_kate(legacy):
    return GramClient(legacy.add_user(KATE, "keahey"), legacy.gatekeeper)


class TestLegacyStartAuthorization:
    def test_any_mapped_user_runs_anything(self, legacy_bo):
        """§4.3 shortcoming 1: start authorization is account-existence."""
        response = legacy_bo.submit(ANY_JOB)
        assert response.ok

    def test_unmapped_user_still_rejected(self, legacy):
        eve_credential = legacy.ca.issue("/O=Other/CN=Eve", now=0.0)
        response = GramClient(eve_credential, legacy.gatekeeper).submit(ANY_JOB)
        assert response.code is GramErrorCode.GRIDMAP_LOOKUP_FAILED


class TestLegacyManagementRule:
    def test_initiator_manages_own_job(self, legacy, legacy_bo):
        submitted = legacy_bo.submit(ANY_JOB)
        assert legacy_bo.status(submitted.contact).ok
        assert legacy_bo.cancel(submitted.contact).ok

    def test_non_initiator_blocked_with_not_job_owner(
        self, legacy, legacy_bo, legacy_kate
    ):
        """§4.3 shortcoming 2: only the initiator may manage — no VO
        policy can change that in stock GT2."""
        submitted = legacy_bo.submit(ANY_JOB)
        response = legacy_kate.cancel(submitted.contact)
        assert response.code is GramErrorCode.NOT_JOB_OWNER
        assert response.job_owner == BO

    def test_extension_removes_the_limitation(self):
        """The same cross-user cancel succeeds in EXTENDED mode under a
        jobtag policy — the before/after of the paper."""
        policy = parse_policy(
            f"""
            {BO}: &(action=start)(jobtag!=NULL)
            {KATE}: &(action=cancel)(jobtag=NFC)
            """,
            name="vo",
        )
        service = GramService(
            ServiceConfig(mode=AuthorizationMode.EXTENDED, policies=(policy,))
        )
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        kate = GramClient(service.add_user(KATE, "keahey"), service.gatekeeper)
        submitted = bo.submit("&(executable=sim)(jobtag=NFC)(count=1)(runtime=50)")
        assert submitted.ok
        response = kate.cancel(submitted.contact)
        assert response.ok
        assert response.state is GramJobState.FAILED


class TestModeConfigDifferences:
    def test_legacy_never_invokes_policy_callout(self, legacy, legacy_bo):
        legacy_bo.submit(ANY_JOB)
        # The registry holds the initiator rule; the JM start path in
        # LEGACY mode must not consult the PEP at all.
        assert legacy.pep.decisions_made == 0

    def test_extended_invokes_callout_per_action(self):
        policy = parse_policy(
            f"{BO}: &(action=start)(jobtag!=NULL) &(action=information)",
            name="vo",
        )
        service = GramService(ServiceConfig(policies=(policy,)))
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        submitted = bo.submit("&(executable=sim)(jobtag=T)(runtime=10)")
        bo.status(submitted.contact)
        bo.status(submitted.contact)
        assert service.pep.decisions_made == 3  # 1 start + 2 information
