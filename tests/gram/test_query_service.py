"""Gatekeeper admission fast-deny from the reverse authorization index.

With ``ServiceConfig(query_fast_deny=True)`` the Gatekeeper consults an
epoch-guarded :class:`~repro.core.query.QueryEngine` right after the
grid-mapfile lookup: a *guaranteed* deny (unknown subject, or a subject
whose statements can never reach the start action) is answered without
running the authorization pipeline at all.  Anything uncertain falls
through to the full pipeline unchanged.
"""

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.dispatch import ShardedGramService
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig

ORG = "/O=Grid/OU=query.example.org"
ALICE = f"{ORG}/CN=Alice"
CAROL = f"{ORG}/CN=Carol"
MALLORY = f"{ORG}/CN=Mallory"

POLICY = f"""
{ALICE}:
    &(action=start)(executable=sim)(count<4)
    &(action=cancel)(jobowner=self)
{CAROL}:
    &(action=cancel)(jobowner=self)
"""

RSL = "&(executable=sim)(count=1)(runtime=10)"
ROGUE = "&(executable=rogue)(count=1)(runtime=10)"


def build_service(**overrides):
    defaults = dict(
        policies=(parse_policy(POLICY, name="vo"),),
        query_fast_deny=True,
    )
    defaults.update(overrides)
    return GramService(ServiceConfig(**defaults))


def client_for(service, identity, account):
    return GramClient(service.add_user(identity, account), service.gatekeeper)


class TestFastDeny:
    def test_unknown_subject_is_fast_denied(self):
        service = build_service()
        client = client_for(service, MALLORY, "mallory")
        response = client.submit(RSL)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert "fast deny" in response.message
        assert "subject" in response.message

    def test_action_level_fast_deny(self):
        # Carol holds only a cancel grant: start is statically
        # unreachable, so the pipeline never runs.
        service = build_service()
        client = client_for(service, CAROL, "carol")
        response = client.submit(RSL)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert "fast deny" in response.message
        assert "action" in response.message

    def test_fast_deny_metrics(self):
        service = build_service()
        client = client_for(service, MALLORY, "mallory")
        client.submit(RSL)
        registry = service.telemetry.registry
        assert (
            registry.value(
                "query_prefilter_checks_total", consumer="gatekeeper"
            )
            >= 1
        )
        assert (
            registry.value(
                "query_prefilter_denied_total",
                consumer="gatekeeper",
                level="subject",
            )
            == 1
        )

    def test_uncertain_requests_fall_through_to_the_pipeline(self):
        # Alice *can* start jobs, so the index stays out of the way —
        # the rogue executable is denied by the forward pipeline.
        service = build_service()
        client = client_for(service, ALICE, "alice")
        denied = client.submit(ROGUE)
        assert denied.code is GramErrorCode.AUTHORIZATION_DENIED
        assert "fast deny" not in denied.message
        assert client.submit(RSL).ok

    def test_disabled_by_default(self):
        service = GramService(
            ServiceConfig(policies=(parse_policy(POLICY, name="vo"),))
        )
        assert service.query_engine is None
        client = client_for(service, MALLORY, "mallory")
        response = client.submit(RSL)
        # Same outcome, decided by the pipeline instead.
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert "fast deny" not in response.message


class TestEpochGuard:
    def test_policy_replacement_lifts_a_stale_deny(self):
        service = build_service()
        client = client_for(service, MALLORY, "mallory")
        assert "fast deny" in client.submit(RSL).message

        # Grant Mallory start rights; the epoch bump must rebuild the
        # index before the next answer — no stale denies.
        amended = parse_policy(
            POLICY + f"\n{MALLORY}:\n    &(action=start)(executable=sim)\n",
            name="vo",
        )
        service.combined_evaluator.evaluators[0].replace_policy(amended)
        assert client.submit(RSL).ok

    def test_rebuilds_are_counted(self):
        service = build_service()
        client = client_for(service, ALICE, "alice")
        client.submit(RSL)
        registry = service.telemetry.registry
        first = registry.value(
            "query_index_rebuilds_total", consumer="gatekeeper"
        )
        assert first == 1
        service.combined_evaluator.evaluators[0].replace_policy(
            parse_policy(POLICY, name="vo")
        )
        client.submit(RSL)
        assert (
            registry.value("query_index_rebuilds_total", consumer="gatekeeper")
            == first + 1
        )


class TestShardedFastDeny:
    def build(self, shards=4):
        return ShardedGramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),),
                query_fast_deny=True,
                shards=shards,
                dispatch="inline",
            )
        )

    def test_fast_deny_through_the_sharded_gatekeeper(self):
        service = self.build()
        client = GramClient(
            service.add_user(MALLORY, "mallory"), service.gatekeeper
        )
        response = client.submit(RSL)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert "fast deny" in response.message
        assert (
            service.merged_value(
                "query_prefilter_denied_total",
                consumer="gatekeeper",
                level="subject",
            )
            == 1
        )

    def test_broadcast_bump_rebuilds_every_shard_index(self):
        service = self.build(shards=3)
        # Touch every shard's engine once so each builds its index.
        for i, account in enumerate(("m0", "m1", "m2")):
            identity = f"{ORG}/CN=Shardprobe {i}"
            GramClient(
                service.add_user(identity, account), service.gatekeeper
            ).submit(RSL)
        before = service.merged_value(
            "query_index_rebuilds_total", consumer="gatekeeper"
        )
        service.bump_policy_epoch()
        for i, account in enumerate(("m0", "m1", "m2")):
            identity = f"{ORG}/CN=Shardprobe {i}"
            GramClient(
                service.add_user(identity, account), service.gatekeeper
            ).submit(RSL)
        after = service.merged_value(
            "query_index_rebuilds_total", consumer="gatekeeper"
        )
        # Every shard that answered again rebuilt exactly once.
        assert after > before
