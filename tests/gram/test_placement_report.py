"""Edge cases for ``ShardedGramService.placement_report``.

The report feeds ``shard_key`` placement tuning, so its corner cases
matter: a service with no traffic must not divide by zero, a one-shard
service must read as perfectly balanced, and a pinned-VO ``shard_key``
must surface as skew — with the DN-routing memo still taking effect.
"""

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.dispatch import ShardRouter, ShardedGramService
from repro.gram.service import ServiceConfig

ORG = "/O=Grid/OU=placement.example.org"

POLICY = f"""
{ORG}:
    &(action=start)(executable=sim)
    &(action=cancel)(jobowner=self)
"""

RSL = "&(executable=sim)(count=1)(runtime=5)"


def build(shards, **overrides):
    defaults = dict(
        policies=(parse_policy(POLICY, name="vo"),),
        shards=shards,
        dispatch="inline",
    )
    defaults.update(overrides)
    return ShardedGramService(ServiceConfig(**defaults))


def submit_as(service, index):
    identity = f"{ORG}/CN=User {index:04d}"
    client = GramClient(
        service.add_user(identity, f"acct{index}"), service.gatekeeper
    )
    return client.submit(RSL)


class TestEmptyService:
    def test_no_traffic_reports_zero_skew(self):
        report = build(shards=4).placement_report()
        assert report["total_routed"] == 0
        assert report["mean_routed"] == 0.0
        assert report["peak_routed"] == 0
        assert report["skew"] == 0.0
        assert len(report["shards"]) == 4
        for row in report["shards"]:
            assert row["routed_total"] == 0
            assert row["served_submissions"] == 0


class TestSingleShard:
    def test_one_shard_is_always_balanced(self):
        service = build(shards=1)
        for index in range(5):
            assert submit_as(service, index).ok
        report = service.placement_report()
        assert len(report["shards"]) == 1
        assert report["hot_shard"] == 0
        assert report["total_routed"] == 5
        # peak == mean by construction.
        assert report["skew"] == 1.0


class TestPinnedSkew:
    def test_all_load_on_one_shard_maxes_the_skew(self):
        # Pin the whole org to a single constant key: every DN hashes
        # identically, so one shard carries everything.
        service = build(shards=4, shard_key=lambda identity: "the-vo")
        for index in range(8):
            assert submit_as(service, index).ok
        report = service.placement_report()
        assert report["total_routed"] == 8
        assert report["peak_routed"] == 8
        # peak/mean == shard count when one shard holds it all.
        assert report["skew"] == 4.0
        hot = report["hot_shard"]
        assert report["shards"][hot]["served_submissions"] == 8
        for index, row in enumerate(report["shards"]):
            if index != hot:
                assert row["routed_total"] == 0

    def test_pinned_key_and_routing_memo_compose(self):
        service = build(shards=4, shard_key=lambda identity: "the-vo")
        router = service.router
        client = GramClient(
            service.add_user(f"{ORG}/CN=Pinned", "pinned"),
            service.gatekeeper,
        )
        assert client.submit(RSL).ok
        first_misses = router.memo_misses
        assert first_misses >= 1
        for _ in range(3):
            client.submit(RSL)
        # Same DN again: routed from the memo, not re-hashed.
        assert router.memo_misses == first_misses
        assert router.memo_hits >= 3
        # The memo caches the *DN's* resolution, which already went
        # through the pinned key function.
        assert router.shard_for(f"{ORG}/CN=Pinned") == router.shard_for(
            f"{ORG}/CN=Other"
        )


class TestRouterMemo:
    def test_single_shard_short_circuit_skips_the_memo(self):
        router = ShardRouter(1)
        assert router.shard_for("/O=Grid/CN=Anyone") == 0
        assert router.memo_hits == 0
        assert router.memo_misses == 0

    def test_memo_clears_at_the_cap(self):
        router = ShardRouter(4)
        router.MEMO_CAP = 8
        for index in range(8):
            router.shard_for(f"/O=Grid/CN=User {index}")
        assert len(router._memo) == 8
        # The 9th distinct DN trips the cap: clear, then re-seed.
        router.shard_for("/O=Grid/CN=User 8")
        assert len(router._memo) == 1
        # Determinism is unaffected by the reset.
        assert router.shard_for("/O=Grid/CN=User 0") == ShardRouter(
            4
        ).shard_for("/O=Grid/CN=User 0")
