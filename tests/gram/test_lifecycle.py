"""JMI reaping, the completed-job store, and admission control."""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.jobmanager import AuthorizationMode
from repro.gram.lifecycle import CompletedJobStore
from repro.gram.protocol import GramErrorCode, GramJobState
from repro.gram.service import GramService, ServiceConfig
from repro.gsi.credentials import CertificateAuthority
from repro.lrm.errors import UnknownJobError

OWNER = "/O=Grid/OU=lifecycle/CN=Owner"
OTHER = "/O=Grid/OU=lifecycle/CN=Other"
ADMIN = "/O=Grid/OU=lifecycle/CN=Admin"

RSL = "&(executable=sim)(count=1)(runtime=10)(jobtag=NFC)"

#: Owner may start/manage their jobs; the admin may query any NFC job.
POLICY = f"""
{OWNER}:
    &(action=start)(executable=sim)(count<4)
    &(action=cancel)(jobowner=self)
    &(action=information)(jobowner=self)
{ADMIN}:
    &(action=information)(jobtag=NFC)
"""


def build(**overrides):
    defaults = dict(host="lc.example.org", node_count=4, cpus_per_node=4)
    defaults.update(overrides)
    return GramService(ServiceConfig(**defaults))


class TestReaping:
    def test_terminal_jmi_is_reaped_into_completed_store(self):
        service = build()
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        response = client.submit(RSL)
        assert response.ok
        assert service.gatekeeper.active_job_managers == 1
        service.run(10.0)
        assert service.gatekeeper.active_job_managers == 0
        assert service.gatekeeper.completed_jobs == 1
        assert service.gatekeeper.reaped == 1
        record = service.gatekeeper.completed.get(response.contact.job_id)
        assert record is not None
        assert record.state is GramJobState.DONE
        assert str(record.owner) == OWNER

    def test_reaping_forgets_the_lrm_record_too(self):
        service = build()
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        response = client.submit(RSL)
        service.run(10.0)
        with pytest.raises(UnknownJobError):
            service.scheduler.job(response.contact.job_id)
        assert len(service.scheduler.jobs()) == 0

    def test_cancelled_job_is_reaped_as_failed(self):
        service = build()
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        response = client.submit(RSL)
        assert client.cancel(response.contact).ok
        record = service.gatekeeper.completed.get(response.contact.job_id)
        assert record is not None
        assert record.state is GramJobState.FAILED
        assert "cancel" in record.exit_reason

    def test_reaping_can_be_disabled(self):
        service = build(reap_jmis=False)
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        response = client.submit(RSL)
        service.run(10.0)
        # GT2 stock behaviour: the JMI lives on and still answers.
        assert service.gatekeeper.active_job_managers == 1
        assert service.gatekeeper.completed_jobs == 0
        status = client.status(response.contact)
        assert status.ok and status.state is GramJobState.DONE

    def test_retention_bounds_the_store(self):
        service = build(completed_retention=3)
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        contacts = []
        for _ in range(5):
            response = client.submit(RSL)
            assert response.ok
            service.run(10.0)
            contacts.append(response.contact)
        assert service.gatekeeper.completed_jobs == 3
        assert service.gatekeeper.completed.evicted == 2
        # Oldest evicted, newest retained.
        assert service.gatekeeper.completed.get(contacts[0].job_id) is None
        assert service.gatekeeper.completed.get(contacts[-1].job_id) is not None
        evicted = client.status(contacts[0])
        assert evicted.code is GramErrorCode.NO_SUCH_JOB


class TestPostReapManagement:
    def make(self, mode=AuthorizationMode.EXTENDED, policies=None):
        service = build(
            mode=mode,
            policies=(
                tuple(policies)
                if policies is not None
                else (parse_policy(POLICY, name="vo"),)
            )
            if mode is AuthorizationMode.EXTENDED
            else (),
        )
        owner = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        other = GramClient(service.add_user(OTHER, "other"), service.gatekeeper)
        admin = GramClient(service.add_user(ADMIN, "admin"), service.gatekeeper)
        response = owner.submit(RSL)
        assert response.ok
        service.run(10.0)
        assert service.gatekeeper.active_job_managers == 0
        return service, owner, other, admin, response.contact

    def test_information_returns_final_state_and_owner(self):
        _, owner, _, _, contact = self.make()
        response = owner.status(contact)
        assert response.ok
        assert response.state is GramJobState.DONE
        assert response.job_owner == OWNER

    def test_admin_authorized_by_policy_after_reap(self):
        _, _, _, admin, contact = self.make()
        response = admin.status(contact)
        assert response.ok
        assert response.state is GramJobState.DONE
        assert response.job_owner == OWNER

    def test_unauthorized_requester_denied_after_reap(self):
        _, _, other, _, contact = self.make()
        response = other.status(contact)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert response.reasons

    def test_legacy_owner_rule_applies_after_reap(self):
        _, owner, other, _, contact = self.make(mode=AuthorizationMode.LEGACY)
        assert owner.status(contact).ok
        response = other.status(contact)
        assert response.code is GramErrorCode.NOT_JOB_OWNER

    def test_cancel_after_completion_is_idempotent_success(self):
        _, owner, _, _, contact = self.make()
        response = owner.cancel(contact)
        assert response.ok
        assert response.state is GramJobState.DONE

    def test_signal_after_completion_reports_no_such_job(self):
        service, owner, _, _, contact = self.make(mode=AuthorizationMode.LEGACY)
        for action, value in (("signal", 5), ("suspend", None), ("resume", None)):
            response = service.gatekeeper.manage(
                owner.credential, contact, action, value=value
            )
            assert response.code is GramErrorCode.NO_SUCH_JOB
            assert "already finished" in response.message

    def test_untrusted_credential_rejected_after_reap(self):
        service, _, _, _, contact = self.make()
        rogue = CertificateAuthority("/O=Rogue/CN=CA", now=0.0)
        response = service.gatekeeper.manage(
            rogue.issue(OWNER, now=0.0), contact, "information"
        )
        assert response.code is GramErrorCode.AUTHENTICATION_FAILED

    def test_unknown_contact_still_no_such_job(self):
        service, owner, _, _, contact = self.make()
        from repro.gram.protocol import JobContact

        response = owner.status(JobContact(host=contact.host, job_id="999999"))
        assert response.code is GramErrorCode.NO_SUCH_JOB


class TestAdmissionControl:
    def test_per_user_cap_returns_resource_busy(self):
        service = build(max_jobs_per_user=2)
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        assert client.submit(RSL).ok
        assert client.submit(RSL).ok
        third = client.submit(RSL)
        assert third.code is GramErrorCode.RESOURCE_BUSY
        assert "in flight" in third.message
        assert service.gatekeeper.admission.rejected_user == 1

    def test_cap_is_per_user_not_global(self):
        service = build(max_jobs_per_user=1)
        a = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        b = GramClient(service.add_user(OTHER, "other"), service.gatekeeper)
        assert a.submit(RSL).ok
        assert b.submit(RSL).ok
        assert a.submit(RSL).code is GramErrorCode.RESOURCE_BUSY

    def test_global_ceiling_returns_resource_busy(self):
        service = build(max_active_jmis=2)
        a = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        b = GramClient(service.add_user(OTHER, "other"), service.gatekeeper)
        assert a.submit(RSL).ok
        assert b.submit(RSL).ok
        response = a.submit(RSL)
        assert response.code is GramErrorCode.RESOURCE_BUSY
        assert "capacity" in response.message
        assert service.gatekeeper.admission.rejected_global == 1

    def test_slot_released_when_job_terminates(self):
        service = build(max_jobs_per_user=1)
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        first = client.submit(RSL)
        assert first.ok
        assert client.submit(RSL).code is GramErrorCode.RESOURCE_BUSY
        service.run(10.0)  # first job completes and is reaped
        assert client.submit(RSL).ok

    def test_slot_released_on_cancel(self):
        service = build(max_jobs_per_user=1)
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        first = client.submit(RSL)
        assert client.cancel(first.contact).ok
        assert client.submit(RSL).ok

    def test_admission_metrics_exported(self):
        service = build(max_jobs_per_user=1)
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        assert client.submit(RSL).ok
        client.submit(RSL)
        registry = service.telemetry.registry
        assert registry.value("gram_admission_rejected_total", scope="user") == 1.0
        assert registry.value("gram_admission_active_jmis") == 1.0
        service.run(10.0)
        assert registry.value("gram_admission_active_jmis") == 0.0
        assert registry.value("gram_lifecycle_reaped_total") == 1.0
        assert registry.value("gram_lifecycle_completed_records") == 1.0

    def test_tracked_identities_stay_bounded(self):
        service = build(max_jobs_per_user=4)
        clients = [
            GramClient(
                service.add_user(f"/O=Grid/OU=lifecycle/CN=U{i}", f"u{i}"),
                service.gatekeeper,
            )
            for i in range(5)
        ]
        for client in clients:
            assert client.submit(RSL).ok
        assert service.gatekeeper.admission.tracked_identities == 5
        service.run(10.0)
        # In-flight map holds only identities with live jobs.
        assert service.gatekeeper.admission.tracked_identities == 0


class TestCompletedJobStoreUnit:
    def test_zero_retention_keeps_nothing(self):
        store = CompletedJobStore(retention=0)
        assert len(store) == 0

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError):
            CompletedJobStore(retention=-1)

    def test_negative_retention_age_rejected(self):
        from repro.sim.clock import Clock

        with pytest.raises(ValueError):
            CompletedJobStore(retention_age=-1.0, clock=Clock())

    def test_retention_age_requires_clock(self):
        with pytest.raises(ValueError):
            CompletedJobStore(retention_age=60.0)


class TestAgeRetention:
    def test_aged_records_evicted_with_reason(self):
        service = build(completed_retention_age=30.0)
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        first = client.submit(RSL)
        service.run(10.0)  # first completes at t=10
        assert service.gatekeeper.completed_jobs == 1
        service.run(35.0)  # t=45: first's record is 35s old
        second = client.submit(RSL)
        service.run(10.0)  # second's reap triggers the age sweep
        store = service.gatekeeper.completed
        assert store.get(first.contact.job_id) is None
        assert store.get(second.contact.job_id) is not None
        assert store.evicted_by_reason == {"count": 0, "age": 1}
        assert store.evicted == 1

    def test_aged_record_answers_no_such_job_on_lookup(self):
        # Lazy expiry: no later reap is needed for lookups to see it.
        service = build(completed_retention_age=30.0)
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        response = client.submit(RSL)
        service.run(10.0)
        assert client.status(response.contact).ok
        service.run(60.0)
        stale = client.status(response.contact)
        assert stale.code is GramErrorCode.NO_SUCH_JOB
        assert service.gatekeeper.completed.evicted_by_reason["age"] == 1

    def test_count_and_age_evictions_counted_separately(self):
        service = build(completed_retention=1, completed_retention_age=30.0)
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        for _ in range(2):  # second reap count-evicts the first record
            client.submit(RSL)
            service.run(10.0)
        service.run(60.0)  # and the survivor ages out
        store = service.gatekeeper.completed
        assert store.expire() == 1
        assert store.evicted_by_reason == {"count": 1, "age": 1}
        assert store.evicted == 2

    def test_eviction_gauge_labeled_by_reason(self):
        service = build(completed_retention=1, completed_retention_age=None)
        client = GramClient(service.add_user(OWNER, "owner"), service.gatekeeper)
        for _ in range(2):
            client.submit(RSL)
            service.run(10.0)
        registry = service.telemetry.registry
        assert registry.value(
            "gram_lifecycle_evicted_records", reason="count"
        ) == 1.0
        assert registry.value(
            "gram_lifecycle_evicted_records", reason="age"
        ) == 0.0
