"""The reload/recovery bugfix sweep: regressions pinned one by one.

* ``CalloutRegistry.configure_from_file`` must not bump the policy
  epoch for byte-identical content (capability tokens survive a no-op
  reload).
* ``CompletedJobStore`` lazy age eviction must evict the looked-up
  record itself, exactly once, even when completion order is not age
  order.
* ``ShardRouter`` must drop memoized routes when the shard key is
  reconfigured.
* ``GramClient`` must clamp degenerate ``retry_after`` hints to a
  minimum positive backoff window.
"""

from repro.core.callout import GRAM_AUTHZ_CALLOUT, CalloutRegistry
from repro.core.parser import parse_policy
from repro.gram.client import MIN_RETRY_AFTER, GramClient
from repro.gram.dispatch import ShardRouter, ShardedGramService
from repro.gram.lifecycle import CompletedJobStore
from repro.gram.protocol import GramErrorCode, GramResponse
from repro.gram.service import GramService, ServiceConfig
from repro.sim.clock import Clock
from tests.gram.test_spill_recovery import ALICE, ORG, POLICY, RSL, make_record

CALLOUT_LINE = "gram.authz repro.core.builtin_callouts permit_all\n"
OTHER_LINE = "gram.authz repro.core.builtin_callouts initiator_only\n"


class TestCalloutReloadShortCircuit:
    def test_identical_content_does_not_bump_the_epoch(self, tmp_path):
        path = tmp_path / "callouts.conf"
        path.write_text(CALLOUT_LINE)
        registry = CalloutRegistry()
        assert registry.configure_from_file(str(path)) == 1
        epoch = registry.policy_epoch
        assert epoch == 1

        # Same bytes, any number of times: zero loads, zero bumps.
        for _ in range(3):
            assert registry.configure_from_file(str(path), reload=True) == 0
        assert registry.policy_epoch == epoch
        assert registry.callout_labels(GRAM_AUTHZ_CALLOUT) == (
            "repro.core.builtin_callouts:permit_all",
        )

    def test_changed_content_replaces_and_bumps_once(self, tmp_path):
        path = tmp_path / "callouts.conf"
        path.write_text(CALLOUT_LINE)
        registry = CalloutRegistry()
        registry.configure_from_file(str(path))

        path.write_text(OTHER_LINE)
        assert registry.configure_from_file(str(path), reload=True) == 1
        assert registry.policy_epoch == 2
        # Replaced, not appended: exactly one configured callout.
        assert registry.callout_labels(GRAM_AUTHZ_CALLOUT) == (
            "repro.core.builtin_callouts:initiator_only",
        )

    def test_broken_file_leaves_registry_and_epoch_untouched(self, tmp_path):
        import pytest

        from repro.core.errors import AuthorizationSystemFailure

        path = tmp_path / "callouts.conf"
        path.write_text(CALLOUT_LINE)
        registry = CalloutRegistry()
        registry.configure_from_file(str(path))

        path.write_text("gram.authz repro.no_such_module nope\n")
        with pytest.raises(AuthorizationSystemFailure):
            registry.configure_from_file(str(path), reload=True)
        assert registry.policy_epoch == 1
        assert registry.callout_labels(GRAM_AUTHZ_CALLOUT) == (
            "repro.core.builtin_callouts:permit_all",
        )

    def test_capability_tokens_survive_a_noop_reload(self, tmp_path):
        path = tmp_path / "callouts.conf"
        path.write_text("# no extra callouts configured\n")
        service = GramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),),
                capability_grants=True,
            )
        )
        # Apply once so the path is owned (a comment-only file stages
        # nothing and the registry epoch must not move either way).
        service.reload_callouts(str(path))
        client = GramClient(
            service.add_user(ALICE, "alice"), service.gatekeeper
        )
        contact = client.submit(RSL).contact
        token = service.shard_state.job_managers[contact.job_id].capability
        issuer = service.capability.issuer
        assert issuer.validate(token) == "valid"

        # Reload the byte-identical file: the token must survive.
        assert service.reload_callouts(str(path)) == 0
        assert issuer.validate(token) == "valid"

    def test_changed_callout_config_revokes_capabilities(self, tmp_path):
        path = tmp_path / "callouts.conf"
        path.write_text("# empty\n")
        service = GramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),),
                capability_grants=True,
            )
        )
        service.reload_callouts(str(path))
        client = GramClient(
            service.add_user(ALICE, "alice"), service.gatekeeper
        )
        contact = client.submit(RSL).contact
        token = service.shard_state.job_managers[contact.job_id].capability
        issuer = service.capability.issuer
        assert issuer.validate(token) == "valid"

        path.write_text(CALLOUT_LINE)
        assert service.reload_callouts(str(path)) == 1
        # The registry is a bound epoch source: changed configuration
        # fail-closes every outstanding capability.
        assert issuer.validate(token) == "epoch"


class TestLazyAgeEvictionExactlyOnce:
    def build(self, retention_age=100.0, retention=10):
        clock = Clock()
        store = CompletedJobStore(
            retention=retention, retention_age=retention_age, clock=clock
        )
        return store, clock

    def test_lazy_lookup_evicts_the_record_itself(self):
        store, clock = self.build()
        # Non-monotone completion order: the *newer* job id sits ahead
        # of an older finished_at (a recovery merge does exactly this).
        store.add(make_record("new", finished_at=90.0))
        store.add(make_record("old", finished_at=10.0))
        clock.advance(150.0)  # "old" is 140 old (expired), "new" is 60

        # The eager prefix sweep stops at "new" (live) and would never
        # reach "old"; the lazy path must evict it directly.
        assert store.get("old") is None
        assert store.evicted_by_reason[store.EVICT_AGE] == 1
        assert store.evicted_by_reason[store.EVICT_COUNT] == 0
        assert store.get("new") is not None

    def test_eager_and_lazy_paths_never_double_count(self):
        store, clock = self.build()
        store.add(make_record("a", finished_at=10.0))
        store.add(make_record("b", finished_at=20.0))
        clock.advance(200.0)  # both expired

        assert store.get("a") is None  # lazy: evicts "a", sweeps "b"
        assert store.get("a") is None  # repeat lookups count nothing
        assert store.get("b") is None
        assert store.evicted_by_reason[store.EVICT_AGE] == 2
        assert store.evicted == 2

    def test_aged_record_is_never_mislabeled_as_count(self):
        store, clock = self.build(retention=2)
        store.add(make_record("new", finished_at=90.0))
        store.add(make_record("old", finished_at=10.0))
        clock.advance(150.0)
        assert store.get("old") is None  # evicted under "age"...
        assert store.evicted_by_reason[store.EVICT_AGE] == 1

        # ...so when the count bound later trips, the record pushed
        # out is the live "new", not a lingering, mislabeled "old"
        # (the pre-fix behaviour: get() age-checked but left the
        # record in the map for the count bound to evict).
        store.add(make_record("x", finished_at=140.0))
        store.add(make_record("y", finished_at=145.0))
        assert store.evicted_by_reason[store.EVICT_AGE] == 1
        assert store.evicted_by_reason[store.EVICT_COUNT] == 1
        assert store.get("x") is not None
        assert store.get("y") is not None


class TestShardRouterRekey:
    def test_memo_invalidated_on_key_change(self):
        router = ShardRouter(shards=4)
        dns = [f"{ORG}/CN=User {i}" for i in range(16)]
        before = {dn: router.shard_for(dn) for dn in dns}
        assert router.memo_misses == 16
        assert {dn: router.shard_for(dn) for dn in dns} == before
        assert router.memo_hits == 16

        # Pin the whole org onto one key: every DN must re-route.
        router.key_fn = lambda dn: "pinned-vo"
        assert router.memo_invalidations == 1
        after = {dn: router.shard_for(dn) for dn in dns}
        assert len(set(after.values())) == 1  # all pinned together

    def test_same_key_fn_is_a_noop(self):
        def key(dn):
            return dn.rsplit("/", 1)[0]

        router = ShardRouter(shards=4, key_fn=key)
        router.shard_for(f"{ORG}/CN=A")
        router.key_fn = key
        assert router.memo_invalidations == 0
        assert router.memo_hits + router.memo_misses == 1

    def test_service_rekey_reroutes_pinned_vo(self):
        service = ShardedGramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),),
                shards=4,
                dispatch="inline",
            )
        )
        dns = [f"{ORG}/CN=User {i:02d}" for i in range(12)]
        spread = {service.shard_of(dn) for dn in dns}
        assert len(spread) > 1  # default hashing spreads the org

        service.set_shard_key(lambda dn: dn.rsplit("/CN=", 1)[0])
        assert service.config.shard_key is not None
        pinned = {service.shard_of(dn) for dn in dns}
        # Without the memo invalidation the stale spread would persist.
        assert len(pinned) == 1
        service.close()


class TestRetryAfterClamp:
    def build_client(self):
        service = GramService(
            ServiceConfig(policies=(parse_policy(POLICY, name="vo"),))
        )
        client = GramClient(
            service.add_user(ALICE, "alice"), service.gatekeeper
        )
        return service, client

    def respond(self, client, clock, retry_after):
        """Feed one RESOURCE_BUSY hint through the client's learner."""
        response = GramResponse(
            code=GramErrorCode.RESOURCE_BUSY,
            message="at capacity",
            retry_after=retry_after,
        )
        # Route through submit() by stubbing the gatekeeper call.
        original = client.gatekeeper.submit
        client.gatekeeper.submit = lambda credential, rsl: response
        try:
            return client.submit(RSL)
        finally:
            client.gatekeeper.submit = original

    def test_zero_hint_clamps_to_minimum_window(self):
        service, client = self.build_client()
        self.respond(client, service.clock, retry_after=0.0)
        assert client._retry_not_before == service.clock.now + MIN_RETRY_AFTER
        suppressed = client.submit(RSL)
        assert "suppressed" in suppressed.message
        assert client.suppressed_retries == 1

    def test_negative_hint_clamps_to_minimum_window(self):
        service, client = self.build_client()
        self.respond(client, service.clock, retry_after=-5.0)
        assert client._retry_not_before == service.clock.now + MIN_RETRY_AFTER
        # The clamped window still expires like a normal one.
        service.run(MIN_RETRY_AFTER * 2)
        assert client.submit(RSL).ok
        assert client.suppressed_retries == 0

    def test_absent_hint_opens_no_window(self):
        service, client = self.build_client()
        self.respond(client, service.clock, retry_after=None)
        assert client._retry_not_before == 0.0
        assert client.submit(RSL).ok

    def test_positive_hint_unchanged(self):
        service, client = self.build_client()
        self.respond(client, service.clock, retry_after=7.5)
        assert client._retry_not_before == service.clock.now + 7.5
