"""Audit-log export, reload and offline analysis."""

import pytest

from repro.core.builtin_callouts import broken_callout
from repro.core.callout import GRAM_AUTHZ_CALLOUT
from repro.core.parser import parse_policy
from repro.gram.audit import (
    AuditEntry,
    export_audit_log,
    load_audit_log,
    summarize,
)
from repro.gram.client import GramClient
from repro.gram.service import GramService, ServiceConfig

ALICE = "/O=Grid/OU=audit/CN=Alice"
POLICY = f"""
{ALICE}:
    &(action=start)(executable=sim)(count<4)
    &(action=cancel)(jobowner=self)
"""


@pytest.fixture
def busy_service():
    service = GramService(ServiceConfig(policies=(parse_policy(POLICY, name="vo"),)))
    alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
    ok = alice.submit("&(executable=sim)(count=2)(runtime=50)")
    alice.submit("&(executable=sim)(count=8)")       # denied (count)
    alice.submit("&(executable=rogue)(count=1)")     # denied (executable)
    alice.cancel(ok.contact)                          # permit
    return service


class TestExportAndReload:
    def test_round_trip(self, busy_service, tmp_path):
        path = tmp_path / "audit.jsonl"
        written = export_audit_log(busy_service.pep, str(path))
        assert written == 4
        entries = load_audit_log(str(path))
        assert len(entries) == 4
        outcomes = [entry.outcome for entry in entries]
        assert outcomes == ["permit", "deny", "deny", "permit"]

    def test_entries_carry_request_context(self, busy_service, tmp_path):
        path = tmp_path / "audit.jsonl"
        export_audit_log(busy_service.pep, str(path))
        entries = load_audit_log(str(path))
        denial = entries[1]
        assert denial.requester == ALICE
        assert denial.action == "start"
        assert denial.reasons
        cancel = entries[3]
        assert cancel.action == "cancel"
        assert cancel.jobowner == ALICE

    def test_failures_exported_distinctly(self, busy_service, tmp_path):
        busy_service.registry.clear(GRAM_AUTHZ_CALLOUT)
        busy_service.registry.register(GRAM_AUTHZ_CALLOUT, broken_callout)
        alice = GramClient(
            busy_service.ca.issue(ALICE + " Second", now=0.0),
            busy_service.gatekeeper,
        )
        busy_service.gridmap.add(ALICE + " Second", "alice")
        alice.submit("&(executable=sim)(count=1)")
        path = tmp_path / "audit.jsonl"
        export_audit_log(busy_service.pep, str(path))
        entries = load_audit_log(str(path))
        assert entries[-1].outcome == "failure"
        assert entries[-1].reasons

    def test_json_round_trip_of_single_entry(self):
        entry = AuditEntry(
            requester=ALICE,
            action="start",
            job_id="7",
            jobowner=ALICE,
            outcome="deny",
            reasons=("r1", "r2"),
            source="vo",
        )
        assert AuditEntry.from_json(entry.to_json()) == entry


class TestOfflineSummary:
    def test_summary_counts(self, busy_service, tmp_path):
        path = tmp_path / "audit.jsonl"
        export_audit_log(busy_service.pep, str(path))
        summary = summarize(load_audit_log(str(path)))
        assert summary.total == 4
        assert summary.permits == 2
        assert summary.denials == 2
        assert summary.failures == 0
        assert summary.by_requester[0][0] == ALICE
        assert summary.top_denial_reasons

    def test_summary_renders(self, busy_service, tmp_path):
        path = tmp_path / "audit.jsonl"
        export_audit_log(busy_service.pep, str(path))
        text = str(summarize(load_audit_log(str(path))))
        assert "4 decisions" in text
        assert ALICE in text

    def test_empty_log(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text("")
        summary = summarize(load_audit_log(str(path)))
        assert summary.total == 0
