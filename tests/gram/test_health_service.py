"""Health & SLO wiring in the service stacks (flat and sharded)."""

import pytest

from repro.core.callout import GRAM_AUTHZ_CALLOUT
from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.dispatch import ShardedGramService
from repro.gram.service import GramService, ServiceConfig
from repro.testing import ExceptionFault, inject

PREFIX = "/O=Grid/O=Globus/OU=health.example.org"

POLICY = f"""
{PREFIX}:
    &(action=start)(executable=sim)(count<4)
    &(action=cancel)(jobowner=self)
    &(action=information)(jobowner=self)
"""

RSL = "&(executable=sim)(count=1)(runtime=10)"


def build_service(**overrides):
    defaults = dict(
        policies=(parse_policy(POLICY, name="vo"),),
        health_slo=True,
        health_window=2.0,
    )
    defaults.update(overrides)
    return GramService(ServiceConfig(**defaults))


def client_for(service, name="alice"):
    identity = f"{PREFIX}/CN={name}"
    return GramClient(service.add_user(identity, name), service.gatekeeper)


class TestGramServiceHealth:
    def test_health_is_off_by_default(self):
        service = GramService(
            ServiceConfig(policies=(parse_policy(POLICY, name="vo"),))
        )
        assert service.health is None

    def test_health_requires_telemetry(self):
        with pytest.raises(ValueError, match="telemetry"):
            build_service(telemetry=False)

    def test_run_loop_drives_evaluations(self):
        service = build_service()
        client = client_for(service)
        assert client.submit(RSL).ok
        assert service.health.latest_report is None
        service.run(2.0)
        report = service.health.latest_report
        assert report is not None
        assert report.status_of("service") == "healthy"
        assert service.health.weight_of("service") == 1.0
        assert not service.health.dumps

    def test_requests_counter_feeds_the_admission_slo(self):
        service = build_service()
        client = client_for(service)
        assert client.submit(RSL).ok
        snapshot = service.telemetry.registry.snapshot()
        family = next(
            f for f in snapshot if f["name"] == "gram_requests_total"
        )
        (series,) = family["series"]
        assert series["labels"] == {"kind": "submit", "code": "SUCCESS"}
        assert series["value"] == 1.0
        response = client.manage(client.submit(RSL).contact, "information")
        assert response.ok
        snapshot = service.telemetry.registry.snapshot()
        family = next(
            f for f in snapshot if f["name"] == "gram_requests_total"
        )
        kinds = {tuple(sorted(s["labels"].items())) for s in family["series"]}
        assert (("code", "SUCCESS"), ("kind", "manage")) in kinds

    def test_sustained_failures_freeze_a_flight_dump(self):
        service = build_service()
        client = client_for(service)
        fault = ExceptionFault()
        assert inject(service.registry, GRAM_AUTHZ_CALLOUT, fault) >= 1
        for _ in range(3):
            assert not client.submit(RSL).ok
            service.run(2.0)
        assert service.health.status_of("service") == "critical"
        assert service.health.dumps
        dump = service.health.dumps[0]
        assert dump.alert["severity"] == "critical"
        assert dump.request_ids()
        assert any(
            entry["code"] == "AUTHORIZATION_SYSTEM_FAILURE"
            for entry in dump.decisions
        )


def build_sharded(shards=2, **overrides):
    defaults = dict(
        policies=(parse_policy(POLICY, name="vo"),),
        shards=shards,
        dispatch="inline",
        health_slo=True,
        health_window=2.0,
    )
    defaults.update(overrides)
    return ShardedGramService(ServiceConfig(**defaults))


class TestShardedHealth:
    def test_one_monitor_not_one_per_shard(self):
        service = build_sharded()
        assert service.health is not None
        # Shards never build their own monitor: the front door owns it.
        assert all(shard.health is None for shard in service.shards)
        assert set(service.health.scopes) == {"service", "shard0", "shard1"}

    def test_placement_report_scores_every_shard(self):
        service = build_sharded()
        # Users 000-003 hash to shard 0 and 004-007 to shard 1
        # (crc32 routing), so the load is balanced and no shard can be
        # flagged hot on skew alone.
        for index in range(8):
            identity = f"{PREFIX}/CN=User {index:03d}"
            credential = service.add_user(identity, f"u{index:03d}")
            assert GramClient(credential, service.gatekeeper).submit(RSL).ok
        service.run(2.0)
        report = service.placement_report()
        assert report["health"] == "healthy"
        assert report["hot_shards"] == []
        for row in report["shards"]:
            assert row["health_status"] == "healthy"
            assert row["health_score"] == 1.0

    def test_sick_shard_is_flagged_hot(self):
        service = build_sharded()
        fault = ExceptionFault()
        sick = service.shards[0]
        assert inject(sick.registry, GRAM_AUTHZ_CALLOUT, fault) >= 1
        # Users pinned (by DN hash) to the sick shard keep failing.
        clients = []
        for index in range(8):
            identity = f"{PREFIX}/CN=User {index:03d}"
            credential = service.add_user(identity, f"u{index:03d}")
            clients.append(GramClient(credential, service.gatekeeper))
        for _ in range(3):
            for client in clients:
                client.submit(RSL)
            service.run(2.0)
        report = service.placement_report()
        assert report["health"] == "critical"
        assert 0 in report["hot_shards"]
        row = report["shards"][0]
        assert row["health_status"] == "critical"
        # The service-wide scope sees the same decline in the merged
        # snapshot (half the traffic is failing).
        assert service.health.status_of("service") != "healthy"

    def test_placement_report_has_no_health_keys_when_disabled(self):
        service = build_sharded(health_slo=False)
        assert service.health is None
        report = service.placement_report()
        assert "health" not in report
        assert "hot_shards" not in report
        assert all("health_status" not in row for row in report["shards"])
