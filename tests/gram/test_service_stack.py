"""End-to-end behaviour of the assembled GRAM resource.

These tests exercise the Gatekeeper → Job Manager → LRM path through
the public `GramService` + `GramClient` API.
"""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode, GramJobState
from repro.gram.service import GramService, ServiceConfig
from repro.gsi.credentials import CertificateAuthority
from repro.gsi.proxy import delegate
from repro.workloads.scenarios import FIGURE3_POLICY_TEXT

from tests.conftest import BO, KATE, OUTSIDER

LOCAL_POLICY = """
/O=Grid/O=Globus/OU=mcs.anl.gov:
    &(action=start)(count<=32)
    &(action=cancel)
    &(action=information)
    &(action=signal)
"""

BO_START = (
    "&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)(runtime=100)"
)


# Figure 3 grants Bo no management rights at all — faithful, but the
# lifecycle tests need the owner to at least observe their job, so the
# VO policy here adds a self-information grant on top of Figure 3.
VO_POLICY = FIGURE3_POLICY_TEXT + f"\n{BO}:\n    &(action=information)(jobowner=self)\n"


@pytest.fixture
def service():
    svc = GramService(
        ServiceConfig(
            policies=(
                parse_policy(VO_POLICY, name="vo"),
                parse_policy(LOCAL_POLICY, name="local"),
            ),
        )
    )
    return svc


@pytest.fixture
def bo(service):
    return GramClient(service.add_user(BO, "boliu"), service.gatekeeper)


@pytest.fixture
def kate(service):
    return GramClient(service.add_user(KATE, "keahey"), service.gatekeeper)


class TestSubmission:
    def test_authorized_submit_succeeds(self, service, bo):
        response = bo.submit(BO_START)
        assert response.ok
        assert response.state is GramJobState.ACTIVE
        assert response.contact is not None
        assert service.gatekeeper.active_job_managers == 1

    def test_policy_denial_carries_reasons(self, bo):
        response = bo.submit("&(executable=evil)(jobtag=NFC)(count=1)")
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert response.reasons

    def test_missing_jobtag_denied_by_requirement(self, bo):
        response = bo.submit("&(executable=test2)(directory=/sandbox/test)(count=2)")
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert any("jobtag" in reason for reason in response.reasons)

    def test_local_policy_caps_count(self, kate):
        response = kate.submit(
            "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=64)"
        )
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_unmapped_user_rejected_by_gridmap(self, service):
        eve_credential = service.ca.issue(OUTSIDER, now=0.0)
        eve = GramClient(eve_credential, service.gatekeeper)
        response = eve.submit(BO_START)
        assert response.code is GramErrorCode.GRIDMAP_LOOKUP_FAILED

    def test_untrusted_ca_rejected(self, service):
        rogue_ca = CertificateAuthority("/O=Rogue/CN=CA", now=0.0)
        rogue = GramClient(rogue_ca.issue(BO, now=0.0), service.gatekeeper)
        response = rogue.submit(BO_START)
        assert response.code is GramErrorCode.AUTHENTICATION_FAILED

    def test_bad_rsl_reported(self, bo):
        response = bo.submit("&(executable=")
        assert response.code is GramErrorCode.BAD_RSL

    def test_missing_executable_reported(self, bo):
        response = bo.submit("&(count=2)(jobtag=NFC)")
        assert response.code is GramErrorCode.BAD_RSL

    def test_submit_with_delegated_proxy(self, service):
        bo_identity = service.add_user(BO, "boliu2")
        proxy = delegate(bo_identity, now=service.clock.now)
        client = GramClient(proxy, service.gatekeeper)
        response = client.submit(BO_START)
        assert response.ok, response


class TestJobLifecycle:
    def test_job_runs_to_completion(self, service, bo):
        response = bo.submit(BO_START)
        service.run(100.0)
        status = bo.status(response.contact)
        assert status.state is GramJobState.DONE

    def test_owner_observes_progress(self, service, bo):
        response = bo.submit(BO_START)
        service.run(50.0)
        assert bo.status(response.contact).state is GramJobState.ACTIVE

    def test_status_of_unknown_contact(self, service, bo):
        from repro.gram.protocol import JobContact

        response = bo.status(JobContact(host="x", job_id="ghost"))
        assert response.code is GramErrorCode.NO_SUCH_JOB


class TestVOWideManagement:
    def test_kate_cancels_bos_nfc_job(self, service, bo, kate):
        """The paper's flagship scenario, through the full stack."""
        submitted = bo.submit(BO_START)
        assert submitted.ok
        service.run(10.0)
        cancelled = kate.cancel(submitted.contact)
        assert cancelled.ok
        assert cancelled.state is GramJobState.FAILED
        assert kate.job_owner(submitted.contact) == BO
        assert not kate.owns(submitted.contact)

    def test_kate_cannot_cancel_ads_jobs(self, service, bo, kate):
        submitted = bo.submit(
            "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)"
            "(count=2)(runtime=100)"
        )
        assert submitted.ok
        denied = kate.cancel(submitted.contact)
        assert denied.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_bo_cannot_cancel_own_job_without_grant(self, service, bo):
        """Figure 3 grants Bo no cancel right — not even on her own job."""
        submitted = bo.submit(BO_START)
        denied = bo.cancel(submitted.contact)
        assert denied.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_management_by_unauthenticated_credential(self, service, bo):
        submitted = bo.submit(BO_START)
        rogue_ca = CertificateAuthority("/O=Rogue/CN=CA", now=0.0)
        impostor = GramClient(rogue_ca.issue(KATE, now=0.0), service.gatekeeper)
        response = impostor.cancel(submitted.contact)
        assert response.code is GramErrorCode.AUTHENTICATION_FAILED


class TestEnforcementIntegration:
    def test_enforcement_rejection_surfaces(self):
        policy = parse_policy(f"{BO}: &(action=start)(count<=16)", name="vo")
        service = GramService(
            ServiceConfig(policies=(policy,), enforcement="static")
        )
        credential = service.add_user(BO, "boliu")
        account = service.accounts.get("boliu")
        from repro.accounts.local import AccountLimits

        account.limits = AccountLimits(max_cpus_per_job=2)
        client = GramClient(credential, service.gatekeeper)
        response = client.submit("&(executable=sim)(count=8)(runtime=10)")
        assert response.code is GramErrorCode.ENFORCEMENT_REJECTED

    def test_sandbox_kills_overrunning_job(self):
        policy = parse_policy(
            f"{BO}: &(action=start)(maxcputime<=10) &(action=information)",
            name="vo",
        )
        service = GramService(
            ServiceConfig(policies=(policy,), enforcement="sandbox")
        )
        client = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        # Declares maxcputime=10 (policy-compliant) but actually runs 100s.
        response = client.submit(
            "&(executable=sim)(count=1)(maxcputime=10)(runtime=100)"
        )
        assert response.ok
        service.run(200.0)
        status = client.status(response.contact)
        assert status.state is GramJobState.FAILED
        assert len(service.enforcement.violations) == 1


class TestResourceExhaustion:
    def test_oversized_job_is_resource_unavailable(self, service, kate):
        response = kate.submit(
            "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=32)"
        )
        # service default: 8 nodes x 4 cpus = 32 -> fits exactly
        assert response.ok
        too_big = GramService(
            ServiceConfig(
                node_count=1,
                cpus_per_node=2,
                policies=(
                    parse_policy(FIGURE3_POLICY_TEXT, name="vo"),
                    parse_policy(LOCAL_POLICY, name="local"),
                ),
            )
        )
        client = GramClient(too_big.add_user(KATE, "keahey"), too_big.gatekeeper)
        response = client.submit(
            "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=16)"
        )
        assert response.code is GramErrorCode.RESOURCE_UNAVAILABLE
