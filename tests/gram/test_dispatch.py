"""The sharded dispatch seam: routing, executors, cross-shard concerns."""

import threading
import zlib

import pytest

from repro.core.parser import parse_policy
from repro.core.pipeline import DecisionCache
from repro.gram.client import GramClient
from repro.gram.dispatch import (
    EpochBroadcast,
    InlineExecutor,
    ShardRouter,
    ShardWorkerPool,
    ShardedGramService,
)
from repro.gram.lifecycle import SharedGauge
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig

PREFIX = "/O=Grid/O=Globus/OU=shard.example.org"

POLICY = f"""
{PREFIX}:
    &(action=start)(executable=sim)(count<4)
    &(action=cancel)(jobowner=self)
    &(action=information)(jobtag=SHARD)
"""

RSL = "&(executable=sim)(count=1)(runtime=10)(jobtag=SHARD)"


def build_sharded(shards=4, dispatch="thread", **overrides):
    defaults = dict(
        host="grid.example.org",
        node_count=8,
        cpus_per_node=4,
        policies=(parse_policy(POLICY, name="vo"),),
        shards=shards,
        dispatch=dispatch,
    )
    defaults.update(overrides)
    return ShardedGramService(ServiceConfig(**defaults))


def enroll(service, count):
    """One client per generated user, named so DNs are deterministic."""
    clients = []
    for index in range(count):
        identity = f"{PREFIX}/CN=User {index:03d}"
        credential = service.add_user(identity, f"u{index:03d}")
        clients.append(GramClient(credential, service.gatekeeper))
    return clients


class TestShardRouter:
    def test_hash_is_crc32_not_process_hash(self):
        router = ShardRouter(8)
        dn = f"{PREFIX}/CN=Anyone"
        assert router.shard_for(dn) == zlib.crc32(dn.encode()) % 8

    def test_same_dn_same_shard_across_instances(self):
        dn = f"{PREFIX}/CN=Stable"
        assert ShardRouter(4).shard_for(dn) == ShardRouter(4).shard_for(dn)

    def test_single_shard_always_zero(self):
        assert ShardRouter(1).shard_for("anything") == 0

    def test_vo_key_override_pins_a_subtree(self):
        # VO-aware key: every DN under the prefix hashes as one key.
        router = ShardRouter(8, key_fn=lambda dn: dn.rsplit("/CN=", 1)[0])
        shards = {
            router.shard_for(f"{PREFIX}/CN=User {i}") for i in range(50)
        }
        assert len(shards) == 1

    def test_population_spreads_over_shards(self):
        router = ShardRouter(4)
        shards = {
            router.shard_for(f"{PREFIX}/CN=User {i:03d}") for i in range(64)
        }
        assert shards == {0, 1, 2, 3}

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestSharedGauge:
    def test_adjust_and_read(self):
        gauge = SharedGauge()
        assert gauge.adjust(+3) == 3
        assert gauge.adjust(-1) == 2
        assert gauge.value == 2

    def test_concurrent_adjust_loses_nothing(self):
        gauge = SharedGauge()
        threads = [
            threading.Thread(
                target=lambda: [gauge.adjust(+1) for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.value == 8000


class TestEpochBroadcast:
    def test_bump_invalidates_a_watching_cache(self):
        broadcast = EpochBroadcast()
        cache = DecisionCache(epoch_sources=[broadcast])
        first = cache._epochs()
        assert cache._epochs() == first
        broadcast.bump()
        assert cache._epochs() != first

    def test_service_bump_reaches_every_shard_cache(self):
        service = build_sharded(shards=4, dispatch="inline", decision_cache=True)
        epochs_before = [shard.pep.cache._epochs() for shard in service.shards]
        service.bump_policy_epoch()
        epochs_after = [shard.pep.cache._epochs() for shard in service.shards]
        assert all(a != b for a, b in zip(epochs_after, epochs_before))
        service.close()


class TestExecutors:
    def test_inline_runs_on_caller_thread(self):
        executor = InlineExecutor()
        assert executor.run(0, threading.get_ident) == threading.get_ident()

    def test_pool_runs_each_shard_on_its_own_thread(self):
        pool = ShardWorkerPool(4)
        try:
            idents = {
                shard: pool.run(shard, threading.get_ident) for shard in range(4)
            }
            assert len(set(idents.values())) == 4
            assert threading.get_ident() not in idents.values()
            # Repeat calls to one shard land on the same worker.
            assert pool.run(2, threading.get_ident) == idents[2]
        finally:
            pool.close()

    def test_pool_propagates_exceptions(self):
        pool = ShardWorkerPool(1)
        try:
            def boom():
                raise RuntimeError("shard work failed")

            with pytest.raises(RuntimeError, match="shard work failed"):
                pool.run(0, boom)
        finally:
            pool.close()

    def test_pool_fifo_per_shard(self):
        pool = ShardWorkerPool(1)
        try:
            seen = []
            futures = [
                pool.submit(0, lambda n=n: seen.append(n)) for n in range(20)
            ]
            for future in futures:
                future.result()
            assert seen == list(range(20))
        finally:
            pool.close()


class TestShardedService:
    def test_rejects_unknown_dispatch(self):
        with pytest.raises(ValueError, match="dispatch"):
            build_sharded(dispatch="fork")

    def test_plain_service_refuses_multi_shard_config(self):
        with pytest.raises(ValueError, match="ShardedGramService"):
            GramService(ServiceConfig(shards=4))

    def test_shard_hosts_are_distinct_and_routable(self):
        service = build_sharded(shards=4, dispatch="inline")
        hosts = [shard.config.host for shard in service.shards]
        assert hosts == [f"shard{i}.grid.example.org" for i in range(4)]
        service.close()

    def test_single_shard_keeps_the_plain_host(self):
        service = build_sharded(shards=1, dispatch="inline")
        assert service.shards[0].config.host == "grid.example.org"
        assert service.shared_active_jmis is None
        service.close()

    def test_submit_lands_on_the_requesters_shard(self):
        service = build_sharded(shards=4, dispatch="thread")
        clients = enroll(service, 8)
        try:
            for client in clients:
                response = client.submit(RSL)
                assert response.ok, response.message
                shard = service.shard_of(client.identity)
                expected_host = service.shards[shard].config.host
                assert response.contact.host == expected_host
        finally:
            service.close()

    def test_cross_shard_management_routes_to_the_jobs_shard(self):
        service = build_sharded(shards=4, dispatch="thread")
        clients = enroll(service, 16)
        try:
            # Find an owner and a peer living on different shards.
            owner = clients[0]
            peer = next(
                c
                for c in clients[1:]
                if service.shard_of(c.identity)
                != service.shard_of(owner.identity)
            )
            response = owner.submit(RSL)
            assert response.ok
            # Peer polls the owner's job (authorized by the jobtag
            # grant) — must route to the owner's shard and succeed.
            status = peer.status(response.contact)
            assert status.ok, status.message
            # The peer may not cancel (jobowner=self) — a *denial*
            # proves the request reached the job, not NO_SUCH_JOB.
            denied = peer.cancel(response.contact)
            assert denied.code is GramErrorCode.AUTHORIZATION_DENIED
            assert owner.cancel(response.contact).ok
        finally:
            service.close()

    def test_unknown_contact_answers_no_such_job(self):
        from repro.gram.protocol import JobContact

        service = build_sharded(shards=4, dispatch="thread")
        clients = enroll(service, 1)
        try:
            response = clients[0].status(
                JobContact(host="elsewhere.example.org", job_id="424242")
            )
            assert response.code is GramErrorCode.NO_SUCH_JOB
        finally:
            service.close()

    def test_global_ceiling_spans_shards(self):
        service = build_sharded(
            shards=4, dispatch="thread", max_active_jmis=2
        )
        clients = enroll(service, 12)
        try:
            # Pick three users on three different shards: the ceiling
            # must reject the third even though its shard is empty.
            chosen, shards_used = [], set()
            for client in clients:
                shard = service.shard_of(client.identity)
                if shard not in shards_used:
                    shards_used.add(shard)
                    chosen.append(client)
                if len(chosen) == 3:
                    break
            assert len(chosen) == 3
            assert chosen[0].submit(RSL).ok
            assert chosen[1].submit(RSL).ok
            rejected = chosen[2].submit(RSL)
            assert rejected.code is GramErrorCode.RESOURCE_BUSY
            assert "capacity" in rejected.message
            # Slots free as jobs finish, service-wide.
            service.run(15.0)
            assert chosen[2].submit(RSL).ok
        finally:
            service.close()

    def test_run_advances_every_shard_clock(self):
        service = build_sharded(shards=3, dispatch="thread")
        try:
            service.run(5.0)
            assert [shard.clock.now for shard in service.shards] == [5.0] * 3
        finally:
            service.close()

    def test_context_manager_closes_the_pool(self):
        with build_sharded(shards=2, dispatch="thread") as service:
            clients = enroll(service, 2)
            assert clients[0].submit(RSL).ok
        # After close, the pool threads have exited.
        assert all(not t.is_alive() for t in service.executor._threads)


class TestMergedTelemetry:
    def build_and_drive(self, shards, dispatch):
        service = build_sharded(shards=shards, dispatch=dispatch)
        clients = enroll(service, 8)
        for client in clients:
            response = client.submit(RSL)
            assert response.ok
            assert client.status(response.contact).ok
        return service

    def test_merged_decisions_sum_across_shards(self):
        service = self.build_and_drive(4, "thread")
        try:
            per_shard = sum(
                shard.telemetry.registry.value(
                    "authz_decisions_total", action="start", decision="permit"
                )
                for shard in service.shards
            )
            assert per_shard == 8
            assert service.merged_value(
                "authz_decisions_total", action="start", decision="permit"
            ) == 8
            snapshot = service.merged_snapshot()
            family = next(
                f for f in snapshot if f["name"] == "authz_decisions_total"
            )
            total = sum(series["value"] for series in family["series"])
            assert total == 16  # 8 starts + 8 information polls
        finally:
            service.close()

    def test_merged_prometheus_renders_once_per_family(self):
        service = self.build_and_drive(4, "thread")
        try:
            text = service.merged_prometheus()
            assert text.count("# TYPE authz_decisions_total counter") == 1
            assert "authz_decisions_total{" in text
        finally:
            service.close()

    def test_merged_spans_have_unique_shard_prefixed_traces(self):
        service = self.build_and_drive(4, "thread")
        try:
            spans = service.merged_spans()
            assert spans
            trace_ids = {span["trace"] for span in spans}
            assert all(":" in trace for trace in trace_ids)
            shards_seen = {trace.split(":", 1)[0] for trace in trace_ids}
            assert len(shards_seen) > 1
        finally:
            service.close()

    def test_merge_is_identity_for_one_shard(self):
        service = self.build_and_drive(1, "inline")
        try:
            merged = service.merged_snapshot()
            assert merged == service.shards[0].telemetry.registry.snapshot()
        finally:
            service.close()


class TestPlacementReport:
    """Per-shard routed-load counts for hot-VO shard_key pinning."""

    def drive(self, service, users=16, polls=2):
        clients = enroll(service, users)
        contacts = []
        for client in clients:
            response = client.submit(RSL)
            assert response.ok
            contacts.append(response.contact)
        for client, contact in zip(clients, contacts):
            for _ in range(polls):
                assert client.status(contact).ok
        return clients, contacts

    def test_routed_counts_add_up(self):
        service = build_sharded(shards=4, dispatch="inline")
        self.drive(service, users=16, polls=2)
        report = service.placement_report()
        assert len(report["shards"]) == 4
        assert report["total_routed"] == 16 + 16 * 2
        assert sum(r["routed_submissions"] for r in report["shards"]) == 16
        assert sum(r["routed_management"] for r in report["shards"]) == 32
        # Routed submissions land where they were served.
        for row in report["shards"]:
            assert row["served_submissions"] == row["routed_submissions"]

    def test_balanced_population_has_low_skew(self):
        service = build_sharded(shards=4, dispatch="inline")
        self.drive(service, users=32, polls=1)
        report = service.placement_report()
        populated = [r for r in report["shards"] if r["routed_total"]]
        assert len(populated) == 4
        assert report["skew"] < 3.0

    def test_pinned_vo_shows_skew(self):
        """A VO-aware shard_key that pins the whole subtree maps every
        requester to one shard: the report must make the imbalance
        visible (skew == shard count, one hot shard)."""
        service = build_sharded(
            shards=4,
            dispatch="inline",
            shard_key=lambda dn: dn.rsplit("/CN=", 1)[0],
        )
        self.drive(service, users=16, polls=2)
        report = service.placement_report()
        assert report["skew"] == pytest.approx(4.0)
        hot = report["shards"][report["hot_shard"]]
        assert hot["routed_total"] == report["total_routed"]
        cold = [
            r for r in report["shards"] if r["shard"] != report["hot_shard"]
        ]
        assert all(r["routed_total"] == 0 for r in cold)

    def test_empty_report(self):
        service = build_sharded(shards=2, dispatch="inline")
        report = service.placement_report()
        assert report["total_routed"] == 0
        assert report["skew"] == 0.0
