"""The miniature MDS information service."""


from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.mds import InformationService, ResourceRecord
from repro.gram.service import GramService, ServiceConfig

ALICE = "/O=Grid/OU=mds/CN=Alice"
POLICY = f"{ALICE}: &(action=start)(executable=sim)(count<=32) &(action=cancel)(jobowner=self)"


def record(name="r1", free=8, total=16, published=0.0, queues=("default",)):
    return ResourceRecord(
        name=name,
        host=f"{name}.example.org",
        total_cpus=total,
        free_cpus=free,
        queue_depth=0,
        queues=queues,
        policy_sources=("vo",),
        published_at=published,
    )


class TestPublishAndLookup:
    def test_publish_lookup(self):
        mds = InformationService()
        mds.publish(record())
        found = mds.lookup("r1")
        assert found is not None
        assert found.free_cpus == 8

    def test_republish_replaces(self):
        mds = InformationService()
        mds.publish(record(free=8))
        mds.publish(record(free=2))
        assert mds.lookup("r1").free_cpus == 2
        assert len(mds) == 1

    def test_unpublish(self):
        mds = InformationService()
        mds.publish(record())
        mds.unpublish("r1")
        assert mds.lookup("r1") is None

    def test_utilization(self):
        assert record(free=4, total=16).utilization == 0.75
        assert record(free=0, total=0).utilization == 0.0


class TestAging:
    def test_stale_records_hidden(self):
        mds = InformationService(max_age=60.0)
        mds.publish(record(published=0.0))
        assert mds.lookup("r1", now=30.0) is not None
        assert mds.lookup("r1", now=100.0) is None
        assert mds.records(now=100.0) == ()

    def test_no_aging_by_default(self):
        mds = InformationService()
        mds.publish(record(published=0.0))
        assert mds.lookup("r1", now=1e9) is not None


class TestQueries:
    def build(self):
        mds = InformationService()
        mds.publish(record("small", free=2, total=4))
        mds.publish(record("medium", free=8, total=16))
        mds.publish(record("large", free=32, total=64, queues=("default", "gold")))
        return mds

    def test_find_by_capacity_ordered(self):
        mds = self.build()
        found = mds.find(min_free_cpus=4)
        assert [r.name for r in found] == ["large", "medium"]

    def test_find_by_queue(self):
        mds = self.build()
        found = mds.find(queue="gold")
        assert [r.name for r in found] == ["large"]

    def test_find_with_predicate(self):
        mds = self.build()
        found = mds.find(predicate=lambda r: r.utilization < 0.51)
        assert {r.name for r in found} == {"small", "medium", "large"}

    def test_find_nothing(self):
        mds = self.build()
        assert mds.find(min_free_cpus=1000) == ()


class TestServiceSnapshots:
    def test_publish_service_reflects_live_state(self):
        service = GramService(
            ServiceConfig(
                node_count=2,
                cpus_per_node=4,
                policies=(parse_policy(POLICY, name="vo"),),
            )
        )
        client = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        mds = InformationService()
        before = mds.publish_service("site", service)
        assert before.free_cpus == 8
        assert before.policy_sources == ("vo",)

        client.submit("&(executable=sim)(count=6)(runtime=100)")
        after = mds.publish_service("site", service)
        assert after.free_cpus == 2
        assert mds.lookup("site").free_cpus == 2

    def test_snapshot_carries_simulated_time(self):
        service = GramService(ServiceConfig())
        service.run(42.0)
        mds = InformationService()
        snapshot = mds.publish_service("site", service)
        assert snapshot.published_at == 42.0
