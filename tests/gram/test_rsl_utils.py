"""Job-description canonicalisation."""

import pytest

from repro.gram.rsl_utils import (
    DEFAULT_COUNT,
    DEFAULT_QUEUE,
    DEFAULT_RUNTIME,
    JobDescription,
    JobDescriptionError,
)
from repro.rsl.parser import parse_specification


def describe(rsl: str) -> JobDescription:
    return JobDescription.from_spec(parse_specification(rsl))


class TestRequiredFields:
    def test_executable_required(self):
        with pytest.raises(JobDescriptionError):
            describe("&(count=2)")

    def test_minimal_description(self):
        description = describe("&(executable=sim)")
        assert description.executable == "sim"
        assert description.count == DEFAULT_COUNT
        assert description.queue == DEFAULT_QUEUE
        assert description.runtime == DEFAULT_RUNTIME


class TestDefaults:
    def test_count_default_is_canonicalised_into_spec(self):
        description = describe("&(executable=sim)")
        assert description.spec.first_value("count") == "1"

    def test_explicit_count_not_duplicated(self):
        description = describe("&(executable=sim)(count=4)")
        assert len(description.spec.relations_for("count")) == 1
        assert description.count == 4

    def test_runtime_defaults_to_walltime(self):
        description = describe("&(executable=sim)(maxwalltime=600)")
        assert description.runtime == 600.0

    def test_explicit_runtime_wins(self):
        description = describe("&(executable=sim)(maxwalltime=600)(runtime=50)")
        assert description.runtime == 50.0


class TestValidation:
    def test_nonpositive_count_rejected(self):
        with pytest.raises(JobDescriptionError):
            describe("&(executable=sim)(count=0)")

    def test_non_numeric_count_rejected(self):
        with pytest.raises(JobDescriptionError):
            describe("&(executable=sim)(count=many)")

    def test_non_numeric_walltime_rejected(self):
        with pytest.raises(JobDescriptionError):
            describe("&(executable=sim)(maxwalltime=long)")

    def test_negative_runtime_rejected(self):
        with pytest.raises(JobDescriptionError):
            describe("&(executable=sim)(runtime=-5)")


class TestAccessors:
    def test_full_description(self):
        description = describe(
            "&(executable=TRANSP)(directory=/opt/nfc)(count=8)(queue=batch)"
            "(jobtag=NFC)(maxwalltime=3600)(maxcputime=7200)(runtime=1800)"
        )
        assert description.executable == "TRANSP"
        assert description.directory == "/opt/nfc"
        assert description.count == 8
        assert description.queue == "batch"
        assert description.jobtag == "NFC"
        assert description.max_walltime == 3600.0
        assert description.max_cputime == 7200.0
        assert description.runtime == 1800.0

    def test_absent_optionals_are_none_or_empty(self):
        description = describe("&(executable=sim)")
        assert description.directory == ""
        assert description.jobtag is None
        assert description.max_walltime is None
        assert description.max_cputime is None
