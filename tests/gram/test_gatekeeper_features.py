"""Gatekeeper-specific features: PEP placement, dynamic accounts, traces."""


from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig

from tests.conftest import BO

POLICY = f"""
{BO}: &(action=start)(executable=sim)(count<8) &(action=information)
/O=Grid/OU=visitors: &(action=start)(executable=sim)(count<2) &(action=information)
"""

GOOD = "&(executable=sim)(count=2)(runtime=10)"
BAD = "&(executable=evil)(count=2)(runtime=10)"


class TestGatekeeperPlacedPEP:
    def test_denial_happens_before_jmi_creation(self):
        service = GramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),),
                pep_in_gatekeeper=True,
            )
        )
        client = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        response = client.submit(BAD)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        # No JMI must exist for the denied request.
        assert service.gatekeeper.active_job_managers == 0
        assert service.gatekeeper_pep.denials == 1

    def test_permit_flows_through_both_peps(self):
        service = GramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),),
                pep_in_gatekeeper=True,
            )
        )
        client = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        response = client.submit(GOOD)
        assert response.ok
        assert service.gatekeeper_pep.permits == 1
        assert service.pep.permits == 1  # JM PEP still authorizes


class TestDynamicAccountMapping:
    def build(self, pool_size=2):
        service = GramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),),
                dynamic_pool_size=pool_size,
            )
        )
        return service

    def test_visitor_without_gridmap_entry_gets_dynamic_account(self):
        service = self.build()
        visitor = service.ca.issue("/O=Grid/OU=visitors/CN=Vera", now=0.0)
        client = GramClient(visitor, service.gatekeeper)
        response = client.submit("&(executable=sim)(count=1)(runtime=10)")
        assert response.ok
        assert service.dynamic_pool.allocations == 1

    def test_second_submission_reuses_lease(self):
        service = self.build()
        visitor = service.ca.issue("/O=Grid/OU=visitors/CN=Vera", now=0.0)
        client = GramClient(visitor, service.gatekeeper)
        client.submit("&(executable=sim)(count=1)(runtime=10)")
        client.submit("&(executable=sim)(count=1)(runtime=10)")
        assert service.dynamic_pool.allocations == 1

    def test_pool_exhaustion_surfaces_as_resource_unavailable(self):
        service = self.build(pool_size=1)
        first = service.ca.issue("/O=Grid/OU=visitors/CN=One", now=0.0)
        second = service.ca.issue("/O=Grid/OU=visitors/CN=Two", now=0.0)
        GramClient(first, service.gatekeeper).submit(
            "&(executable=sim)(count=1)(runtime=10)"
        )
        response = GramClient(second, service.gatekeeper).submit(
            "&(executable=sim)(count=1)(runtime=10)"
        )
        assert response.code is GramErrorCode.RESOURCE_UNAVAILABLE

    def test_static_mapping_preferred_over_pool(self):
        service = self.build()
        client = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        response = client.submit(GOOD)
        assert response.ok
        assert service.dynamic_pool.allocations == 0


class TestTraces:
    def test_trace_captures_component_handoffs(self):
        service = GramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),), record_trace=True
            )
        )
        client = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        client.submit(GOOD)
        edges = service.trace.edges()
        assert ("client", "gatekeeper") in edges
        assert ("gatekeeper", "gsi") in edges
        assert ("gatekeeper", "grid-mapfile") in edges
        assert ("gatekeeper", "job-manager") in edges
        assert ("job-manager", "pep") in edges
        assert ("job-manager", "lrm") in edges

    def test_trace_ordering_gatekeeper_before_jm(self):
        service = GramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),), record_trace=True
            )
        )
        client = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        client.submit(GOOD)
        edges = list(service.trace.edges())
        spawn = edges.index(("gatekeeper", "job-manager"))
        pep = edges.index(("job-manager", "pep"))
        lrm = edges.index(("job-manager", "lrm"))
        assert spawn < pep < lrm
