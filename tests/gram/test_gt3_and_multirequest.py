"""GT3-style account setup and RSL multi-request submission."""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig

VISITOR = "/O=Grid/OU=visitors/CN=Vera"
POLICY = """
/O=Grid/OU=visitors:
    &(action=start)(executable=sim)(count<=4)
    &(action=information)(jobowner=self)
    &(action=cancel)(jobowner=self)
"""


def build(gt3=True, enforcement="static"):
    service = GramService(
        ServiceConfig(
            policies=(parse_policy(POLICY, name="vo"),),
            dynamic_pool_size=2,
            gt3_account_setup=gt3,
            enforcement=enforcement,
            record_trace=True,
        )
    )
    credential = service.ca.issue(VISITOR, now=0.0)
    return service, GramClient(credential, service.gatekeeper)


class TestGT3AccountSetup:
    def test_dynamic_account_configured_from_request(self):
        service, client = build(gt3=True)
        response = client.submit("&(executable=sim)(count=2)(maxcputime=100)(runtime=10)")
        assert response.ok
        lease = service.dynamic_pool.lease_for(VISITOR)
        assert lease is not None
        limits = lease.account.limits
        assert limits.max_cpus_per_job == 2
        assert limits.cpu_quota_seconds == 100.0
        assert limits.allowed_executables == frozenset({"sim"})

    def test_without_gt3_account_stays_unrestricted(self):
        service, client = build(gt3=False)
        response = client.submit("&(executable=sim)(count=2)(runtime=10)")
        assert response.ok
        lease = service.dynamic_pool.lease_for(VISITOR)
        assert lease.account.limits.max_cpus_per_job is None

    def test_gt3_configuration_traced(self):
        service, client = build(gt3=True)
        client.submit("&(executable=sim)(count=1)(runtime=10)")
        events = [str(e) for e in service.trace]
        assert any("configure dynamic account from request" in e for e in events)

    def test_gt3_reconfiguration_enforced_by_account(self):
        """Once the trusted service installed the limits, static
        account enforcement now sees *request-specific* limits — the
        better dynamic-account integration the paper anticipated."""
        service, client = build(gt3=True)
        ok = client.submit("&(executable=sim)(count=2)(runtime=10)")
        assert ok.ok
        # Same lease, but the account now whitelists only 'sim':
        # spoof a JMI-level bypass by submitting an executable the VO
        # policy allows (none besides sim do here, so tweak limits).
        lease = service.dynamic_pool.lease_for(VISITOR)
        assert not lease.account.limits.allows_executable("other")

    def test_static_accounts_unaffected_by_gt3_flag(self):
        service = GramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),),
                gt3_account_setup=True,
            )
        )
        credential = service.add_user(VISITOR, "vera")
        client = GramClient(credential, service.gatekeeper)
        assert client.submit("&(executable=sim)(count=1)(runtime=10)").ok
        account = service.accounts.get("vera")
        assert account.limits.max_cpus_per_job is None  # not dynamic

    def test_bad_rsl_reported_before_jmi(self):
        service, client = build(gt3=True)
        response = client.submit("&(count=2)")  # no executable
        assert response.code is GramErrorCode.BAD_RSL
        assert service.gatekeeper.active_job_managers == 0


class TestMultiRequest:
    def test_multirequest_fans_out(self):
        service, client = build()
        responses = client.submit_multi(
            "+(&(executable=sim)(count=1)(runtime=10))"
            "(&(executable=sim)(count=2)(runtime=20))"
        )
        assert len(responses) == 2
        assert all(r.ok for r in responses)
        assert service.gatekeeper.active_job_managers == 2

    def test_plain_specification_is_single_submission(self):
        _, client = build()
        responses = client.submit_multi("&(executable=sim)(count=1)(runtime=10)")
        assert len(responses) == 1
        assert responses[0].ok

    def test_components_authorized_independently(self):
        _, client = build()
        responses = client.submit_multi(
            "+(&(executable=sim)(count=1)(runtime=10))"
            "(&(executable=rogue)(count=1))"
            "(&(executable=sim)(count=2)(runtime=10))"
        )
        codes = [r.code for r in responses]
        assert codes[0] is GramErrorCode.SUCCESS
        assert codes[1] is GramErrorCode.AUTHORIZATION_DENIED
        assert codes[2] is GramErrorCode.SUCCESS

    def test_malformed_multirequest_raises_syntax_error(self):
        from repro.rsl.errors import RSLSyntaxError

        _, client = build()
        with pytest.raises(RSLSyntaxError):
            client.submit_multi("+(&(broken")
