"""GramService assembly and configuration validation."""

import pytest

from repro.core.callout import GRAM_AUTHZ_CALLOUT
from repro.core.parser import parse_policy
from repro.gram.jobmanager import AuthorizationMode
from repro.gram.service import GramService, ServiceConfig

ALICE = "/O=Grid/OU=cfg/CN=Alice"


class TestEnforcementKinds:
    @pytest.mark.parametrize("kind", ["static", "dynamic", "sandbox"])
    def test_known_kinds_build(self, kind):
        service = GramService(ServiceConfig(enforcement=kind))
        assert service.enforcement is not None
        assert service.enforcement.name.replace("-account", "") in (
            kind,
            kind + "-account",
            "static",
            "dynamic",
            "sandbox",
        )

    def test_none_disables_enforcement(self):
        service = GramService(ServiceConfig(enforcement=None))
        assert service.enforcement is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            GramService(ServiceConfig(enforcement="blockchain"))


class TestCalloutWiring:
    def test_legacy_mode_installs_initiator_rule(self):
        service = GramService(ServiceConfig(mode=AuthorizationMode.LEGACY))
        labels = service.registry.callout_labels(GRAM_AUTHZ_CALLOUT)
        assert labels == ("initiator_only",)

    def test_extended_without_policies_falls_back_to_initiator_rule(self):
        service = GramService(ServiceConfig())
        labels = service.registry.callout_labels(GRAM_AUTHZ_CALLOUT)
        assert labels == ("initiator_only",)

    def test_extended_with_policies_installs_combined_callout(self):
        policy = parse_policy(f"{ALICE}: &(action=start)", name="vo")
        service = GramService(ServiceConfig(policies=(policy,)))
        labels = service.registry.callout_labels(GRAM_AUTHZ_CALLOUT)
        assert len(labels) == 1
        assert labels[0].startswith("combined:")

    def test_gatekeeper_pep_only_when_requested(self):
        assert GramService(ServiceConfig()).gatekeeper_pep is None
        assert (
            GramService(ServiceConfig(pep_in_gatekeeper=True)).gatekeeper_pep
            is not None
        )


class TestAddUser:
    def test_add_user_wires_everything(self):
        service = GramService(ServiceConfig())
        credential = service.add_user(ALICE, "alice")
        assert service.gridmap.authorizes(ALICE)
        assert service.accounts.exists("alice")
        assert str(credential.identity) == ALICE

    def test_add_user_twice_shares_account(self):
        service = GramService(ServiceConfig())
        service.add_user(ALICE, "shared")
        service.add_user("/O=Grid/OU=cfg/CN=Bob", "shared")
        assert len(service.accounts) == 1
        assert service.gridmap.map_to_account("/O=Grid/OU=cfg/CN=Bob") == "shared"


class TestClusterShape:
    def test_cluster_dimensions_respect_config(self):
        service = GramService(ServiceConfig(node_count=3, cpus_per_node=7))
        assert service.cluster.total_cpus == 21
        assert len(service.cluster.nodes) == 3

    def test_cluster_named_after_host(self):
        service = GramService(ServiceConfig(host="mysite.example.org"))
        assert service.cluster.name == "mysite"


class TestHardenIdempotency:
    def test_second_harden_raises_instead_of_stacking(self):
        service = GramService(ServiceConfig())
        first = service.harden()
        assert service.resilience is first
        with pytest.raises(RuntimeError):
            service.harden()
        # The original configuration is untouched by the rejected call.
        assert service.resilience is first

    def test_construction_time_hardening_counts_as_applied(self):
        service = GramService(ServiceConfig(resilience=True))
        assert service.resilience is not None
        with pytest.raises(RuntimeError):
            service.harden()


class TestLifecycleConfigWiring:
    def test_defaults_reap_with_bounded_retention(self):
        gatekeeper = GramService(ServiceConfig()).gatekeeper
        assert gatekeeper.lifecycle.reap is True
        assert gatekeeper.completed.retention == 1024
        assert gatekeeper.lifecycle.max_jobs_per_user is None
        assert gatekeeper.lifecycle.max_active_jmis is None

    def test_caps_and_retention_flow_to_the_gatekeeper(self):
        service = GramService(
            ServiceConfig(
                reap_jmis=False,
                completed_retention=7,
                max_jobs_per_user=3,
                max_active_jmis=11,
            )
        )
        lifecycle = service.gatekeeper.lifecycle
        assert lifecycle.reap is False
        assert service.gatekeeper.completed.retention == 7
        assert lifecycle.max_jobs_per_user == 3
        assert lifecycle.max_active_jmis == 11
