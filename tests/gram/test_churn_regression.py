"""Leak guards: sustained churn must leave no residue anywhere.

Regression suite for the job-lifecycle layer: after N
submit/cancel/complete cycles the Gatekeeper's JMI map is bounded by
the live ceiling, scheduler callback registrations never exceed
active jobs, reaped jobs still answer ``information`` with their
final state and owner, and every account's ``running_jobs`` is back
to zero.
"""

from repro.gram.protocol import GramJobState
from repro.gram.service import ServiceConfig
from repro.workloads.churn import (
    ChurnConfig,
    build_churn_service,
    churn_live_bound,
    run_churn,
)

CONFIG = ChurnConfig(users=25, cycles=300, runtime=4.0, step=1.0, seed=23)


def churned(service_config=None, config=CONFIG):
    service, clients = build_churn_service(config, service_config)
    stats = run_churn(service, clients, config)
    return service, clients, stats


class TestChurnLeavesNoResidue:
    def test_jmi_map_bounded_by_live_ceiling(self):
        service, _, stats = churned()
        bound = churn_live_bound(CONFIG)
        assert stats.started == CONFIG.cycles
        assert stats.max_live_jmis <= bound
        assert len(service.gatekeeper._job_managers) == 0
        assert len(service.gatekeeper._job_managers) <= bound

    def test_scheduler_registrations_never_exceed_active_jobs(self):
        service, _, stats = churned()
        # One registration per live job, consumed at terminal dispatch.
        assert stats.max_terminal_callbacks <= stats.max_live_jmis
        assert stats.final_terminal_callbacks == 0

    def test_scheduler_job_records_do_not_accumulate(self):
        service, _, stats = churned()
        assert stats.final_scheduler_jobs == 0

    def test_post_reap_information_returns_done_with_original_owner(self):
        _, clients, stats = churned()
        # Probe a job from the earliest cycles: long reaped by now.
        cycle, contact = stats.contacts[0]
        client = clients[cycle % len(clients)]
        response = client.status(contact)
        assert response.ok
        assert response.state in (GramJobState.DONE, GramJobState.FAILED)
        assert response.job_owner == client.identity

    def test_running_jobs_accounting_returns_to_zero(self):
        service, _, stats = churned()
        assert stats.running_jobs_after == 0
        for account in service.accounts.accounts():
            assert account.running_jobs == 0

    def test_admission_in_flight_map_drains(self):
        service, _, _ = churned(
            ServiceConfig(
                host="churn.example.org",
                node_count=16,
                cpus_per_node=4,
                max_jobs_per_user=8,
            )
        )
        admission = service.gatekeeper.admission
        assert admission.total_in_flight == 0
        assert admission.tracked_identities == 0

    def test_completed_store_respects_retention_under_churn(self):
        service, _, stats = churned(
            ServiceConfig(
                host="churn.example.org",
                node_count=16,
                cpus_per_node=4,
                completed_retention=64,
            )
        )
        assert service.gatekeeper.completed_jobs <= 64
        assert service.gatekeeper.completed.evicted == stats.started - 64

    def test_churn_with_sandbox_enforcement_also_balances(self):
        config = ChurnConfig(users=10, cycles=100, runtime=4.0, step=1.0)
        service, _, stats = churned(
            ServiceConfig(
                host="churn.example.org",
                node_count=16,
                cpus_per_node=4,
                enforcement="sandbox",
            ),
            config=config,
        )
        assert stats.running_jobs_after == 0
        assert service.enforcement.active_sandboxes == 0
        assert stats.final_terminal_callbacks == 0
