"""Direct Job Manager Instance unit tests (edge paths)."""

import pytest

from repro.accounts.local import LocalAccount
from repro.core.builtin_callouts import permit_all
from repro.core.callout import GRAM_AUTHZ_CALLOUT, CalloutRegistry
from repro.core.pep import EnforcementPoint
from repro.gram.jobmanager import AuthorizationMode, JobManagerInstance
from repro.gram.protocol import GramErrorCode, GramJobState, JobContact
from repro.gsi.credentials import CertificateAuthority
from repro.lrm.cluster import Cluster
from repro.lrm.scheduler import BatchScheduler
from repro.sim.clock import Clock

OWNER = "/O=Grid/OU=jm/CN=Owner"


@pytest.fixture
def ca():
    return CertificateAuthority("/O=Grid/CN=CA", now=0.0)


@pytest.fixture
def parts(ca):
    clock = Clock()
    scheduler = BatchScheduler(Cluster.homogeneous("c", 2, 4), clock)
    registry = CalloutRegistry()
    registry.register(GRAM_AUTHZ_CALLOUT, permit_all)
    pep = EnforcementPoint(registry=registry)
    return clock, scheduler, pep


def make_jmi(parts, ca, mode=AuthorizationMode.EXTENDED):
    clock, scheduler, pep = parts
    from repro.gsi.names import DistinguishedName

    return JobManagerInstance(
        contact=JobContact.fresh("jm.example.org"),
        owner=DistinguishedName.parse(OWNER),
        account=LocalAccount(username="owner", uid=7000),
        scheduler=scheduler,
        clock=clock,
        mode=mode,
        pep=pep,
        trust_anchors=[ca],
    )


class TestConstruction:
    def test_extended_requires_pep(self, parts, ca):
        clock, scheduler, _ = parts
        from repro.gsi.names import DistinguishedName

        with pytest.raises(ValueError):
            JobManagerInstance(
                contact=JobContact.fresh("h"),
                owner=DistinguishedName.parse(OWNER),
                account=LocalAccount(username="owner", uid=7001),
                scheduler=scheduler,
                clock=clock,
                mode=AuthorizationMode.EXTENDED,
                pep=None,
            )


class TestStartEdgeCases:
    def test_unparsable_rsl(self, parts, ca):
        jmi = make_jmi(parts, ca)
        response = jmi.start("&(((")
        assert response.code is GramErrorCode.BAD_RSL

    def test_missing_executable(self, parts, ca):
        jmi = make_jmi(parts, ca)
        response = jmi.start("&(count=2)")
        assert response.code is GramErrorCode.BAD_RSL

    def test_state_before_start_is_none(self, parts, ca):
        jmi = make_jmi(parts, ca)
        assert jmi.state() is None


class TestManagementEdgeCases:
    def test_manage_before_start(self, parts, ca):
        jmi = make_jmi(parts, ca)
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "cancel")
        assert response.code is GramErrorCode.NO_SUCH_JOB

    def test_unknown_action(self, parts, ca):
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=100)")
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "reboot")
        assert response.code is GramErrorCode.BAD_RSL

    def test_signal_without_value(self, parts, ca):
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=100)")
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "signal")
        assert response.code is GramErrorCode.BAD_RSL

    def test_signal_with_value(self, parts, ca):
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=100)")
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "signal", value=7)
        assert response.ok
        assert jmi.job.priority == 7

    def test_cancel_after_completion_is_graceful(self, parts, ca):
        clock, _, _ = parts
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=5)")
        clock.advance(10.0)
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "cancel")
        assert response.ok
        assert response.state is GramJobState.DONE

    def test_status_alias_for_information(self, parts, ca):
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=100)")
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "status")
        assert response.ok

    def test_legacy_mode_reports_owner_in_denial(self, parts, ca):
        jmi = make_jmi(parts, ca, mode=AuthorizationMode.LEGACY)
        jmi.start("&(executable=sim)(runtime=100)")
        other = ca.issue("/O=Grid/OU=jm/CN=Other", now=0.0)
        response = jmi.handle(other, "cancel")
        assert response.code is GramErrorCode.NOT_JOB_OWNER
        assert response.job_owner == OWNER


class TestStateMapping:
    def test_lifecycle_states(self, parts, ca):
        clock, scheduler, _ = parts
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(count=8)(runtime=50)")
        assert jmi.state() is GramJobState.ACTIVE
        scheduler.suspend(jmi.job.job_id)
        assert jmi.state() is GramJobState.SUSPENDED
        scheduler.resume(jmi.job.job_id)
        clock.advance(100.0)
        assert jmi.state() is GramJobState.DONE

    def test_failed_job_maps_to_failed(self, parts, ca):
        clock, scheduler, _ = parts
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=1000)(maxwalltime=10)")
        clock.advance(20.0)
        assert jmi.state() is GramJobState.FAILED


class TestDoubleStartGuard:
    def test_second_start_is_rejected_and_first_job_kept(self, parts, ca):
        jmi = make_jmi(parts, ca)
        first = jmi.start("&(executable=sim)(count=1)(runtime=10)")
        assert first.ok
        original_job = jmi.job
        second = jmi.start("&(executable=other)(count=1)(runtime=20)")
        assert second.code is GramErrorCode.JOB_ALREADY_STARTED
        assert "already started" in second.message
        # The first scheduler job and description are not orphaned.
        assert jmi.job is original_job
        assert jmi.description.executable == "sim"

    def test_second_start_after_completion_also_rejected(self, parts, ca):
        clock, scheduler, _ = parts
        jmi = make_jmi(parts, ca)
        assert jmi.start("&(executable=sim)(count=1)(runtime=10)").ok
        clock.advance(10.0)
        response = jmi.start("&(executable=sim)(count=1)(runtime=10)")
        assert response.code is GramErrorCode.JOB_ALREADY_STARTED
        assert response.state is GramJobState.DONE

    def test_failed_start_leaves_jmi_reusable_state_clean(self, parts, ca):
        jmi = make_jmi(parts, ca)
        assert jmi.start("&(((").code is GramErrorCode.BAD_RSL
        # No scheduler job was created, so a retry is not a double start.
        assert jmi.job is None


class TestTerminalAccounting:
    def make_with_enforcement(self, parts, ca):
        from repro.accounts.enforcement import StaticAccountEnforcement
        from repro.gsi.names import DistinguishedName

        clock, scheduler, pep = parts
        account = LocalAccount(username="owner", uid=7100)
        enforcement = StaticAccountEnforcement()
        jmi = JobManagerInstance(
            contact=JobContact.fresh("jm.example.org"),
            owner=DistinguishedName.parse(OWNER),
            account=account,
            scheduler=scheduler,
            clock=clock,
            mode=AuthorizationMode.EXTENDED,
            pep=pep,
            enforcement=enforcement,
            trust_anchors=[ca],
        )
        return jmi, account

    def test_running_jobs_decrements_exactly_once(self, parts, ca):
        clock, _, _ = parts
        jmi, account = self.make_with_enforcement(parts, ca)
        assert jmi.start("&(executable=sim)(count=1)(runtime=10)").ok
        assert account.running_jobs == 1
        clock.advance(10.0)
        assert account.running_jobs == 0
        # A stray re-delivery of the terminal event must not go negative.
        jmi._terminal_hook(jmi.job)
        assert account.running_jobs == 0

    def test_foreign_job_event_does_not_touch_accounting(self, parts, ca):
        from repro.lrm.jobs import BatchJob

        jmi, account = self.make_with_enforcement(parts, ca)
        assert jmi.start("&(executable=sim)(count=1)(runtime=10)").ok
        foreign = BatchJob(
            account="owner", executable="sim", cpus=1, runtime=1.0,
            job_id="someone-elses-job",
        )
        jmi._terminal_hook(foreign)
        assert account.running_jobs == 1  # keyed on job_id: no effect
        assert not jmi.finished

    def test_accounting_closes_even_when_job_finished_during_start(self, parts, ca):
        # A zero-walltime job terminates inside submit; the per-job
        # registration fires immediately, so running_jobs still
        # returns to 0 instead of leaking.
        clock, scheduler, _ = parts
        jmi, account = self.make_with_enforcement(parts, ca)
        response = jmi.start(
            "&(executable=sim)(count=1)(runtime=10)(maxwalltime=0)"
        )
        assert response.ok
        assert jmi.finished
        assert account.running_jobs == 0
