"""Direct Job Manager Instance unit tests (edge paths)."""

import pytest

from repro.accounts.local import LocalAccount
from repro.core.builtin_callouts import permit_all
from repro.core.callout import GRAM_AUTHZ_CALLOUT, CalloutRegistry
from repro.core.pep import EnforcementPoint
from repro.gram.jobmanager import AuthorizationMode, JobManagerInstance
from repro.gram.protocol import GramErrorCode, GramJobState, JobContact
from repro.gsi.credentials import CertificateAuthority
from repro.lrm.cluster import Cluster
from repro.lrm.scheduler import BatchScheduler
from repro.sim.clock import Clock

OWNER = "/O=Grid/OU=jm/CN=Owner"


@pytest.fixture
def ca():
    return CertificateAuthority("/O=Grid/CN=CA", now=0.0)


@pytest.fixture
def parts(ca):
    clock = Clock()
    scheduler = BatchScheduler(Cluster.homogeneous("c", 2, 4), clock)
    registry = CalloutRegistry()
    registry.register(GRAM_AUTHZ_CALLOUT, permit_all)
    pep = EnforcementPoint(registry=registry)
    return clock, scheduler, pep


def make_jmi(parts, ca, mode=AuthorizationMode.EXTENDED):
    clock, scheduler, pep = parts
    from repro.gsi.names import DistinguishedName

    return JobManagerInstance(
        contact=JobContact.fresh("jm.example.org"),
        owner=DistinguishedName.parse(OWNER),
        account=LocalAccount(username="owner", uid=7000),
        scheduler=scheduler,
        clock=clock,
        mode=mode,
        pep=pep,
        trust_anchors=[ca],
    )


class TestConstruction:
    def test_extended_requires_pep(self, parts, ca):
        clock, scheduler, _ = parts
        from repro.gsi.names import DistinguishedName

        with pytest.raises(ValueError):
            JobManagerInstance(
                contact=JobContact.fresh("h"),
                owner=DistinguishedName.parse(OWNER),
                account=LocalAccount(username="owner", uid=7001),
                scheduler=scheduler,
                clock=clock,
                mode=AuthorizationMode.EXTENDED,
                pep=None,
            )


class TestStartEdgeCases:
    def test_unparsable_rsl(self, parts, ca):
        jmi = make_jmi(parts, ca)
        response = jmi.start("&(((")
        assert response.code is GramErrorCode.BAD_RSL

    def test_missing_executable(self, parts, ca):
        jmi = make_jmi(parts, ca)
        response = jmi.start("&(count=2)")
        assert response.code is GramErrorCode.BAD_RSL

    def test_state_before_start_is_none(self, parts, ca):
        jmi = make_jmi(parts, ca)
        assert jmi.state() is None


class TestManagementEdgeCases:
    def test_manage_before_start(self, parts, ca):
        jmi = make_jmi(parts, ca)
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "cancel")
        assert response.code is GramErrorCode.NO_SUCH_JOB

    def test_unknown_action(self, parts, ca):
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=100)")
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "reboot")
        assert response.code is GramErrorCode.BAD_RSL

    def test_signal_without_value(self, parts, ca):
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=100)")
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "signal")
        assert response.code is GramErrorCode.BAD_RSL

    def test_signal_with_value(self, parts, ca):
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=100)")
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "signal", value=7)
        assert response.ok
        assert jmi.job.priority == 7

    def test_cancel_after_completion_is_graceful(self, parts, ca):
        clock, _, _ = parts
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=5)")
        clock.advance(10.0)
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "cancel")
        assert response.ok
        assert response.state is GramJobState.DONE

    def test_status_alias_for_information(self, parts, ca):
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=100)")
        owner_cred = ca.issue(OWNER, now=0.0)
        response = jmi.handle(owner_cred, "status")
        assert response.ok

    def test_legacy_mode_reports_owner_in_denial(self, parts, ca):
        jmi = make_jmi(parts, ca, mode=AuthorizationMode.LEGACY)
        jmi.start("&(executable=sim)(runtime=100)")
        other = ca.issue("/O=Grid/OU=jm/CN=Other", now=0.0)
        response = jmi.handle(other, "cancel")
        assert response.code is GramErrorCode.NOT_JOB_OWNER
        assert response.job_owner == OWNER


class TestStateMapping:
    def test_lifecycle_states(self, parts, ca):
        clock, scheduler, _ = parts
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(count=8)(runtime=50)")
        assert jmi.state() is GramJobState.ACTIVE
        scheduler.suspend(jmi.job.job_id)
        assert jmi.state() is GramJobState.SUSPENDED
        scheduler.resume(jmi.job.job_id)
        clock.advance(100.0)
        assert jmi.state() is GramJobState.DONE

    def test_failed_job_maps_to_failed(self, parts, ca):
        clock, scheduler, _ = parts
        jmi = make_jmi(parts, ca)
        jmi.start("&(executable=sim)(runtime=1000)(maxwalltime=10)")
        clock.advance(20.0)
        assert jmi.state() is GramJobState.FAILED
