"""Per-VO accounting and denial reports."""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.reporting import (
    authorization_stats,
    denial_report,
    vo_usage,
)
from repro.gram.service import GramService, ServiceConfig
from repro.vo.organization import VirtualOrganization

ORG = "/O=Grid/OU=report"
ALICE = f"{ORG}/CN=Alice"
BOB = f"{ORG}/CN=Bob"
POLICY = f"""
{ORG}:
    &(action=start)(executable=sim)(count<=4)
    &(action=cancel)(jobowner=self)
"""


@pytest.fixture
def deployment():
    service = GramService(
        ServiceConfig(policies=(parse_policy(POLICY, name="vo"),))
    )
    vo = VirtualOrganization("ReportVO")
    clients = {}
    for identity, account in ((ALICE, "alice"), (BOB, "bob")):
        credential = service.add_user(identity, account)
        vo.add_member(identity)
        clients[identity] = GramClient(credential, service.gatekeeper)
    account_of = {ALICE: "alice", BOB: "bob"}
    return service, vo, clients, account_of


class TestVOUsage:
    def test_usage_rolls_up_across_members(self, deployment):
        service, vo, clients, account_of = deployment
        clients[ALICE].submit("&(executable=sim)(count=2)(runtime=10)")
        clients[ALICE].submit("&(executable=sim)(count=1)(runtime=10)")
        clients[BOB].submit("&(executable=sim)(count=4)(runtime=10)")
        service.run(20.0)
        report = vo_usage(vo, service.scheduler, account_of)
        assert report.jobs_submitted == 3
        assert report.jobs_completed == 3
        assert report.cpu_seconds == pytest.approx(2 * 10 + 1 * 10 + 4 * 10)
        assert report.members_seen == 2

    def test_non_member_usage_excluded(self, deployment):
        service, vo, clients, account_of = deployment
        stranger = service.add_user(f"{ORG}/CN=Stranger", "stranger")
        GramClient(stranger, service.gatekeeper).submit(
            "&(executable=sim)(count=4)(runtime=10)"
        )
        service.run(20.0)
        report = vo_usage(vo, service.scheduler, account_of)
        assert report.jobs_submitted == 0

    def test_idle_vo_reports_zeroes(self, deployment):
        service, vo, _, account_of = deployment
        report = vo_usage(vo, service.scheduler, account_of)
        assert report.jobs_submitted == 0
        assert report.members_seen == 0


class TestDenialReport:
    def test_denials_grouped_and_counted(self, deployment):
        service, _, clients, _ = deployment
        for _ in range(3):
            clients[ALICE].submit("&(executable=rogue)(count=1)")
        clients[BOB].submit("&(executable=sim)(count=8)")
        report = denial_report(service.pep)
        assert len(report) == 2
        top = report[0]
        assert top.requester == ALICE
        assert top.count == 3
        assert top.action == "start"
        assert top.sample_reason

    def test_limit_respected(self, deployment):
        service, _, clients, _ = deployment
        for index in range(5):
            clients[ALICE].submit(f"&(executable=rogue{index})(count=1)")
        assert len(denial_report(service.pep, limit=1)) == 1

    def test_empty_pep_gives_empty_report(self, deployment):
        service, _, _, _ = deployment
        assert denial_report(service.pep) == ()


class TestStats:
    def test_stats_summarise_the_pep(self, deployment):
        service, _, clients, _ = deployment
        clients[ALICE].submit("&(executable=sim)(count=2)(runtime=10)")
        clients[ALICE].submit("&(executable=rogue)(count=1)")
        stats = authorization_stats(service.pep)
        assert stats.permits == 1
        assert stats.denials == 1
        assert stats.total == 2
        assert stats.denial_rate == pytest.approx(0.5)

    def test_zero_division_guard(self, deployment):
        service, _, _, _ = deployment
        assert authorization_stats(service.pep).denial_rate == 0.0
