"""The grid-mapfile ACL."""

import pytest

from repro.gram.gridmap import GridMapError, GridMapFile

BO = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu"
KATE = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey"

SAMPLE = f'''
# VO members
"{BO}" boliu
"{KATE}" keahey,fusion
'''


class TestParsing:
    def test_parse_sample(self):
        gridmap = GridMapFile.parse(SAMPLE)
        assert len(gridmap) == 2
        assert gridmap.map_to_account(BO) == "boliu"

    def test_multiple_accounts_first_is_default(self):
        gridmap = GridMapFile.parse(SAMPLE)
        entry = gridmap.lookup(KATE)
        assert entry.accounts == ("keahey", "fusion")
        assert entry.default_account == "keahey"

    def test_comments_and_blanks_skipped(self):
        gridmap = GridMapFile.parse("# nothing\n\n")
        assert len(gridmap) == 0

    def test_malformed_line_rejected(self):
        with pytest.raises(GridMapError):
            GridMapFile.parse('"/O=Grid/CN=X"')

    def test_unquoted_dn_with_spaces_rejected(self):
        with pytest.raises(GridMapError):
            GridMapFile.parse(f"{BO} boliu")

    def test_empty_accounts_rejected(self):
        with pytest.raises(GridMapError):
            GridMapFile.parse('"/O=Grid/CN=X" ,,')


class TestLookup:
    def test_authorizes(self):
        gridmap = GridMapFile.parse(SAMPLE)
        assert gridmap.authorizes(BO)
        assert not gridmap.authorizes("/O=Other/CN=Eve")

    def test_contains(self):
        gridmap = GridMapFile.parse(SAMPLE)
        assert BO in gridmap

    def test_lookup_is_exact_not_prefix(self):
        gridmap = GridMapFile.parse(SAMPLE)
        assert gridmap.lookup(BO + "/CN=proxy") is None

    def test_missing_identity_maps_to_none(self):
        gridmap = GridMapFile.parse(SAMPLE)
        assert gridmap.map_to_account("/O=Other/CN=Eve") is None


class TestMutation:
    def test_add_merges_accounts(self):
        gridmap = GridMapFile()
        gridmap.add(BO, "boliu")
        gridmap.add(BO, "shared", "boliu")
        assert gridmap.lookup(BO).accounts == ("boliu", "shared")

    def test_add_validates_dn(self):
        with pytest.raises(ValueError):
            GridMapFile().add("not a dn", "account")

    def test_add_requires_accounts(self):
        with pytest.raises(GridMapError):
            GridMapFile().add(BO)

    def test_remove(self):
        gridmap = GridMapFile.parse(SAMPLE)
        gridmap.remove(BO)
        assert not gridmap.authorizes(BO)
        with pytest.raises(KeyError):
            gridmap.remove(BO)


class TestSerialization:
    def test_round_trip(self):
        original = GridMapFile.parse(SAMPLE)
        again = GridMapFile.parse(original.serialize())
        assert len(again) == len(original)
        assert again.map_to_account(BO) == "boliu"
        assert again.lookup(KATE).accounts == ("keahey", "fusion")

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "grid-mapfile"
        path.write_text(SAMPLE)
        gridmap = GridMapFile.load(str(path))
        assert gridmap.authorizes(BO)
