"""Capability grants threaded through the service: carry, revocation, shards."""

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.dispatch import ShardedGramService
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig

PREFIX = "/O=Grid/O=Globus/OU=cap.example.org"
ALICE = f"{PREFIX}/CN=Alice"

POLICY = f"""
{PREFIX}:
    &(action=start)(executable=sim)(count<4)
    &(action=cancel)(jobowner=self)
    &(action=information)(jobtag=CAP)
"""

RSL = "&(executable=sim)(count=1)(runtime=10)(jobtag=CAP)"


def build_service(**overrides):
    defaults = dict(
        policies=(parse_policy(POLICY, name="vo"),),
        capability_grants=True,
    )
    defaults.update(overrides)
    return GramService(ServiceConfig(**defaults))


def build_sharded(shards=4, **overrides):
    defaults = dict(
        policies=(parse_policy(POLICY, name="vo"),),
        capability_grants=True,
        shards=shards,
        dispatch="inline",
    )
    defaults.update(overrides)
    return ShardedGramService(ServiceConfig(**defaults))


def client_for(service, identity=ALICE, account="alice"):
    return GramClient(service.add_user(identity, account), service.gatekeeper)


class TestServiceFastPath:
    def test_repeat_status_hits_the_capability(self):
        service = build_service()
        client = client_for(service)
        response = client.submit(RSL)
        assert response.code is GramErrorCode.SUCCESS
        for _ in range(5):
            assert client.status(response.contact).code is GramErrorCode.SUCCESS
        snapshot = service.capability.snapshot()
        assert snapshot["hits"] >= 4
        assert snapshot["minted"] >= 1

    def test_capability_metrics_exported(self):
        service = build_service()
        client = client_for(service)
        contact = client.submit(RSL).contact
        client.status(contact)
        client.status(contact)
        registry = service.telemetry.registry
        assert registry.value("capability_mint_total") >= 1
        assert registry.value("capability_hit_total") >= 1
        # The PEP's cache-status family gains the "capability" status.
        assert registry.value("authz_cache_total", status="capability") >= 1

    def test_disabled_by_default(self):
        service = GramService(
            ServiceConfig(policies=(parse_policy(POLICY, name="vo"),))
        )
        assert service.capability is None
        assert service.pep.capability is None


class TestJobCarry:
    def test_jmi_carries_the_start_capability(self):
        service = build_service()
        client = client_for(service)
        contact = client.submit(RSL).contact
        jmi = service.shard_state.job_managers[contact.job_id]
        assert jmi.capability is not None
        assert jmi.capability.subject == ALICE
        assert jmi.capability.actions == ("start",)

    def test_reaped_record_retains_the_capability(self):
        service = build_service()
        client = client_for(service)
        contact = client.submit(RSL).contact
        token = service.shard_state.job_managers[contact.job_id].capability
        service.run(30.0)  # runtime=10: job completes and is reaped
        record = service.gatekeeper.completed.get(contact.job_id)
        assert record is not None
        assert record.capability == token
        assert record.capability.verify_signature(
            service.capability.issuer.key
        )

    def test_post_reap_management_still_fast_paths(self):
        service = build_service()
        client = client_for(service)
        contact = client.submit(RSL).contact
        client.status(contact)
        service.run(30.0)
        before = service.capability.snapshot()["hits"]
        assert client.status(contact).code is GramErrorCode.SUCCESS
        assert service.capability.snapshot()["hits"] > before


class TestRevocation:
    """Epoch bump on any bound source fail-closes outstanding capabilities."""

    def bumped_snapshot(self, service, bump):
        client = client_for(service)
        contact = client.submit(RSL).contact
        client.status(contact)  # first information decision mints
        client.status(contact)  # second hits the capability
        assert service.capability.snapshot()["hits"] >= 1
        bump(service)
        # The next validate must revoke, then re-decide fresh.
        assert client.status(contact).code is GramErrorCode.SUCCESS
        return service.capability.snapshot()

    def test_vo_policy_replacement_revokes(self):
        service = build_service()
        snapshot = self.bumped_snapshot(
            service,
            lambda s: s.combined_evaluator.evaluators[0].replace_policy(
                parse_policy(POLICY, name="vo-v2")
            ),
        )
        assert snapshot["revoked"] >= 1
        assert snapshot["miss_reasons"]["epoch"] >= 1

    def test_local_policy_replacement_revokes(self):
        local = parse_policy(f"{PREFIX}:\n    &(action!=NULL)", name="local")
        service = build_service(
            policies=(parse_policy(POLICY, name="vo"), local)
        )
        snapshot = self.bumped_snapshot(
            service,
            lambda s: s.combined_evaluator.evaluators[1].replace_policy(
                parse_policy(f"{PREFIX}:\n    &(action!=NULL)", name="local-v2")
            ),
        )
        assert snapshot["revoked"] >= 1

    def test_gridmap_change_revokes(self):
        service = build_service()
        snapshot = self.bumped_snapshot(
            service,
            lambda s: s.gridmap.add(f"{PREFIX}/CN=Mallory", "mallory"),
        )
        assert snapshot["revoked"] >= 1

    def test_policy_change_that_removes_the_grant_denies(self):
        """The teeth of fail-closed: after the VO drops the grant, the
        held capability must not keep answering PERMIT."""
        service = build_service()
        client = client_for(service)
        contact = client.submit(RSL).contact
        assert client.status(contact).code is GramErrorCode.SUCCESS
        service.combined_evaluator.evaluators[0].replace_policy(
            parse_policy(
                f"{PREFIX}:\n    &(action=start)(executable=sim)(count<4)",
                name="vo-no-info",
            )
        )
        denied = client.status(contact)
        assert denied.code is GramErrorCode.AUTHORIZATION_DENIED


class TestShardedCapabilities:
    def test_shards_share_one_signing_key(self):
        service = build_sharded(shards=4)
        keys = {shard.capability.issuer.key for shard in service.shards}
        assert len(keys) == 1

    def test_broadcast_epoch_bound_into_every_token(self):
        service = build_sharded(shards=2)
        for shard in service.shards:
            names = [name for name, _ in shard.capability.issuer.epoch_sources]
            assert "broadcast" in names

    def test_fast_path_works_per_shard(self):
        service = build_sharded(shards=4)
        clients = [
            client_for(service, f"{PREFIX}/CN=User {i:03d}", f"u{i:03d}")
            for i in range(8)
        ]
        contacts = [client.submit(RSL).contact for client in clients]
        for client, contact in zip(clients, contacts):
            for _ in range(3):
                assert client.status(contact).code is GramErrorCode.SUCCESS
        total_hits = sum(
            shard.capability.snapshot()["hits"] for shard in service.shards
        )
        assert total_hits >= 16

    def test_bump_policy_epoch_revokes_on_every_shard(self):
        """PR 6's EpochBroadcast is bound into every token: one
        service-wide bump revokes outstanding capabilities on every
        shard before the next validate."""
        service = build_sharded(shards=4)
        clients = [
            client_for(service, f"{PREFIX}/CN=User {i:03d}", f"u{i:03d}")
            for i in range(8)
        ]
        contacts = [client.submit(RSL).contact for client in clients]
        for client, contact in zip(clients, contacts):
            client.status(contact)
        populated = [
            shard for shard in service.shards
            if shard.capability.snapshot()["minted"] > 0
        ]
        assert len(populated) > 1  # users actually spread over shards

        service.bump_policy_epoch()

        for client, contact in zip(clients, contacts):
            assert client.status(contact).code is GramErrorCode.SUCCESS
        for shard in populated:
            snapshot = shard.capability.snapshot()
            assert snapshot["revoked"] >= 1, (
                f"shard {shard.shard_index} did not revoke: {snapshot}"
            )
            assert snapshot["miss_reasons"]["epoch"] >= 1

    def test_single_shard_sharded_service_matches_flat(self):
        service = build_sharded(shards=1)
        client = client_for(service)
        contact = client.submit(RSL).contact
        client.status(contact)
        client.status(contact)
        client.status(contact)
        assert service.shards[0].capability.snapshot()["hits"] >= 2


class TestTokenPortability:
    def test_token_minted_on_one_shard_verifies_on_another(self):
        service = build_sharded(shards=4)
        client = client_for(service, f"{PREFIX}/CN=User 000", "u000")
        contact = client.submit(RSL).contact
        owner_shard = service.shard_of(f"{PREFIX}/CN=User 000")
        token = (
            service.shards[owner_shard]
            .shard_state.job_managers[contact.job_id]
            .capability
        )
        assert token is not None
        other = service.shards[(owner_shard + 1) % len(service.shards)]
        assert token.verify_signature(other.capability.issuer.key)
