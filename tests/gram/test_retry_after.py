"""``RESOURCE_BUSY`` retry hints and client-side backoff.

Admission rejections now carry ``retry_after`` — advisory sim-clock
seconds derived from how far over its bound the admission state is —
and :class:`~repro.gram.client.GramClient` honours the hint by
answering retries locally until the window elapses.
"""

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.dispatch import ShardedGramService
from repro.gram.lifecycle import NOMINAL_DRAIN_SECONDS
from repro.gram.protocol import GramErrorCode, GramResponse
from repro.gram.service import GramService, ServiceConfig

ORG = "/O=Grid/OU=busy.example.org"
ALICE = f"{ORG}/CN=Alice"
BOB = f"{ORG}/CN=Bob"

POLICY = f"""
{ORG}:
    &(action=start)(executable=sim)
    &(action=cancel)(jobowner=self)
"""

RSL = "&(executable=sim)(count=1)(runtime=50)"


def build_service(**overrides):
    defaults = dict(policies=(parse_policy(POLICY, name="vo"),))
    defaults.update(overrides)
    return GramService(ServiceConfig(**defaults))


class TestRetryAfterHint:
    def test_user_cap_rejection_carries_the_hint(self):
        service = build_service(max_jobs_per_user=1)
        client = GramClient(
            service.add_user(ALICE, "alice"), service.gatekeeper
        )
        assert client.submit(RSL).ok
        busy = client.submit(RSL)
        assert busy.code is GramErrorCode.RESOURCE_BUSY
        assert busy.retry_after == NOMINAL_DRAIN_SECONDS

    def test_global_cap_rejection_carries_the_hint(self):
        service = build_service(max_active_jmis=1)
        alice = GramClient(
            service.add_user(ALICE, "alice"), service.gatekeeper
        )
        bob = GramClient(service.add_user(BOB, "bob"), service.gatekeeper)
        assert alice.submit(RSL).ok
        busy = bob.submit(RSL)
        assert busy.code is GramErrorCode.RESOURCE_BUSY
        assert busy.retry_after is not None
        assert busy.retry_after >= NOMINAL_DRAIN_SECONDS

    def test_hint_survives_the_wire(self):
        response = GramResponse(
            code=GramErrorCode.RESOURCE_BUSY,
            message="at capacity",
            retry_after=3.5,
        )
        assert GramResponse.from_wire(response.to_wire()).retry_after == 3.5

    def test_hint_defaults_to_none(self):
        ok = GramResponse(code=GramErrorCode.SUCCESS)
        assert ok.retry_after is None
        assert GramResponse.from_wire(ok.to_wire()).retry_after is None


class TestClientBackoff:
    def test_retries_inside_the_window_never_leave_the_client(self):
        service = build_service(max_jobs_per_user=1)
        client = GramClient(
            service.add_user(ALICE, "alice"), service.gatekeeper
        )
        assert client.submit(RSL).ok
        busy = client.submit(RSL)
        assert busy.code is GramErrorCode.RESOURCE_BUSY

        checks_before = service.shard_state.admission.rejected_user
        suppressed = client.submit(RSL)
        assert suppressed.code is GramErrorCode.RESOURCE_BUSY
        assert "suppressed" in suppressed.message
        assert client.suppressed_retries == 1
        # The gatekeeper never saw the retry.
        assert service.shard_state.admission.rejected_user == checks_before

    def test_window_expiry_reopens_the_path(self):
        service = build_service(max_jobs_per_user=1)
        client = GramClient(
            service.add_user(ALICE, "alice"), service.gatekeeper
        )
        assert client.submit(RSL).ok
        busy = client.submit(RSL)
        service.run(busy.retry_after)
        # The long-running job still holds the slot, so the retry is
        # rejected again — but by the *service* this time.
        retried = client.submit(RSL)
        assert retried.code is GramErrorCode.RESOURCE_BUSY
        assert "suppressed" not in retried.message
        assert client.suppressed_retries == 0

    def test_backoff_through_the_sharded_gatekeeper(self):
        service = ShardedGramService(
            ServiceConfig(
                policies=(parse_policy(POLICY, name="vo"),),
                max_jobs_per_user=1,
                shards=2,
                dispatch="inline",
            )
        )
        client = GramClient(
            service.add_user(ALICE, "alice"), service.gatekeeper
        )
        assert client.submit(RSL).ok
        busy = client.submit(RSL)
        assert busy.code is GramErrorCode.RESOURCE_BUSY
        assert busy.retry_after is not None
        client.submit(RSL)
        # ShardedGatekeeper exposes a clock, so backoff works there too.
        assert client.suppressed_retries == 1
