"""Differential check: sharding must not change authorization outcomes.

The same seeded request stream is driven through a plain single-shard
``GramService`` and through ``ShardedGramService`` at four shards on
the thread-pool executor.  Contacts and job ids differ (the global
contact counter is consumed in a different order), so the comparison
is over what the paper cares about: the per-request decision — code,
reasons, and observed job state.
"""

import random

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.dispatch import ShardedGramService
from repro.gram.service import GramService, ServiceConfig

PREFIX = "/O=Grid/O=Globus/OU=diff.example.org"

POLICY = f"""
{PREFIX}:
    &(action=start)(executable=sim)(count<4)
    &(action=cancel)(jobowner=self)
    &(action=information)(jobtag=DIFF)
"""

USERS = 12
CYCLES = 60
SEED = 2026


def build_config(**overrides):
    defaults = dict(
        host="diff.example.org",
        # Ample capacity: no queueing anywhere, so job states depend
        # only on the stream, not on which cluster a shard owns.
        node_count=32,
        cpus_per_node=4,
        policies=(parse_policy(POLICY, name="vo"),),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def enroll(service, facade):
    return [
        GramClient(
            service.add_user(f"{PREFIX}/CN=User {i:03d}", f"d{i:03d}"), facade
        )
        for i in range(USERS)
    ]


def drive(service, facade):
    """One deterministic stream of submits, polls and cancels.

    Returns the observable outcome of every request, in stream order.
    """
    clients = enroll(service, facade)
    rng = random.Random(SEED)
    outcomes = []
    contacts = []  # (owner_index, contact) of accepted jobs

    def record(kind, response):
        outcomes.append(
            (
                kind,
                response.code.name,
                tuple(response.reasons),
                response.state.value if response.state else None,
            )
        )

    for cycle in range(CYCLES):
        owner = cycle % USERS
        count = rng.choice((1, 2, 4, 8))  # count>=4 is denied
        response = clients[owner].submit(
            f"&(executable=sim)(count={count})(runtime=12)(jobtag=DIFF)"
        )
        record("submit", response)
        if response.ok:
            contacts.append((owner, response.contact))
        if contacts:
            target = rng.randrange(len(contacts))
            job_owner, contact = contacts[target]
            # A peer may poll (jobtag grant) but never cancel.
            peer = (job_owner + 1 + rng.randrange(USERS - 1)) % USERS
            record("peer-status", clients[peer].status(contact))
            if rng.random() < 0.25:
                record("peer-cancel", clients[peer].cancel(contact))
                record("owner-cancel", clients[job_owner].cancel(contact))
                contacts.pop(target)
        service.run(1.0)
    service.run(60.0)
    for job_owner, contact in contacts:
        record("final-status", clients[job_owner].status(contact))
    return outcomes


def test_sharded_outcomes_match_single_shard():
    plain = GramService(build_config())
    baseline = drive(plain, plain.gatekeeper)

    with ShardedGramService(
        build_config(shards=4, dispatch="thread")
    ) as sharded:
        outcomes = drive(sharded, sharded.gatekeeper)

    assert len(baseline) == len(outcomes)
    for index, (expected, got) in enumerate(zip(baseline, outcomes)):
        assert got == expected, f"request #{index}: {got!r} != {expected!r}"

    # Sanity: the stream exercised every outcome class.
    kinds = {(kind, code) for kind, code, _, _ in baseline}
    assert ("submit", "SUCCESS") in kinds
    assert ("submit", "AUTHORIZATION_DENIED") in kinds
    assert ("peer-status", "SUCCESS") in kinds
    assert ("peer-cancel", "AUTHORIZATION_DENIED") in kinds
    assert ("owner-cancel", "SUCCESS") in kinds


def test_inline_single_shard_is_byte_identical_to_plain():
    """shards=1 + inline dispatch is the plain service, observably."""
    import itertools

    from repro.gram import protocol

    protocol._contact_counter = itertools.count(1)
    plain = GramService(build_config())
    baseline = drive(plain, plain.gatekeeper)
    plain_contacts = sorted(plain.gatekeeper.completed._records)

    protocol._contact_counter = itertools.count(1)
    sharded = ShardedGramService(build_config(shards=1, dispatch="inline"))
    outcomes = drive(sharded, sharded.gatekeeper)
    sharded_contacts = sorted(sharded.shards[0].gatekeeper.completed._records)
    sharded.close()

    assert outcomes == baseline
    # With the counter reset, even job ids line up.
    assert sharded_contacts == plain_contacts
