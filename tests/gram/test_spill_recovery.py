"""Completed-job spill: durability, crash recovery, restart differential."""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.lifecycle import CompletedJobRecord, CompletedJobStore
from repro.gram.protocol import GramErrorCode, GramJobState, JobContact
from repro.gram.spill import (
    CompletedJobSpill,
    record_from_wire,
    record_to_wire,
    shard_spill_path,
)
from repro.gram.service import GramService, ServiceConfig
from repro.gsi.credentials import CertificateAuthority
from repro.gsi.names import DistinguishedName
from repro.rsl.parser import parse_specification
from repro.sim.clock import Clock
from repro.workloads.recovery import (
    RecoveryDifferentialConfig,
    run_recovery_differential,
)

ORG = "/O=Grid/OU=spill.example.org"
ALICE = f"{ORG}/CN=Alice"
BOB = f"{ORG}/CN=Bob"

POLICY = f"""
{ORG}:
    &(action=start)(executable=sim)
    &(action=cancel)(jobowner=self)
    &(action=information)(jobtag=SPILL)
"""

RSL = "&(executable=sim)(count=1)(runtime=5)(jobtag=SPILL)"


def make_record(job_id="1", finished_at=10.0, capability=None):
    return CompletedJobRecord(
        contact=JobContact(host="spill.example.org", job_id=job_id),
        owner=DistinguishedName.parse(ALICE),
        state=GramJobState.DONE,
        exit_reason="completed",
        finished_at=finished_at,
        account="alice",
        spec=parse_specification(RSL),
        capability=capability,
    )


class TestWireRoundTrip:
    def test_record_round_trips(self):
        record = make_record()
        again = record_from_wire(record_to_wire(record))
        assert again.job_id == record.job_id
        assert str(again.owner) == str(record.owner)
        assert again.state is record.state
        assert again.finished_at == record.finished_at
        assert str(again.spec) == str(record.spec)
        assert again.capability is None

    def test_capability_token_round_trips(self):
        from repro.core.capability import CapabilityToken, spec_digest

        key = b"spill-test-key"
        token = CapabilityToken(
            token_id="cap-1",
            subject=ALICE,
            actions=("start",),
            jobtag="SPILL",
            jobowner=ALICE,
            spec_digest=spec_digest(parse_specification(RSL)),
            epochs=(("policy", "1"),),
            issued_at=0.0,
            expires_at=100.0,
        ).signed(key)
        record = make_record(capability=token)
        again = record_from_wire(record_to_wire(record))
        assert again.capability == token
        assert again.capability.verify_signature(key)


class TestSpillReplay:
    def test_missing_file_recovers_empty(self, tmp_path):
        spill = CompletedJobSpill(str(tmp_path / "never-written.jsonl"))
        result = spill.recover()
        assert result.records == []
        assert result.skipped_lines == 0

    def test_inserts_replay_in_completion_order(self, tmp_path):
        spill = CompletedJobSpill(str(tmp_path / "s.jsonl"))
        spill.append_insert(make_record("7", finished_at=30.0))
        spill.append_insert(make_record("3", finished_at=10.0))
        result = spill.recover()
        assert [r.job_id for r in result.records] == ["3", "7"]
        assert result.last_at == 30.0

    def test_tombstones_drop_records(self, tmp_path):
        spill = CompletedJobSpill(str(tmp_path / "s.jsonl"))
        spill.append_insert(make_record("1", finished_at=10.0))
        spill.append_insert(make_record("2", finished_at=20.0))
        spill.append_evict("1", "count", at=25.0)
        result = spill.recover()
        assert [r.job_id for r in result.records] == ["2"]
        assert result.evicted == 1
        assert result.last_at == 25.0

    def test_crash_mid_append_skips_truncated_tail(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        spill = CompletedJobSpill(path)
        spill.append_insert(make_record("1", finished_at=10.0))
        spill.append_insert(make_record("2", finished_at=20.0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "insert", "job_id": "3", "own')  # crash

        result = CompletedJobSpill(path).recover()
        assert [r.job_id for r in result.records] == ["1", "2"]
        assert result.skipped_lines == 1
        assert result.replayed_lines == 2

    def test_garbled_middle_line_skipped_rest_survives(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        spill = CompletedJobSpill(path)
        spill.append_insert(make_record("1", finished_at=10.0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\x00\x01 not json at all\n")
            handle.write('{"kind": "wat", "job_id": "9"}\n')
        spill.append_insert(make_record("2", finished_at=20.0))

        result = CompletedJobSpill(path).recover()
        assert [r.job_id for r in result.records] == ["1", "2"]
        assert result.skipped_lines == 2


class TestCompaction:
    def test_below_min_lines_never_compacts(self, tmp_path):
        spill = CompletedJobSpill(
            str(tmp_path / "s.jsonl"), compact_min_lines=10
        )
        for index in range(4):
            spill.append_insert(make_record(str(index)))
            spill.append_evict(str(index), "count", at=1.0)
        assert spill.lines == 8
        assert not spill.should_compact(0)

    def test_tombstone_dominance_triggers_compaction(self, tmp_path):
        spill = CompletedJobSpill(
            str(tmp_path / "s.jsonl"), compact_min_lines=4, compact_ratio=2.0
        )
        for index in range(6):
            spill.append_insert(make_record(str(index), finished_at=index))
            if index < 5:
                spill.append_evict(str(index), "count", at=float(index))
        live = [make_record("5", finished_at=5.0)]
        assert spill.should_compact(len(live))
        dropped = spill.compact(live)
        assert dropped == 10
        assert spill.lines == 1
        assert spill.compactions == 1

        result = spill.recover()
        assert [r.job_id for r in result.records] == ["5"]

    def test_store_compacts_through_eviction_churn(self, tmp_path):
        clock = Clock()
        spill = CompletedJobSpill(
            str(tmp_path / "s.jsonl"), compact_min_lines=8, compact_ratio=2.0
        )
        store = CompletedJobStore(retention=2, clock=clock, spill=spill)
        for index in range(20):
            store.add(make_record(str(index), finished_at=float(index)))
        assert spill.compactions >= 1
        result = CompletedJobSpill(spill.path).recover()
        assert len(result.records) == 2

    def test_invalid_ratio_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CompletedJobSpill(str(tmp_path / "s.jsonl"), compact_ratio=0.5)


class TestShardSpillPath:
    def test_single_shard_uses_base_path(self):
        assert shard_spill_path("/tmp/s.jsonl", 0, 1) == "/tmp/s.jsonl"

    def test_sharded_paths_are_deterministic(self):
        assert shard_spill_path("/tmp/s.jsonl", 2, 4) == "/tmp/s.jsonl.shard2"
        assert shard_spill_path("/tmp/s.jsonl", 2, 4) == shard_spill_path(
            "/tmp/s.jsonl", 2, 4
        )


def build_service(spill_path, ca, **overrides):
    defaults = dict(
        host="spill.example.org",
        policies=(parse_policy(POLICY, name="vo"),),
        capability_grants=True,
        spill_path=spill_path,
    )
    defaults.update(overrides)
    return GramService(ServiceConfig(**defaults), ca=ca)


class TestServiceRestart:
    def test_restart_recovers_completed_records(self, tmp_path):
        path = str(tmp_path / "spill.jsonl")
        ca = CertificateAuthority("/O=Grid/CN=Spill CA")
        service = build_service(path, ca)
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        contact = alice.submit(RSL).contact
        service.run(30.0)  # complete + reap
        assert service.gatekeeper.completed.get(contact.job_id) is not None

        revived = build_service(path, ca)
        assert revived.recovery is not None
        assert len(revived.recovery.records) == 1
        record = revived.gatekeeper.completed.get(contact.job_id)
        assert record is not None
        assert record.state is GramJobState.DONE
        assert record.capability is not None

    def test_restart_restores_the_clock(self, tmp_path):
        path = str(tmp_path / "spill.jsonl")
        ca = CertificateAuthority("/O=Grid/CN=Spill CA")
        service = build_service(path, ca)
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        alice.submit(RSL)
        service.run(30.0)
        finished_at = service.gatekeeper.completed.live_records()[0].finished_at

        revived = build_service(path, ca)
        assert revived.clock.now == finished_at

    def test_recovered_service_answers_post_reap_requests(self, tmp_path):
        path = str(tmp_path / "spill.jsonl")
        ca = CertificateAuthority("/O=Grid/CN=Spill CA")
        service = build_service(path, ca)
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        bob = GramClient(service.add_user(BOB, "bob"), service.gatekeeper)
        contact = alice.submit(RSL).contact
        service.run(30.0)

        revived = build_service(path, ca)
        revived.add_user(ALICE, "alice")
        revived.add_user(BOB, "bob")
        status = revived.gatekeeper.manage(
            alice.credential, contact, "information"
        )
        assert status.code is GramErrorCode.SUCCESS
        assert status.state is GramJobState.DONE
        # Peer information is granted by jobtag; peer cancel is not.
        assert (
            revived.gatekeeper.manage(
                bob.credential, contact, "information"
            ).code
            is GramErrorCode.SUCCESS
        )
        assert (
            revived.gatekeeper.manage(bob.credential, contact, "cancel").code
            is GramErrorCode.AUTHORIZATION_DENIED
        )

    def test_recovery_metrics_counted(self, tmp_path):
        path = str(tmp_path / "spill.jsonl")
        ca = CertificateAuthority("/O=Grid/CN=Spill CA")
        service = build_service(path, ca)
        alice = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        alice.submit(RSL)
        service.run(30.0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{garbled")  # crash tail

        revived = build_service(path, ca)
        registry = revived.telemetry.registry
        assert registry.value("gram_recovery_records_total") == 1.0
        assert registry.value("gram_recovery_skipped_lines_total") == 1.0
        assert revived.recovery.skipped_lines == 1


class TestRecoveryDifferential:
    """The acceptance gate: recovered answers ≥10k requests identically."""

    def test_flat_differential_zero_divergences(self, tmp_path):
        stats = run_recovery_differential(
            RecoveryDifferentialConfig(
                spill_path=str(tmp_path / "flat.jsonl"),
                jobs=48,
                requests=10_000,
            )
        )
        assert stats.completed == 48
        assert stats.recovered_records == 48
        assert stats.requests == 10_000
        assert stats.divergences == 0, stats.examples
        assert stats.capability_checks == 48
        assert stats.capability_divergences == 0, stats.examples

    def test_sharded_differential_zero_divergences(self, tmp_path):
        stats = run_recovery_differential(
            RecoveryDifferentialConfig(
                spill_path=str(tmp_path / "sharded.jsonl"),
                jobs=48,
                requests=10_000,
                shards=4,
            )
        )
        assert stats.recovered_records == 48
        assert stats.requests == 10_000
        assert stats.divergences == 0, stats.examples
        assert stats.capability_divergences == 0, stats.examples

    def test_differential_survives_a_crash_tail(self, tmp_path):
        path = str(tmp_path / "crashed.jsonl")
        config = RecoveryDifferentialConfig(
            spill_path=path, jobs=12, requests=1_000
        )
        # Populate once to learn the file, then garble its tail the
        # way a mid-append crash would.
        stats = run_recovery_differential(config)
        assert stats.skipped_lines == 0
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "insert", "job_')
        spill = CompletedJobSpill(path)
        result = spill.recover()
        assert result.skipped_lines == 1
        assert len(result.records) == 12
