"""Every decision through the Job Manager carries a DecisionContext.

The acceptance property of the decision pipeline: whatever the entry
point (submit, cancel, status, signal), whatever the placement (Job
Manager PEP or the §6.2 Gatekeeper PEP), the response carries a
:class:`~repro.core.pipeline.DecisionContext` explaining the decision
— per-stage timings, contributing policy sources, cache status.
"""

import pytest

from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.jobmanager import AuthorizationMode
from repro.gram.protocol import GramErrorCode, GramResponse
from repro.gram.service import GramService, ServiceConfig

from tests.conftest import BO, KATE

VO_POLICY = f"""
&/O=Grid/O=Globus/OU=mcs.anl.gov:
    (action = start)(jobtag != NULL)
{BO}:
    &(action=start)(executable=test2)(jobtag=NFC)(count<4)
    &(action=information)(jobowner=self)
    &(action=signal)(jobowner=self)
{KATE}:
    &(action=start)(jobtag=NFC)(count<=32)
    &(action=cancel)(jobtag=NFC)
"""

LOCAL_POLICY = """
/O=Grid/O=Globus/OU=mcs.anl.gov:
    &(action=start)(count<=32)
    &(action=cancel)
    &(action=information)
    &(action=signal)
"""

BO_START = "&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)(runtime=100)"


def build_service(**overrides):
    config = ServiceConfig(
        policies=(
            parse_policy(VO_POLICY, name="vo"),
            parse_policy(LOCAL_POLICY, name="local"),
        ),
        **overrides,
    )
    return GramService(config)


@pytest.fixture
def service():
    return build_service()


@pytest.fixture
def bo(service):
    return GramClient(service.add_user(BO, "boliu"), service.gatekeeper)


@pytest.fixture
def kate(service):
    return GramClient(service.add_user(KATE, "keahey"), service.gatekeeper)


def assert_explained(response: GramResponse, action: str):
    """The response's context has timings and policy provenance."""
    context = response.decision_context
    assert context is not None, f"no decision context on {response}"
    assert context.action == action
    assert context.effect is not None
    assert context.stages, "no per-stage timings recorded"
    assert all(stage.duration >= 0.0 for stage in context.stages)
    assert "pep" in context.stage_names
    assert set(context.source_names) >= {"vo", "local"} or context.sources
    return context


class TestJobManagerPlacement:
    def test_submit_carries_context(self, bo):
        response = bo.submit(BO_START)
        assert response.ok
        context = assert_explained(response, "start")
        assert context.source_names == ("vo", "local")
        assert context.placement == "job-manager"

    def test_denied_submit_carries_context(self, bo):
        response = bo.submit("&(executable=evil)(jobtag=NFC)(count=1)")
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        context = assert_explained(response, "start")
        assert context.effect.value == "deny"

    def test_status_carries_context(self, service, bo):
        submitted = bo.submit(BO_START)
        service.run(10.0)
        response = bo.status(submitted.contact)
        assert response.ok
        assert_explained(response, "information")

    def test_cancel_carries_context(self, service, bo, kate):
        submitted = bo.submit(BO_START)
        service.run(5.0)
        response = kate.cancel(submitted.contact)
        assert response.ok
        context = assert_explained(response, "cancel")
        assert context.requester == KATE
        assert context.jobowner == BO

    def test_signal_carries_context(self, service, bo):
        submitted = bo.submit(BO_START)
        response = bo.signal(submitted.contact, priority=3)
        assert response.ok
        assert_explained(response, "signal")

    def test_denied_management_carries_context(self, service, bo, kate):
        submitted = bo.submit(BO_START)
        response = bo.cancel(submitted.contact)  # Bo has no cancel grant
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        context = assert_explained(response, "cancel")
        assert context.effect.value == "deny"

    def test_contexts_are_distinct_per_decision(self, service, bo):
        first = bo.submit(BO_START)
        second = bo.status(first.contact)
        assert (
            first.decision_context.request_id
            != second.decision_context.request_id
        )


class TestGatekeeperPlacement:
    def test_gatekeeper_pep_contexts(self):
        service = build_service(pep_in_gatekeeper=True)
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        response = bo.submit(BO_START)
        assert response.ok
        # The returned context is the innermost (Job Manager) decision;
        # the Gatekeeper PEP recorded its own decision in its audit log.
        assert response.decision_context.placement == "job-manager"
        gk_records = service.gatekeeper_pep.audit_log
        assert gk_records
        assert gk_records[-1].context.placement == "gatekeeper"
        assert gk_records[-1].context.stages

    def test_gatekeeper_denial_carries_gatekeeper_context(self):
        service = build_service(pep_in_gatekeeper=True)
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        response = bo.submit("&(executable=evil)(jobtag=NFC)(count=1)")
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        context = response.decision_context
        assert context is not None
        assert context.placement == "gatekeeper"
        assert context.effect.value == "deny"
        assert context.stages


class TestLegacyMode:
    def test_legacy_mode_has_no_pipeline(self):
        service = GramService(ServiceConfig(mode=AuthorizationMode.LEGACY))
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        response = bo.submit(BO_START)
        assert response.ok
        assert response.decision_context is None


class TestWireTransparency:
    def test_context_survives_the_wire(self, bo):
        response = bo.submit(BO_START)
        again = GramResponse.from_wire(response.to_wire())
        context = again.decision_context
        assert context is not None
        assert context.request_id == response.decision_context.request_id
        assert context.stage_names == response.decision_context.stage_names
        assert context.source_names == response.decision_context.source_names

    def test_wire_form_without_context_is_unchanged(self):
        service = GramService(ServiceConfig(mode=AuthorizationMode.LEGACY))
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        response = bo.submit(BO_START)
        assert "decision_context" not in response.to_wire()


class TestServiceDecisionCache:
    def test_poll_loop_hits_the_cache(self, monkeypatch):
        service = build_service(decision_cache=True)
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        submitted = bo.submit(BO_START)
        first_poll = bo.status(submitted.contact)
        second_poll = bo.status(submitted.contact)
        assert first_poll.decision_context.cache_status == "miss"
        assert second_poll.decision_context.cache_status == "hit"
        assert service.pep.cache.hits >= 1

    def test_tracing_retains_every_decision(self):
        service = build_service(trace_decisions=True)
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        submitted = bo.submit(BO_START)
        bo.status(submitted.contact)
        assert len(service.pep.tracing) >= 2
        jsonl = service.pep.tracing.to_jsonl()
        assert '"start"' in jsonl and '"information"' in jsonl
