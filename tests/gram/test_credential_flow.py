"""Credential propagation into the authorization callout.

The paper's callout receives "the credential of the user requesting a
remote job [and] the credential of the user who originally started
the job" — these tests pin that the extended GRAM actually delivers
credentials to the PEP, and that the CAS callout consumes them.
"""


from repro.core.callout import GRAM_AUTHZ_CALLOUT
from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig
from repro.vo.cas import CASServer, attach_cas_policy, cas_callout
from repro.vo.organization import VirtualOrganization
from repro.workloads.scenarios import FIGURE3_POLICY_TEXT

from tests.conftest import BO, KATE

GOOD = "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(runtime=50)"


class TestCredentialReachesTheCallout:
    def test_start_request_carries_submitter_credential(self):
        policy = parse_policy(f"{BO}: &(action=start)(jobtag!=NULL)", name="vo")
        service = GramService(ServiceConfig(policies=(policy,)))
        seen = []
        original = service.registry._callouts[GRAM_AUTHZ_CALLOUT][0][1]

        def spy(request):
            seen.append(request.credential)
            return original(request)

        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(GRAM_AUTHZ_CALLOUT, spy)

        credential = service.add_user(BO, "boliu")
        GramClient(credential, service.gatekeeper).submit(
            "&(executable=x)(jobtag=T)(runtime=5)"
        )
        assert len(seen) == 1
        assert seen[0] is credential

    def test_management_request_carries_requester_credential(self):
        policy = parse_policy(
            f"""
            {BO}: &(action=start)(jobtag!=NULL)
            {KATE}: &(action=cancel)(jobtag=NFC)
            """,
            name="vo",
        )
        service = GramService(ServiceConfig(policies=(policy,)))
        bo_credential = service.add_user(BO, "boliu")
        kate_credential = service.add_user(KATE, "keahey")
        bo = GramClient(bo_credential, service.gatekeeper)
        kate = GramClient(kate_credential, service.gatekeeper)
        submitted = bo.submit("&(executable=x)(jobtag=NFC)(runtime=50)")

        seen = []
        original = service.registry._callouts[GRAM_AUTHZ_CALLOUT][0][1]

        def spy(request):
            seen.append(request.credential)
            return original(request)

        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(GRAM_AUTHZ_CALLOUT, spy)
        kate.cancel(submitted.contact)
        assert seen == [kate_credential]


class TestCASAsFirstClassCallout:
    def build(self):
        service = GramService(ServiceConfig())
        vo = VirtualOrganization("NFC")
        vo.add_member(BO)
        cas_credential = service.ca.issue("/O=Grid/CN=CAS", now=0.0)
        cas = CASServer(
            vo, cas_credential, parse_policy(FIGURE3_POLICY_TEXT, name="vo")
        )
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(
            GRAM_AUTHZ_CALLOUT,
            cas_callout(cas_credential.key_pair.public, service.clock),
        )
        return service, cas

    def test_cas_proxy_is_sufficient(self):
        service, cas = self.build()
        identity = service.add_user(BO, "boliu")
        proxy = attach_cas_policy(identity, cas.issue(identity, now=0.0), now=0.0)
        client = GramClient(proxy, service.gatekeeper)
        assert client.submit(GOOD).ok

    def test_cas_policy_still_constrains(self):
        service, cas = self.build()
        identity = service.add_user(BO, "boliu")
        proxy = attach_cas_policy(identity, cas.issue(identity, now=0.0), now=0.0)
        client = GramClient(proxy, service.gatekeeper)
        response = client.submit("&(executable=rogue)(jobtag=ADS)(count=1)")
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_plain_credential_is_denied_not_crashed(self):
        service, _ = self.build()
        identity = service.add_user(BO, "boliu")
        client = GramClient(identity, service.gatekeeper)
        response = client.submit(GOOD)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_expired_cas_policy_denied(self):
        service, cas = self.build()
        identity = service.add_user(BO, "boliu")
        proxy = attach_cas_policy(
            identity, cas.issue(identity, now=0.0, lifetime=100.0), now=0.0
        )
        client = GramClient(proxy, service.gatekeeper)
        service.run(200.0)
        response = client.submit(GOOD)
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert any("not valid" in reason for reason in response.reasons)
