"""GRAM protocol vocabulary."""

import pytest

from repro.gram.protocol import (
    GramErrorCode,
    GramJobState,
    GramResponse,
    JobContact,
    TraceRecorder,
)


class TestErrorCodes:
    def test_authorization_errors_classified(self):
        assert GramErrorCode.AUTHORIZATION_DENIED.is_authorization_error
        assert GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE.is_authorization_error
        assert not GramErrorCode.BAD_RSL.is_authorization_error
        assert not GramErrorCode.NOT_JOB_OWNER.is_authorization_error

    def test_success_is_zero(self):
        assert GramErrorCode.SUCCESS.value == 0


class TestJobStates:
    def test_terminal_states(self):
        assert GramJobState.DONE.is_terminal
        assert GramJobState.FAILED.is_terminal
        assert not GramJobState.ACTIVE.is_terminal
        assert not GramJobState.SUSPENDED.is_terminal


class TestJobContact:
    def test_fresh_contacts_are_unique(self):
        a = JobContact.fresh("host.example.org")
        b = JobContact.fresh("host.example.org")
        assert a.job_id != b.job_id

    def test_url_shape(self):
        contact = JobContact.fresh("host.example.org")
        assert contact.url.startswith("https://host.example.org:2119/jobmanager/")


class TestGramResponse:
    def test_ok(self):
        assert GramResponse(code=GramErrorCode.SUCCESS).ok
        assert not GramResponse(code=GramErrorCode.BAD_RSL).ok

    def test_str_includes_reasons(self):
        response = GramResponse(
            code=GramErrorCode.AUTHORIZATION_DENIED,
            message="denied",
            reasons=("over the count limit",),
        )
        text = str(response)
        assert "AUTHORIZATION_DENIED" in text
        assert "over the count limit" in text


class TestWireSerialization:
    def test_full_response_round_trips(self):
        response = GramResponse(
            code=GramErrorCode.AUTHORIZATION_DENIED,
            message="denied",
            reasons=("reason one", "reason two"),
            contact=JobContact(host="h.example.org", job_id="42"),
            state=GramJobState.ACTIVE,
            job_owner="/O=Grid/CN=Owner",
        )
        again = GramResponse.from_wire(response.to_wire())
        assert again == response

    def test_minimal_response_round_trips(self):
        response = GramResponse(code=GramErrorCode.SUCCESS)
        again = GramResponse.from_wire(response.to_wire())
        assert again == response
        assert again.contact is None
        assert again.state is None

    def test_reasons_survive_the_wire(self):
        """The paper's error extension is only real if reasons cross
        the protocol boundary."""
        response = GramResponse(
            code=GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE,
            reasons=("callout crashed",),
        )
        again = GramResponse.from_wire(response.to_wire())
        assert again.reasons == ("callout crashed",)
        assert again.code.is_authorization_error

    def test_garbage_rejected(self):
        from repro.gram.protocol import ProtocolError

        with pytest.raises(ProtocolError):
            GramResponse.from_wire("{not json")
        with pytest.raises(ProtocolError):
            GramResponse.from_wire('{"code": "NO_SUCH_CODE"}')


class TestTraceRecorder:
    def test_records_in_order(self):
        trace = TraceRecorder()
        trace.record("client", "gatekeeper", "submit")
        trace.record("gatekeeper", "job-manager", "spawn")
        assert len(trace) == 2
        assert trace.edges() == (
            ("client", "gatekeeper"),
            ("gatekeeper", "job-manager"),
        )

    def test_clear(self):
        trace = TraceRecorder()
        trace.record("a", "b", "x")
        trace.clear()
        assert len(trace) == 0

    def test_describe_is_readable(self):
        trace = TraceRecorder()
        trace.record("client", "gatekeeper", "submit job request")
        assert "client -> gatekeeper: submit job request" in trace.describe()
