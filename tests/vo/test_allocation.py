"""VO-level coarse allocations enforced by the resource provider."""

import pytest

from repro.core.callout import GRAM_AUTHZ_CALLOUT
from repro.core.parser import parse_policy
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig
from repro.vo.allocation import (
    AllocationMeter,
    VOAllocation,
    allocation_callout,
)
from repro.vo.organization import VirtualOrganization

ORG = "/O=Grid/OU=alloc"
ALICE = f"{ORG}/CN=Alice"
BOB = f"{ORG}/CN=Bob"
OUTSIDER = "/O=Tenant/CN=Other"

POLICY = f"""
{ORG}:
    &(action=start)(executable=sim)(count<=8)
    &(action=cancel)(jobowner=self)
    &(action=information)(jobowner=self)
/O=Tenant:
    &(action=start)(executable=sim)(count<=8)
    &(action=information)(jobowner=self)
"""


def build(budget=None, cap=None):
    service = GramService(
        ServiceConfig(policies=(parse_policy(POLICY, name="vo"),))
    )
    vo = VirtualOrganization("Fusion")
    clients = {}
    account_of = {}
    for identity, account in ((ALICE, "alice"), (BOB, "bob")):
        credential = service.add_user(identity, account)
        vo.add_member(identity)
        account_of[identity] = account
        clients[identity] = GramClient(credential, service.gatekeeper)
    outsider_cred = service.add_user(OUTSIDER, "tenant")
    clients[OUTSIDER] = GramClient(outsider_cred, service.gatekeeper)
    account_of[OUTSIDER] = "tenant"

    allocation = VOAllocation(
        vo=vo, cpu_seconds_budget=budget, concurrent_cpu_cap=cap
    )
    meter = AllocationMeter(allocation, service.scheduler, account_of)
    # Chain: the provider's envelope first, then the fine-grain policy.
    existing = service.registry._callouts[GRAM_AUTHZ_CALLOUT][0][1]
    service.registry.clear(GRAM_AUTHZ_CALLOUT)
    service.registry.register(GRAM_AUTHZ_CALLOUT, allocation_callout(meter))
    service.registry.register(GRAM_AUTHZ_CALLOUT, existing)
    return service, clients, meter


class TestConcurrentCap:
    def test_vo_capped_as_a_whole(self):
        service, clients, _ = build(cap=8)
        assert clients[ALICE].submit("&(executable=sim)(count=4)(runtime=100)").ok
        assert clients[BOB].submit("&(executable=sim)(count=4)(runtime=100)").ok
        third = clients[ALICE].submit("&(executable=sim)(count=4)(runtime=100)")
        assert third.code is GramErrorCode.AUTHORIZATION_DENIED
        assert any("concurrent-CPU cap" in r for r in third.reasons)

    def test_cap_frees_up_when_jobs_finish(self):
        service, clients, _ = build(cap=8)
        clients[ALICE].submit("&(executable=sim)(count=8)(runtime=50)")
        blocked = clients[BOB].submit("&(executable=sim)(count=2)(runtime=10)")
        assert blocked.code is GramErrorCode.AUTHORIZATION_DENIED
        service.run(60.0)
        assert clients[BOB].submit("&(executable=sim)(count=2)(runtime=10)").ok

    def test_other_tenants_unaffected(self):
        service, clients, _ = build(cap=4)
        clients[ALICE].submit("&(executable=sim)(count=4)(runtime=100)")
        # VO is at its cap, but the outsider is not part of it.
        assert clients[OUTSIDER].submit("&(executable=sim)(count=8)(runtime=10)").ok


class TestCpuSecondsBudget:
    def test_budget_exhaustion_blocks_new_starts(self):
        service, clients, meter = build(budget=100.0)
        assert clients[ALICE].submit("&(executable=sim)(count=2)(runtime=50)").ok
        service.run(60.0)  # consumed 100 cpu-seconds
        assert meter.remaining_budget() == pytest.approx(0.0)
        blocked = clients[BOB].submit("&(executable=sim)(count=1)(runtime=10)")
        assert blocked.code is GramErrorCode.AUTHORIZATION_DENIED
        assert any("exhausted" in r for r in blocked.reasons)

    def test_in_flight_consumption_counts(self):
        service, clients, meter = build(budget=1000.0)
        clients[ALICE].submit("&(executable=sim)(count=4)(runtime=100)")
        service.run(50.0)
        # 4 cpus * 50s = 200 consumed so far, still running.
        assert meter.cpu_seconds_used() == pytest.approx(200.0)
        assert meter.remaining_budget() == pytest.approx(800.0)

    def test_unmetered_allocation_never_blocks(self):
        service, clients, meter = build(budget=None)
        for _ in range(5):
            assert clients[ALICE].submit(
                "&(executable=sim)(count=4)(runtime=10)"
            ).ok
            service.run(20.0)
        assert meter.remaining_budget() is None


class TestInteractionWithFineGrainPolicy:
    def test_fine_grain_denial_still_applies_inside_the_envelope(self):
        service, clients, _ = build(cap=32)
        rogue = clients[ALICE].submit("&(executable=rogue)(count=1)")
        assert rogue.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_management_not_gated_by_allocation(self):
        service, clients, _ = build(cap=8)
        submitted = clients[ALICE].submit("&(executable=sim)(count=8)(runtime=100)")
        # Cap is full, but the owner can still query and cancel.
        assert clients[ALICE].status(submitted.contact).ok
        assert clients[ALICE].cancel(submitted.contact).ok
