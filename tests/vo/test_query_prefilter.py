"""Scheduling-time pre-filtering against the reverse authorization index.

A :class:`~repro.vo.federation.VOBroker` with
:meth:`~repro.vo.federation.FederatedDeployment.enable_query_prefilter`
answers *guaranteed* VO denies locally — zero site round-trips — and
must never suppress a submission the forward pipeline would permit.
"""

import pytest

from repro.core.parser import parse_policy
from repro.core.query import QueryEngine
from repro.core.request import AuthorizationRequest
from repro.gram.protocol import GramErrorCode
from repro.obs.spans import Tracer
from repro.rsl.parser import parse_rsl
from repro.vo.federation import FederatedDeployment, VOBroker

ALICE = "/O=Grid/OU=fed/CN=Alice"
BOB = "/O=Grid/OU=fed/CN=Bob"
MALLORY = "/O=Grid/OU=fed/CN=Mallory"

VO_POLICY = f"""
{ALICE}:
    &(action=start)(executable=TRANSP)(count<=8)(jobtag!=NULL)
    &(action=cancel)(jobowner=self)
{BOB}:
    &(action=cancel)(jobowner=self)
"""

JOB = "&(executable=TRANSP)(count=4)(jobtag=NFC)(runtime=50)"
ROGUE = "&(executable=rogue)(count=1)(jobtag=NFC)"


@pytest.fixture
def federation():
    deployment = FederatedDeployment(parse_policy(VO_POLICY, name="vo"))
    deployment.add_site("argonne", node_count=2, cpus_per_node=4)
    deployment.add_site("lbnl", node_count=4, cpus_per_node=4)
    for identity, account in (
        (ALICE, "alice"),
        (BOB, "bob"),
        (MALLORY, "mallory"),
    ):
        deployment.add_member(identity, account)
    deployment.enable_query_prefilter()
    return deployment


def broker_for(federation, identity, account):
    return VOBroker(federation, federation.add_member(identity, account))


class TestPrefilterDenies:
    def test_unknown_subject_never_reaches_a_site(self, federation):
        broker = broker_for(federation, MALLORY, "mallory")
        placement = broker.submit(JOB)
        assert placement.site == "(vo-prefilter)"
        assert placement.attempts == 0
        assert placement.response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert broker.prefiltered == 1

    def test_action_level_deny_short_circuits(self, federation):
        # Bob holds only a cancel grant: start is statically
        # unreachable from his statements.
        broker = broker_for(federation, BOB, "bob")
        placement = broker.submit(JOB)
        assert placement.attempts == 0
        assert "action level" in placement.response.message

    def test_constraint_level_deny_short_circuits(self, federation):
        # Alice may start jobs, but no grant assertion matches a
        # rogue executable — the deep check proves the deny.
        broker = broker_for(federation, ALICE, "alice")
        placement = broker.submit(ROGUE)
        assert placement.attempts == 0
        assert "constraint level" in placement.response.message

    def test_prefilter_metrics_are_counted(self, federation):
        broker = broker_for(federation, MALLORY, "mallory")
        broker.submit(JOB)
        broker.submit(JOB)
        registry = federation.prefilter_registry
        assert (
            registry.value("query_prefilter_checks_total", consumer="broker")
            == 2
        )
        assert (
            registry.value(
                "query_prefilter_denied_total",
                consumer="broker",
                level="subject",
            )
            == 2
        )

    def test_prefilter_emits_span_event(self):
        deployment = FederatedDeployment(parse_policy(VO_POLICY, name="vo"))
        deployment.add_site("argonne")
        deployment.add_member(MALLORY, "mallory")
        tracer = Tracer()
        deployment.enable_query_prefilter(tracer=tracer)
        broker = broker_for(deployment, MALLORY, "mallory")
        broker.submit(JOB)
        traces = tracer.traces
        assert traces, "prefilter should have opened a span"
        events = [e for _, spans in traces for s in spans for e in s.events]
        assert any(e.name == "query-prefilter" for e in events)


class TestDenySafety:
    """The prefilter only drops what forward evaluation also denies."""

    def test_permitted_submission_is_untouched(self, federation):
        broker = broker_for(federation, ALICE, "alice")
        placement = broker.submit(JOB)
        assert placement.ok
        assert placement.attempts >= 1
        assert broker.prefiltered == 0

    def test_every_prefiltered_deny_agrees_with_every_site(self, federation):
        cases = [
            (MALLORY, JOB),
            (BOB, JOB),
            (ALICE, ROGUE),
        ]
        for identity, rsl in cases:
            request = AuthorizationRequest.start(identity, parse_rsl(rsl))
            pre = federation.query_engine.check_request(request, deep=True)
            assert pre.guaranteed_deny, (identity, rsl)
            for site in federation.sites:
                decision = site.service.combined_evaluator.evaluate(request)
                assert not decision.is_permit, (identity, rsl, site.name)

    def test_unparseable_rsl_falls_through_to_the_site(self, federation):
        broker = broker_for(federation, MALLORY, "mallory")
        placement = broker.submit("&(((")
        # Not prefiltered: the site answers BAD_RSL itself.
        assert placement.attempts >= 1
        assert placement.response.code is GramErrorCode.BAD_RSL

    def test_multi_requests_fall_through(self, federation):
        # Multi-requests are authorized per component at the site;
        # the prefilter stays out of the way.
        broker = broker_for(federation, ALICE, "alice")
        placement = broker.submit(f"+({JOB})")
        assert placement.site != "(vo-prefilter)"

    def test_disabled_prefilter_changes_nothing(self):
        deployment = FederatedDeployment(parse_policy(VO_POLICY, name="vo"))
        deployment.add_site("argonne")
        deployment.add_member(MALLORY, "mallory")
        broker = broker_for(deployment, MALLORY, "mallory")
        placement = broker.submit(JOB)
        assert placement.attempts >= 1
        assert placement.site == "argonne"


class TestEngineSharing:
    def test_enable_is_idempotent(self, federation):
        engine = federation.query_engine
        assert federation.enable_query_prefilter() is engine
        assert isinstance(engine, QueryEngine)
