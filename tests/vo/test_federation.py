"""Multi-site federation: one VO policy environment, many resources."""

import pytest

from repro.core.parser import parse_policy
from repro.gram.protocol import GramErrorCode, GramJobState
from repro.vo.federation import FederatedDeployment, VOBroker

ALICE = "/O=Grid/OU=fed/CN=Alice"

VO_POLICY = f"""
{ALICE}:
    &(action=start)(executable=TRANSP)(count<=8)(jobtag!=NULL)
    &(action=cancel)(jobowner=self)
    &(action=information)(jobowner=self)
"""

JOB = "&(executable=TRANSP)(count=8)(jobtag=NFC)(runtime=100)"
ROGUE = "&(executable=rogue)(count=1)(jobtag=NFC)"


@pytest.fixture
def federation():
    deployment = FederatedDeployment(parse_policy(VO_POLICY, name="vo"))
    deployment.add_site("argonne", node_count=2, cpus_per_node=4)
    deployment.add_site("lbnl", node_count=4, cpus_per_node=4)
    deployment.add_member(ALICE, "alice")
    return deployment


@pytest.fixture
def broker(federation):
    credential = federation.add_member(ALICE, "alice")
    return VOBroker(federation, credential)


class TestConsistentPolicyEnvironment:
    def test_policy_denial_is_identical_at_every_site(self, federation):
        """The §1 claim: one consistent policy environment."""
        from repro.gram.client import GramClient

        credential = federation.add_member(ALICE, "alice")
        for site in federation.sites:
            client = GramClient(credential, site.service.gatekeeper)
            response = client.submit(ROGUE)
            assert response.code is GramErrorCode.AUTHORIZATION_DENIED, site.name

    def test_one_credential_works_everywhere(self, federation):
        from repro.gram.client import GramClient

        credential = federation.add_member(ALICE, "alice")
        for site in federation.sites:
            client = GramClient(credential, site.service.gatekeeper)
            assert client.submit(JOB).ok, site.name

    def test_site_local_policy_differs_without_breaking_vo_policy(self):
        deployment = FederatedDeployment(parse_policy(VO_POLICY, name="vo"))
        strict_local = parse_policy(
            "/O=Grid/OU=fed: &(action=start)(count<=2) &(action=cancel) &(action=information)",
            name="strict-site",
        )
        deployment.add_site("open", node_count=4, cpus_per_node=4)
        deployment.add_site("strict", node_count=4, cpus_per_node=4, local_policy=strict_local)
        credential = deployment.add_member(ALICE, "alice")

        from repro.gram.client import GramClient

        open_client = GramClient(
            credential, deployment.site("open").service.gatekeeper
        )
        strict_client = GramClient(
            credential, deployment.site("strict").service.gatekeeper
        )
        big = "&(executable=TRANSP)(count=8)(jobtag=NFC)(runtime=10)"
        assert open_client.submit(big).ok
        assert (
            strict_client.submit(big).code is GramErrorCode.AUTHORIZATION_DENIED
        )


class TestBroker:
    def test_places_on_least_loaded_site(self, federation, broker):
        placement = broker.submit(JOB)
        assert placement.ok
        assert placement.site == "lbnl"  # 16 free CPUs > 8

    def test_falls_through_when_a_site_is_full(self, federation, broker):
        first = broker.submit(JOB)   # lbnl, 8 cpus -> both sites now have 8 free
        second = broker.submit(JOB)  # either site; takes the fuller-free one
        third = broker.submit(JOB)   # remaining capacity
        assert first.ok and second.ok and third.ok
        sites_used = {first.site, second.site, third.site}
        assert sites_used == {"argonne", "lbnl"}

    def test_submission_beyond_capacity_queues(self, federation, broker):
        """Batch semantics: a full federation queues work, it does not
        reject it — only a job that could never fit is refused."""
        for _ in range(3):
            assert broker.submit(JOB).ok
        fourth = broker.submit(JOB)
        assert fourth.ok
        assert fourth.response.state is GramJobState.PENDING
        federation.run(250.0)
        assert broker.status(fourth.response.contact).state is GramJobState.DONE

    def test_impossible_job_is_resource_unavailable_everywhere(self):
        """A policy-compliant job no site can physically fit falls
        through every site and reports RESOURCE_UNAVAILABLE."""
        tiny = FederatedDeployment(parse_policy(VO_POLICY, name="vo"))
        tiny.add_site("small-a", node_count=1, cpus_per_node=2)
        tiny.add_site("small-b", node_count=1, cpus_per_node=4)
        credential = tiny.add_member(ALICE, "alice")
        broker = VOBroker(tiny, credential)
        placement = broker.submit(JOB)  # 8 CPUs, within policy
        assert not placement.ok
        assert placement.response.code is GramErrorCode.RESOURCE_UNAVAILABLE
        # Every site was tried before giving up.
        total_submissions = sum(
            site.service.gatekeeper.submissions for site in tiny.sites
        )
        assert total_submissions == len(tiny.sites)

    def test_policy_denial_not_retried_at_other_sites(self, federation, broker):
        placement = broker.submit(ROGUE)
        assert placement.response.code is GramErrorCode.AUTHORIZATION_DENIED
        # Only the first site was asked: policy is federation-wide.
        total_submissions = sum(
            site.service.gatekeeper.submissions for site in federation.sites
        )
        assert total_submissions == 1

    def test_management_routed_to_the_right_site(self, federation, broker):
        placement = broker.submit(JOB)
        federation.run(10.0)
        status = broker.status(placement.response.contact)
        assert status.ok
        assert status.state is GramJobState.ACTIVE
        cancelled = broker.cancel(placement.response.contact)
        assert cancelled.ok

    def test_jobs_complete_across_the_federation(self, federation, broker):
        placements = [broker.submit(JOB) for _ in range(3)]
        federation.run(150.0)
        for placement in placements:
            response = broker.status(placement.response.contact)
            assert response.state is GramJobState.DONE, placement.site

    def test_placements_recorded(self, federation, broker):
        placement = broker.submit(JOB)
        assert broker.placements() == {
            placement.response.contact.job_id: placement.site
        }


class TestLateSiteJoin:
    def test_members_enrolled_at_sites_added_later(self):
        deployment = FederatedDeployment(parse_policy(VO_POLICY, name="vo"))
        deployment.add_member(ALICE, "alice")
        deployment.add_site("late", node_count=2, cpus_per_node=4)
        from repro.gram.client import GramClient

        credential = deployment.add_member(ALICE, "alice")
        client = GramClient(
            credential, deployment.site("late").service.gatekeeper
        )
        assert client.submit(JOB).ok
