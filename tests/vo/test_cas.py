"""The Community Authorization Service flow."""

import pytest

from repro.core.decision import Effect
from repro.core.request import AuthorizationRequest
from repro.gsi.credentials import CertificateAuthority
from repro.gsi.proxy import delegate
from repro.rsl.parser import parse_specification
from repro.vo.cas import (
    CASPolicySource,
    CASServer,
    SignedPolicy,
    attach_cas_policy,
    extract_cas_policy,
)
from repro.vo.organization import VirtualOrganization
from repro.workloads.scenarios import FIGURE3_POLICY_TEXT
from repro.core.parser import parse_policy

from tests.conftest import BO, KATE, OUTSIDER


@pytest.fixture
def ca():
    return CertificateAuthority("/O=Grid/CN=CA", now=0.0)


@pytest.fixture
def community(ca):
    vo = VirtualOrganization("NFC")
    vo.add_member(BO, groups=("dev",))
    vo.add_member(KATE, groups=("analysis",))
    cas_credential = ca.issue("/O=Grid/CN=NFC Community", now=0.0)
    policy = parse_policy(FIGURE3_POLICY_TEXT, name="community")
    return CASServer(vo, cas_credential, policy)


@pytest.fixture
def bo_proxy(ca, community):
    bo_credential = ca.issue(BO, now=0.0)
    signed = community.issue(bo_credential, now=10.0)
    return attach_cas_policy(bo_credential, signed, now=10.0)


def start(who, rsl):
    return AuthorizationRequest.start(who, parse_specification(rsl))


GOOD_RSL = "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)"


class TestIssuance:
    def test_member_gets_signed_policy(self, ca, community):
        credential = ca.issue(BO, now=0.0)
        signed = community.issue(credential, now=5.0)
        assert signed.subject == BO
        assert signed.community == "NFC"
        assert "Bo Liu" in signed.policy_text
        assert community.issued == 1

    def test_policy_excerpt_contains_only_applicable_statements(self, ca, community):
        credential = ca.issue(BO, now=0.0)
        signed = community.issue(credential, now=5.0)
        # Kate's personal grants must not travel in Bo's credential.
        assert "Kate Keahey" not in signed.policy_text

    def test_non_member_refused(self, ca, community):
        outsider = ca.issue(OUTSIDER, now=0.0)
        with pytest.raises(PermissionError):
            community.issue(outsider, now=5.0)


class TestSerialization:
    def test_round_trip(self, ca, community):
        signed = community.issue(ca.issue(BO, now=0.0), now=5.0)
        again = SignedPolicy.deserialize(signed.serialize())
        assert again == signed

    def test_malformed_json_rejected(self):
        from repro.core.errors import PolicyParseError

        with pytest.raises(PolicyParseError):
            SignedPolicy.deserialize("{not json")


class TestCredentialCarriage:
    def test_extension_travels_in_proxy(self, bo_proxy):
        signed = extract_cas_policy(bo_proxy)
        assert signed is not None
        assert signed.subject == BO

    def test_extension_found_through_further_delegation(self, bo_proxy):
        further = delegate(bo_proxy, now=11.0)
        assert extract_cas_policy(further) is not None

    def test_plain_credential_has_no_policy(self, ca):
        assert extract_cas_policy(ca.issue(BO, now=0.0)) is None


class TestResourceSideEvaluation:
    def test_permit_via_carried_policy(self, community, bo_proxy):
        source = CASPolicySource(community.credential.key_pair.public)
        decision = source.evaluate(start(BO, GOOD_RSL), bo_proxy, now=20.0)
        assert decision.is_permit

    def test_deny_via_carried_policy(self, community, bo_proxy):
        source = CASPolicySource(community.credential.key_pair.public)
        decision = source.evaluate(
            start(BO, "&(executable=evil)(jobtag=ADS)(count=1)"), bo_proxy, now=20.0
        )
        assert decision.is_deny

    def test_missing_policy_is_not_applicable(self, ca, community):
        source = CASPolicySource(community.credential.key_pair.public)
        plain = ca.issue(BO, now=0.0)
        decision = source.evaluate(start(BO, GOOD_RSL), plain, now=20.0)
        assert decision.effect is Effect.NOT_APPLICABLE

    def test_wrong_cas_key_denies(self, ca, bo_proxy):
        wrong = ca.issue("/O=Grid/CN=Impostor CAS", now=0.0)
        source = CASPolicySource(wrong.key_pair.public)
        decision = source.evaluate(start(BO, GOOD_RSL), bo_proxy, now=20.0)
        assert decision.is_deny
        assert any("signature" in reason for reason in decision.reasons)

    def test_expired_policy_denies(self, community, bo_proxy):
        source = CASPolicySource(community.credential.key_pair.public)
        decision = source.evaluate(
            start(BO, GOOD_RSL), bo_proxy, now=10.0 + 9 * 3600
        )
        assert decision.is_deny
        assert any("not valid" in reason for reason in decision.reasons)

    def test_requester_must_match_policy_subject(self, community, bo_proxy):
        """Kate presenting Bo's CAS policy gets denied."""
        source = CASPolicySource(community.credential.key_pair.public)
        decision = source.evaluate(start(KATE, GOOD_RSL), bo_proxy, now=20.0)
        assert decision.is_deny

    def test_tampered_policy_text_denies(self, community, ca, bo_proxy):
        """Editing the carried policy invalidates the signature."""
        signed = extract_cas_policy(bo_proxy)
        tampered = SignedPolicy(
            community=signed.community,
            issuer=signed.issuer,
            subject=signed.subject,
            policy_text=signed.policy_text.replace("count<4", "count<400"),
            not_before=signed.not_before,
            not_after=signed.not_after,
            signature=signed.signature,
        )
        bo_credential = ca.issue(BO, now=0.0)
        forged_proxy = attach_cas_policy(bo_credential, tampered, now=10.0)
        source = CASPolicySource(community.credential.key_pair.public)
        decision = source.evaluate(
            start(BO, "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=100)"),
            forged_proxy,
            now=20.0,
        )
        assert decision.is_deny
        assert any("signature" in reason for reason in decision.reasons)

    def test_empty_excerpt_denies(self, ca, community):
        """A member with no applicable statements gets deny, not NA."""
        nobody = f"/O=Grid/CN=Quiet Member"
        community.vo.add_member(nobody)
        credential = ca.issue(nobody, now=0.0)
        signed = community.issue(credential, now=10.0)
        proxy = attach_cas_policy(credential, signed, now=10.0)
        source = CASPolicySource(community.credential.key_pair.public)
        decision = source.evaluate(start(nobody, GOOD_RSL), proxy, now=20.0)
        assert decision.effect is Effect.DENY
