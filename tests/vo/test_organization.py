"""VO membership, groups and roles."""

import pytest

from repro.vo.organization import VirtualOrganization

PREFIX = "/O=Grid/O=Fusion/OU=nfc"


@pytest.fixture
def vo():
    org = VirtualOrganization("NFC")
    org.add_member(f"{PREFIX}/CN=Dev One", groups=("dev",))
    org.add_member(f"{PREFIX}/CN=Ana One", groups=("analysis",))
    org.add_member(f"{PREFIX}/CN=Adm One", groups=("analysis",), roles=("admin",))
    return org


class TestMembership:
    def test_member_count(self, vo):
        assert len(vo) == 3

    def test_is_member(self, vo):
        assert vo.is_member(f"{PREFIX}/CN=Dev One")
        assert not vo.is_member("/O=Other/CN=Eve")

    def test_member_lookup(self, vo):
        member = vo.member(f"{PREFIX}/CN=Adm One")
        assert member.has_role("admin")
        assert member.in_group("analysis")

    def test_unknown_member_raises(self, vo):
        with pytest.raises(KeyError):
            vo.member("/O=Other/CN=Eve")

    def test_re_adding_merges_groups(self, vo):
        vo.add_member(f"{PREFIX}/CN=Dev One", groups=("analysis",))
        member = vo.member(f"{PREFIX}/CN=Dev One")
        assert member.groups == frozenset({"dev", "analysis"})
        assert len(vo) == 3

    def test_remove_member(self, vo):
        vo.remove_member(f"{PREFIX}/CN=Dev One")
        assert not vo.is_member(f"{PREFIX}/CN=Dev One")
        assert vo.group_members("dev") == ()

    def test_remove_unknown_raises(self, vo):
        with pytest.raises(KeyError):
            vo.remove_member("/O=Other/CN=Eve")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            VirtualOrganization("   ")


class TestGroupsAndRoles:
    def test_group_members(self, vo):
        analysts = vo.group_members("analysis")
        assert len(analysts) == 2

    def test_role_holders(self, vo):
        admins = vo.role_holders("admin")
        assert len(admins) == 1
        assert admins[0].identity.common_name == "Adm One"

    def test_groups_listing(self, vo):
        assert vo.groups() == ("analysis", "dev")

    def test_unknown_group_is_empty(self, vo):
        assert vo.group_members("nope") == ()


class TestCommonPrefix:
    def test_shared_root_found(self, vo):
        prefix = vo.common_prefix()
        assert prefix is not None
        assert PREFIX.startswith(prefix) or prefix.startswith("/O=Grid")
        for member in vo:
            assert str(member.identity).startswith(prefix)

    def test_empty_vo_has_no_prefix(self):
        assert VirtualOrganization("empty").common_prefix() is None

    def test_disjoint_members_share_only_the_attribute_stub(self):
        org = VirtualOrganization("mixed")
        org.add_member("/O=AAA/CN=One")
        org.add_member("/O=BBB/CN=Two")
        prefix = org.common_prefix()
        # Whatever is returned must be a true common string prefix.
        if prefix is not None:
            for member in org:
                assert str(member.identity).startswith(prefix)
