"""End-to-end: a sick site degrades, sheds, dumps evidence, recovers.

The deterministic SLO scenario the health engine exists for: a
three-site federation under steady job traffic, one site's
authorization callout starts failing, and we watch the full arc —
healthy -> degraded -> critical, the flight recorder freezing the
failing requests, the broker routing new work away — then the fault
lifts and the site walks back to healthy and takes jobs again.
Everything runs on the simulated clock, so every cycle's outcome is
identical run to run.
"""

import pytest

from repro.core.callout import GRAM_AUTHZ_CALLOUT
from repro.core.parser import parse_policy
from repro.gram.protocol import GramErrorCode
from repro.testing import ExceptionFault, inject
from repro.vo.federation import FederatedDeployment, VOBroker

BO = "/O=Grid/OU=fed/CN=Bo"

VO_POLICY = f"""
{BO}:
    &(action=start)(executable=TRANSP)(count<=8)(jobtag!=NULL)
    &(action=cancel)(jobowner=self)
    &(action=information)(jobowner=self)
"""

JOB = "&(executable=TRANSP)(count=2)(jobtag=NFC)(runtime=500)"


@pytest.fixture
def federation():
    deployment = FederatedDeployment(parse_policy(VO_POLICY, name="vo"))
    deployment.add_site("anl", node_count=2, cpus_per_node=4)
    deployment.add_site("lbnl", node_count=4, cpus_per_node=4)
    deployment.add_site("isi", node_count=3, cpus_per_node=4)
    deployment.add_member(BO, "bo")
    deployment.enable_health(window=2.0)
    return deployment


@pytest.fixture
def broker(federation):
    return VOBroker(federation, federation.add_member(BO, "bo"))


def cycle(federation, broker, jobs=1):
    """One beat: submit, advance one window, read lbnl's health."""
    placements = [broker.submit(JOB) for _ in range(jobs)]
    federation.run(2.0)
    report = federation.health.latest_report
    return placements, report.status_of("lbnl")


class TestHealthyFederation:
    def test_enable_health_is_idempotent(self, federation):
        assert federation.enable_health() is federation.health
        assert set(federation.health.scopes) == {"anl", "lbnl", "isi"}

    def test_broker_prefers_the_biggest_healthy_site(
        self, federation, broker
    ):
        placements, status = cycle(federation, broker)
        assert status == "healthy"
        assert placements[0].ok
        assert placements[0].site == "lbnl"  # most free CPUs
        assert placements[0].attempts == 1
        assert broker.site_weight(federation.site("lbnl")) == 1.0

    def test_policy_denial_is_not_retried_elsewhere(
        self, federation, broker
    ):
        placement = broker.submit("&(executable=rogue)(count=1)(jobtag=NFC)")
        assert placement.response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert placement.attempts == 1


class TestSickSiteScenario:
    def test_degrade_shed_dump_recover(self, federation, broker):
        # Cycle 0: healthy baseline — traffic lands on lbnl.
        placements, status = cycle(federation, broker)
        assert (placements[0].site, status) == ("lbnl", "healthy")

        fault = ExceptionFault()
        lbnl = federation.site("lbnl")
        assert inject(lbnl.service.registry, GRAM_AUTHZ_CALLOUT, fault) >= 1

        # Cycle 1: the broker still tries lbnl first, eats the
        # authorization-*system* failure, and falls through to the
        # next site; the window closes and lbnl turns degraded.
        placements, status = cycle(federation, broker)
        assert status == "degraded"
        assert placements[0].ok
        assert placements[0].site != "lbnl"
        assert placements[0].attempts > 1

        # Cycle 2: the slow window agrees; one more step: critical.
        # The transition freezes a flight dump for the sick scope.
        placements, status = cycle(federation, broker)
        assert status == "critical"
        assert federation.health.weight_of("lbnl") == 0.0
        assert federation.health.dumps
        dump = federation.health.dumps[0]
        assert dump.alert["target"] == "lbnl"
        assert dump.alert["severity"] == "critical"

        # The dump's evidence is the failing window's requests: every
        # decision is lbnl-scoped, and the injected failures are in it
        # with their request IDs.
        assert dump.decisions
        assert all(entry["scope"] == "lbnl" for entry in dump.decisions)
        failed = [
            entry
            for entry in dump.decisions
            if entry["code"] == "AUTHORIZATION_SYSTEM_FAILURE"
        ]
        assert failed
        assert dump.request_ids()
        assert all(
            request_id.startswith("req-")
            for request_id in dump.request_ids()
        )

        # Cycle 3: critical weight 0 pushes lbnl to the back of the
        # order; a healthy site takes the job first try.
        placements, status = cycle(federation, broker)
        assert placements[0].ok
        assert placements[0].site != "lbnl"
        assert placements[0].attempts == 1
        assert fault.activations >= 1  # lbnl really was tried earlier

        # Recovery: the fault lifts.  Shedding means lbnl sees no
        # traffic, so its windows read no-data (zero burn) and the
        # ladder walks back down one level per evaluation.
        fault.enabled = False
        statuses = []
        for _ in range(6):
            _, status = cycle(federation, broker)
            statuses.append(status)
        assert "healthy" in statuses
        assert statuses[-1] == "healthy"
        assert federation.health.weight_of("lbnl") == 1.0

        # Back in rotation: with full weight and the most capacity,
        # lbnl takes the next job again.
        placements, _ = cycle(federation, broker)
        assert placements[0].ok
        assert placements[0].site == "lbnl"

    def test_dump_exports_and_reloads(self, federation, broker, tmp_path):
        fault = ExceptionFault()
        lbnl = federation.site("lbnl")
        inject(lbnl.service.registry, GRAM_AUTHZ_CALLOUT, fault)
        for _ in range(3):
            cycle(federation, broker)
        assert federation.health.dumps
        from repro.obs import load_flight_dump

        dump = federation.health.dumps[0]
        path = tmp_path / "lbnl-critical.jsonl"
        dump.export(str(path))
        loaded = load_flight_dump(str(path))
        assert loaded.alert == dump.alert
        assert loaded.request_ids() == dump.request_ids()
