"""Akenti-style certificate-based authorization."""

import pytest

from repro.core.decision import Effect
from repro.core.model import Subject
from repro.core.request import AuthorizationRequest
from repro.gsi.keys import KeyPair
from repro.rsl.parser import parse_specification
from repro.vo.akenti import (
    AkentiEngine,
    AttributeCertificate,
    ConditionKind,
    UseCondition,
    akenti_sources_from_policy,
)

from tests.conftest import BO, KATE, OUTSIDER


def start(who, rsl):
    return AuthorizationRequest.start(who, parse_specification(rsl))


@pytest.fixture
def stakeholder_key():
    return KeyPair("stakeholder")


@pytest.fixture
def engine(stakeholder_key):
    eng = AkentiEngine(resource="cluster")
    eng.trust_stakeholder("site", stakeholder_key.public)
    return eng


def grant(stakeholder_key, subject_pattern, constraint, **kwargs):
    return UseCondition.issue(
        stakeholder="site",
        stakeholder_key=stakeholder_key,
        resource="cluster",
        subject=Subject.prefix(subject_pattern),
        constraint=parse_specification(constraint),
        **kwargs,
    )


class TestUseConditions:
    def test_satisfied_condition_permits(self, engine, stakeholder_key):
        engine.add_condition(
            grant(stakeholder_key, "/O=Grid", "&(action=start)(executable=sim)")
        )
        assert engine.decide(start(BO, "&(executable=sim)")).is_permit

    def test_unsatisfied_condition_denies(self, engine, stakeholder_key):
        engine.add_condition(
            grant(stakeholder_key, "/O=Grid", "&(action=start)(executable=sim)")
        )
        assert engine.decide(start(BO, "&(executable=other)")).is_deny

    def test_no_applicable_condition_is_not_applicable(self, engine, stakeholder_key):
        engine.add_condition(
            grant(stakeholder_key, "/O=Grid", "&(action=start)(executable=sim)")
        )
        decision = engine.decide(start(OUTSIDER, "&(executable=sim)"))
        assert decision.effect is Effect.NOT_APPLICABLE

    def test_condition_for_other_resource_rejected(self, engine, stakeholder_key):
        condition = UseCondition.issue(
            stakeholder="site",
            stakeholder_key=stakeholder_key,
            resource="other-cluster",
            subject=Subject.prefix("/O=Grid"),
            constraint=parse_specification("&(action=start)"),
        )
        with pytest.raises(ValueError):
            engine.add_condition(condition)

    def test_untrusted_stakeholder_is_indeterminate(self, engine):
        rogue = KeyPair("rogue")
        engine.add_condition(grant(rogue, "/O=Grid", "&(action=start)"))
        decision = engine.decide(start(BO, "&(executable=sim)"))
        assert decision.effect is Effect.INDETERMINATE

    def test_tampered_condition_is_indeterminate(self, engine, stakeholder_key):
        good = grant(stakeholder_key, "/O=Grid", "&(action=start)(count<4)")
        from dataclasses import replace

        tampered = replace(
            good, constraint=parse_specification("&(action=start)(count<400)")
        )
        engine.add_condition(tampered)
        decision = engine.decide(start(BO, "&(executable=sim)(count=100)"))
        assert decision.effect is Effect.INDETERMINATE


class TestStakeholderIntersection:
    def test_all_stakeholders_must_be_satisfied(self, engine, stakeholder_key):
        vo_key = KeyPair("vo")
        engine.trust_stakeholder("vo", vo_key.public)
        engine.add_condition(
            grant(stakeholder_key, "/O=Grid", "&(action=start)(count<16)")
        )
        engine.add_condition(
            UseCondition.issue(
                stakeholder="vo",
                stakeholder_key=vo_key,
                resource="cluster",
                subject=Subject.prefix("/O=Grid"),
                constraint=parse_specification("&(action=start)(executable=sim)"),
            )
        )
        ok = start(BO, "&(executable=sim)(count=2)")
        bad_exe = start(BO, "&(executable=other)(count=2)")
        bad_count = start(BO, "&(executable=sim)(count=20)")
        assert engine.decide(ok).is_permit
        assert engine.decide(bad_exe).is_deny
        assert engine.decide(bad_count).is_deny

    def test_alternatives_within_one_stakeholder(self, engine, stakeholder_key):
        engine.add_condition(
            grant(stakeholder_key, "/O=Grid", "&(action=start)(executable=a)")
        )
        engine.add_condition(
            grant(stakeholder_key, "/O=Grid", "&(action=start)(executable=b)")
        )
        assert engine.decide(start(BO, "&(executable=b)")).is_permit


class TestObligations:
    def test_obligation_denies_on_violation(self, engine, stakeholder_key):
        engine.add_condition(
            grant(stakeholder_key, "/O=Grid", "&(action=start)(executable=sim)")
        )
        engine.add_condition(
            grant(
                stakeholder_key,
                "/O=Grid",
                "&(action=start)(jobtag!=NULL)",
                kind=ConditionKind.OBLIGATION,
            )
        )
        untagged = start(BO, "&(executable=sim)")
        tagged = start(BO, "&(executable=sim)(jobtag=NFC)")
        assert engine.decide(untagged).is_deny
        assert engine.decide(tagged).is_permit


class TestAttributeCertificates:
    def test_attribute_gated_condition(self, engine, stakeholder_key):
        attr_key = KeyPair("attr-authority")
        engine.trust_attribute_issuer("vo-registry", attr_key.public)
        engine.add_condition(
            grant(
                stakeholder_key,
                "/O=Grid",
                "&(action=start)(executable=sim)",
                required_attributes=[("group", "analysis")],
            )
        )
        request = start(BO, "&(executable=sim)")
        assert engine.decide(request).is_deny

        engine.add_attribute_certificate(
            AttributeCertificate.issue("vo-registry", attr_key, BO, "group", "analysis")
        )
        assert engine.decide(request).is_permit

    def test_attribute_from_untrusted_issuer_ignored(self, engine, stakeholder_key):
        rogue = KeyPair("rogue-issuer")
        engine.add_condition(
            grant(
                stakeholder_key,
                "/O=Grid",
                "&(action=start)",
                required_attributes=[("group", "analysis")],
            )
        )
        engine.add_attribute_certificate(
            AttributeCertificate.issue("rogue", rogue, BO, "group", "analysis")
        )
        assert engine.decide(start(BO, "&(executable=x)")).is_deny

    def test_user_attributes_verified(self, engine):
        attr_key = KeyPair("attr-authority")
        engine.trust_attribute_issuer("reg", attr_key.public)
        engine.add_attribute_certificate(
            AttributeCertificate.issue("reg", attr_key, BO, "role", "admin")
        )
        from repro.gsi.names import DistinguishedName

        held = engine.user_attributes(DistinguishedName.parse(BO))
        assert ("role", "admin") in held


class TestPolicyRepresentation:
    def test_figure3_as_akenti_agrees_with_native_evaluator(
        self, figure3_policy, stakeholder_key
    ):
        """The paper's 'same policies in Akenti' experiment, in miniature."""
        from repro.core.evaluator import PolicyEvaluator

        engine = akenti_sources_from_policy(
            figure3_policy, "cluster", "VO", stakeholder_key
        )
        native = PolicyEvaluator(figure3_policy)

        probes = [
            start(BO, "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)"),
            start(BO, "&(executable=test1)(directory=/sandbox/test)(count=2)"),
            start(BO, "&(executable=bad)(directory=/sandbox/test)(jobtag=ADS)(count=2)"),
            start(KATE, "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)"),
            AuthorizationRequest.manage(
                KATE,
                "cancel",
                parse_specification("&(executable=test2)(jobtag=NFC)"),
                jobowner=BO,
            ),
            AuthorizationRequest.manage(
                KATE,
                "cancel",
                parse_specification("&(executable=test1)(jobtag=ADS)"),
                jobowner=BO,
            ),
        ]
        for probe in probes:
            assert (
                engine.decide(probe).is_permit
                == native.evaluate(probe).is_permit
            ), f"disagreement on {probe}"

    def test_condition_count_matches_assertions(self, figure3_policy, stakeholder_key):
        engine = akenti_sources_from_policy(
            figure3_policy, "cluster", "VO", stakeholder_key
        )
        expected = sum(len(s.assertions) for s in figure3_policy)
        assert engine.condition_count == expected
