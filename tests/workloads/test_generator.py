"""Workload and policy generators."""

import pytest

from repro.core.evaluator import PolicyEvaluator
from repro.core.model import StatementKind
from repro.workloads.generator import (
    PolicyShape,
    WorkloadGenerator,
    generate_identity,
    generate_policy,
    generate_users,
)


class TestIdentityGeneration:
    def test_identities_are_deterministic(self):
        assert generate_identity(3) == generate_identity(3)

    def test_identities_are_distinct(self):
        users = generate_users(50)
        assert len({str(u) for u in users}) == 50

    def test_identities_share_org_prefix(self):
        for user in generate_users(5):
            assert str(user).startswith("/O=Grid/O=Globus/OU=synth.example.org")


class TestPolicyGeneration:
    def test_shape_is_respected(self):
        shape = PolicyShape(
            users=5,
            statements_per_user=2,
            assertions_per_statement=3,
            group_requirements=1,
        )
        policy = generate_policy(shape)
        grants = [s for s in policy if s.kind is StatementKind.GRANT]
        requirements = [s for s in policy if s.kind is StatementKind.REQUIREMENT]
        assert len(grants) == 10
        assert len(requirements) == 1
        assert all(len(s.assertions) == 3 for s in grants)

    def test_same_seed_same_policy(self):
        a = generate_policy(PolicyShape(seed=42))
        b = generate_policy(PolicyShape(seed=42))
        assert str(a) == str(b)

    def test_different_seed_different_policy(self):
        a = generate_policy(PolicyShape(seed=1))
        b = generate_policy(PolicyShape(seed=2))
        assert str(a) != str(b)

    def test_generated_policy_round_trips_through_parser(self):
        from repro.core.parser import parse_policy

        policy = generate_policy(PolicyShape(users=4))
        reparsed = parse_policy(str(policy))
        assert len(reparsed) == len(policy)

    def test_every_user_has_a_grant(self):
        shape = PolicyShape(users=8)
        policy = generate_policy(shape)
        for user in generate_users(8):
            assert policy.grants_for(user)


class TestWorkloadGenerator:
    def build(self, permit_bias=0.7):
        shape = PolicyShape(users=10)
        policy = generate_policy(shape)
        return WorkloadGenerator(
            policy, generate_users(10), seed=5, permit_bias=permit_bias
        ), policy

    def test_deterministic_given_seed(self):
        first, _ = self.build()
        second, _ = self.build()
        a = [str(r) for r in first.batch(20)]
        b = [str(r) for r in second.batch(20)]
        assert a == b

    def test_permit_bias_steers_outcomes(self):
        generous, policy = self.build(permit_bias=1.0)
        stingy, _ = self.build(permit_bias=0.0)
        evaluator = PolicyEvaluator(policy)
        generous_permits = sum(
            1 for _ in range(100) if evaluator.evaluate(generous.start_request()).is_permit
        )
        stingy_permits = sum(
            1 for _ in range(100) if evaluator.evaluate(stingy.start_request()).is_permit
        )
        assert generous_permits > 80
        assert stingy_permits < generous_permits

    def test_conforming_requests_actually_conform(self):
        generator, policy = self.build(permit_bias=1.0)
        evaluator = PolicyEvaluator(policy)
        for _ in range(50):
            request = generator.start_request()
            decision = evaluator.evaluate(request)
            assert decision.is_permit, decision

    def test_management_requests_have_owners(self):
        generator, _ = self.build()
        request = generator.management_request()
        assert request.action.is_management
        assert request.jobowner is not None

    def test_batch_mixes_request_kinds(self):
        generator, _ = self.build()
        batch = generator.batch(200, management_fraction=0.5)
        management = sum(1 for r in batch if r.action.is_management)
        assert 50 < management < 150

    def test_empty_user_population_rejected(self):
        _, policy = self.build()
        with pytest.raises(ValueError):
            WorkloadGenerator(policy, [])
