"""The closed-loop churn workload itself: deterministic and bounded."""

from dataclasses import replace

from repro.gram.service import ServiceConfig
from repro.workloads.churn import (
    ChurnConfig,
    build_churn_service,
    churn_live_bound,
    churn_rsl,
    run_churn,
)

SMALL = ChurnConfig(users=8, cycles=60, runtime=3.0, step=1.0, seed=5)


def test_same_seed_same_outcome():
    results = []
    for _ in range(2):
        service, clients = build_churn_service(SMALL)
        stats = run_churn(service, clients, SMALL)
        results.append(
            (
                stats.started,
                stats.cancelled,
                stats.rejected_busy,
                stats.max_live_jmis,
                [contact.job_id for _, contact in stats.contacts],
            )
        )
    # Job ids come from a process-global counter, so compare shapes,
    # not raw ids: same counts and same number of started jobs.
    assert results[0][:4] == results[1][:4]
    assert len(results[0][4]) == len(results[1][4])


def test_different_seed_changes_cancellations():
    service_a, clients_a = build_churn_service(SMALL)
    stats_a = run_churn(service_a, clients_a, SMALL)
    other = replace(SMALL, seed=99)
    service_b, clients_b = build_churn_service(other)
    stats_b = run_churn(service_b, clients_b, other)
    assert stats_a.started == stats_b.started
    assert stats_a.cancelled != stats_b.cancelled


def test_live_state_stays_under_bound():
    service, clients = build_churn_service(SMALL)
    stats = run_churn(service, clients, SMALL)
    assert stats.errors == 0
    assert stats.max_live_jmis <= churn_live_bound(SMALL)
    assert stats.final_live_jmis == 0
    assert stats.running_jobs_after == 0


def test_rsl_carries_configured_runtime():
    assert "(runtime=3)" in churn_rsl(SMALL)


def test_stats_accumulate_across_stages():
    service, clients = build_churn_service(SMALL)
    stats = run_churn(service, clients, SMALL)
    stats = run_churn(service, clients, SMALL, stats=stats)
    assert stats.submitted == 2 * SMALL.cycles
    assert stats.started == 2 * SMALL.cycles
    assert len(stats.contacts) == stats.started


def test_caps_shed_load_without_errors():
    config = ChurnConfig(
        users=3, cycles=30, runtime=100.0, step=0.5, cancel_fraction=0.0
    )
    service, clients = build_churn_service(
        config,
        ServiceConfig(
            host="churn.example.org",
            node_count=32,
            cpus_per_node=4,
            max_jobs_per_user=2,
        ),
    )
    stats = run_churn(service, clients, config)
    assert stats.errors == 0
    assert stats.started == config.users * 2
    assert stats.rejected_busy == config.cycles - stats.started
