"""The National Fusion Collaboratory scenario."""

import pytest

from repro.gram.protocol import GramErrorCode, GramJobState
from repro.workloads.scenarios import build_fusion_scenario, figure3_policy


@pytest.fixture(scope="module")
def scenario():
    return build_fusion_scenario(developers=2, analysts=2, admins=1)


def first(clients):
    return next(iter(clients.values()))


class TestFigure3Helper:
    def test_policy_parses(self):
        assert len(figure3_policy()) == 3


class TestScenarioShape:
    def test_population(self, scenario):
        assert len(scenario.developers) == 2
        assert len(scenario.analysts) == 2
        assert len(scenario.admins) == 1
        assert len(scenario.vo) == 5

    def test_vo_groups(self, scenario):
        assert set(scenario.vo.groups()) == {"dev", "analysis", "admin"}


class TestTwoUserClasses:
    """Paper §2: developers run many things small; analysts run the
    sanctioned service big."""

    def test_developer_runs_arbitrary_tools_in_dev_tree(self, scenario):
        dev = first(scenario.developers)
        response = dev.submit(
            "&(executable=gdb)(directory=/sandbox/dev)(jobtag=DEBUG)"
            "(count=1)(maxwalltime=300)(runtime=60)"
        )
        assert response.ok, response

    def test_developer_capped_small(self, scenario):
        dev = first(scenario.developers)
        response = dev.submit(
            "&(executable=gdb)(directory=/sandbox/dev)(jobtag=DEBUG)"
            "(count=8)(maxwalltime=300)(runtime=60)"
        )
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_analyst_runs_transp_big(self, scenario):
        analyst = first(scenario.analysts)
        response = analyst.submit(
            "&(executable=TRANSP)(directory=/opt/nfc/bin)(jobtag=NFC)"
            "(count=16)(runtime=100)"
        )
        assert response.ok, response

    def test_analyst_cannot_run_arbitrary_code(self, scenario):
        analyst = first(scenario.analysts)
        response = analyst.submit(
            "&(executable=gdb)(directory=/opt/nfc/bin)(jobtag=NFC)(count=1)"
        )
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED

    def test_jobtag_obligatory_for_everyone(self, scenario):
        analyst = first(scenario.analysts)
        response = analyst.submit(
            "&(executable=TRANSP)(directory=/opt/nfc/bin)(count=4)"
        )
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED


class TestAdministratorRights:
    def test_admin_manages_any_nfc_job(self, scenario):
        analyst = first(scenario.analysts)
        admin = first(scenario.admins)
        submitted = analyst.submit(
            "&(executable=TRANSP)(directory=/opt/nfc/bin)(jobtag=NFC)"
            "(count=4)(runtime=500)"
        )
        assert submitted.ok
        assert admin.status(submitted.contact).ok
        assert admin.signal(submitted.contact, priority=10).ok
        assert admin.cancel(submitted.contact).ok

    def test_admin_suspends_for_urgent_work(self):
        """The §2 story: suspend a long job, run the urgent one.

        A fresh 16-CPU deployment so one analyst job (at the policy's
        count<=16 cap) genuinely fills the resource.
        """
        tight = build_fusion_scenario(
            developers=0, analysts=1, admins=1, node_count=4, cpus_per_node=4
        )
        analyst = first(tight.analysts)
        admin = first(tight.admins)
        service = tight.service

        long_job = analyst.submit(
            "&(executable=TRANSP)(directory=/opt/nfc/bin)(jobtag=NFC)"
            "(count=16)(runtime=10000)"
        )
        assert long_job.ok, long_job
        suspended = admin.suspend(long_job.contact)
        assert suspended.ok, suspended
        assert suspended.state is GramJobState.SUSPENDED

        urgent = admin.submit(
            "&(executable=TRANSP)(directory=/opt/nfc/bin)(jobtag=URGENT)"
            "(count=16)(runtime=50)"
        )
        assert urgent.ok, urgent
        service.run(60.0)
        assert admin.status(urgent.contact).state is GramJobState.DONE

        resumed = admin.resume(long_job.contact)
        assert resumed.ok
        assert resumed.state is GramJobState.ACTIVE

    def test_analyst_cannot_manage_others_jobs(self, scenario):
        analysts = list(scenario.analysts.values())
        submitted = analysts[0].submit(
            "&(executable=TRANSP)(directory=/opt/nfc/bin)(jobtag=NFC)"
            "(count=2)(runtime=500)"
        )
        assert submitted.ok
        denied = analysts[1].cancel(submitted.contact)
        assert denied.code is GramErrorCode.AUTHORIZATION_DENIED
        # but the owner can
        assert analysts[0].cancel(submitted.contact).ok
