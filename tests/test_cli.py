"""The repro.cli command-line tools."""

import pytest

from repro.cli import main

ALICE = "/O=Grid/OU=org/CN=Alice"

GOOD_POLICY = f"""
{ALICE}:
    &(action=start)(executable=sim)(count<4)
    &(action=cancel)(jobowner=self)
"""

BAD_POLICY = f"""
{ALICE}:
    &(action=teleport)
    &(executable=anything)
"""


@pytest.fixture
def policy_file(tmp_path):
    path = tmp_path / "vo.policy"
    path.write_text(GOOD_POLICY)
    return str(path)


@pytest.fixture
def bad_policy_file(tmp_path):
    path = tmp_path / "bad.policy"
    path.write_text(BAD_POLICY)
    return str(path)


class TestCheck:
    def test_clean_policy_passes(self, policy_file, capsys):
        assert main(["check", policy_file]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_errors_fail(self, bad_policy_file, capsys):
        assert main(["check", bad_policy_file]) == 1
        out = capsys.readouterr().out
        assert "unknown-action" in out

    def test_strict_fails_on_warnings(self, tmp_path, capsys):
        path = tmp_path / "warn.policy"
        path.write_text(f"{ALICE}: &(executable=x)")
        assert main(["check", str(path)]) == 0
        assert main(["check", str(path), "--strict"]) == 1

    def test_unparsable_policy_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "broken.policy"
        path.write_text("&(not a policy")
        assert main(["check", str(path)]) == 2

    def test_missing_file_is_usage_error(self, tmp_path):
        assert main(["check", str(tmp_path / "missing")]) == 2


class TestEvaluate:
    def test_permit_exits_zero(self, policy_file, capsys):
        code = main(
            [
                "evaluate",
                policy_file,
                "--user",
                ALICE,
                "--rsl",
                "&(executable=sim)(count=2)",
            ]
        )
        assert code == 0
        assert "permit" in capsys.readouterr().out

    def test_deny_exits_one(self, policy_file, capsys):
        code = main(
            [
                "evaluate",
                policy_file,
                "--user",
                ALICE,
                "--rsl",
                "&(executable=sim)(count=8)",
            ]
        )
        assert code == 1
        assert "deny" in capsys.readouterr().out

    def test_management_with_jobowner(self, policy_file, capsys):
        code = main(
            [
                "evaluate",
                policy_file,
                "--user",
                ALICE,
                "--action",
                "cancel",
                "--rsl",
                "&(executable=sim)",
                "--jobowner",
                ALICE,
            ]
        )
        assert code == 0

    def test_bad_rsl_is_usage_error(self, policy_file, capsys):
        code = main(
            ["evaluate", policy_file, "--user", ALICE, "--rsl", "&(broken"]
        )
        assert code == 2


class TestCapabilities:
    def test_lists_grants(self, policy_file, capsys):
        assert main(["capabilities", policy_file, "--user", ALICE]) == 0
        out = capsys.readouterr().out
        assert "start" in out
        assert "cancel" in out

    def test_unknown_user_exits_one(self, policy_file, capsys):
        code = main(
            ["capabilities", policy_file, "--user", "/O=Mars/CN=Marvin"]
        )
        assert code == 1
        assert "default deny" in capsys.readouterr().out


class TestDiff:
    def test_diff_shows_changes(self, policy_file, tmp_path, capsys):
        new = tmp_path / "new.policy"
        new.write_text(
            GOOD_POLICY + f"\n{ALICE}: &(action=information)(jobowner=self)\n"
        )
        assert main(["diff", policy_file, str(new)]) == 0
        out = capsys.readouterr().out
        assert out.count("+") >= 1

    def test_identical_policies(self, policy_file, capsys):
        assert main(["diff", policy_file, policy_file]) == 0
        assert "no changes" in capsys.readouterr().out


class TestXACMLExport:
    def test_export_to_stdout(self, policy_file, capsys):
        assert main(["xacml-export", policy_file]) == 0
        out = capsys.readouterr().out
        assert "<Policy " in out
        assert "deny-overrides" in out

    def test_export_to_file_round_trips(self, policy_file, tmp_path, capsys):
        out_path = tmp_path / "policy.xml"
        assert main(["xacml-export", policy_file, "--output", str(out_path)]) == 0
        from repro.xacml import policy_from_xml

        recovered = policy_from_xml(out_path.read_text())
        assert len(recovered.rules) == 2

    def test_export_bad_policy_is_usage_error(self, tmp_path):
        path = tmp_path / "bad.policy"
        path.write_text("&(broken")
        assert main(["xacml-export", str(path)]) == 2


class TestAuditSummary:
    def test_summarizes_exported_log(self, tmp_path, capsys):
        from repro.core.parser import parse_policy
        from repro.gram.audit import export_audit_log
        from repro.gram.client import GramClient
        from repro.gram.service import GramService, ServiceConfig

        service = GramService(
            ServiceConfig(policies=(parse_policy(GOOD_POLICY, name="vo"),))
        )
        client = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        client.submit("&(executable=sim)(count=2)(runtime=5)")
        client.submit("&(executable=rogue)(count=1)")
        log_path = tmp_path / "audit.jsonl"
        export_audit_log(service.pep, str(log_path))

        assert main(["audit-summary", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "2 decisions" in out
        assert "1 denials" in out

    def test_missing_log_is_usage_error(self, tmp_path, capsys):
        assert main(["audit-summary", str(tmp_path / "nope.jsonl")]) == 2


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "AUTHORIZATION_DENIED" in out
        assert "SUCCESS" in out


class TestAccounting:
    @pytest.fixture
    def usage_file(self, tmp_path):
        import json

        from repro.gram.client import GramClient
        from repro.gram.service import GramService, ServiceConfig

        service = GramService(ServiceConfig())
        client = GramClient(
            service.add_user(ALICE, "alice"), service.gatekeeper
        )
        client.submit("&(executable=sim)(count=2)(runtime=5)")
        service.run(10.0)
        path = tmp_path / "usage.json"
        path.write_text(json.dumps(service.scheduler.usage_summary()))
        return str(path)

    def test_renders_usage_table(self, usage_file, capsys):
        assert main(["accounting", usage_file]) == 0
        out = capsys.readouterr().out
        assert "alice" in out
        assert "total" in out
        assert "cpu-seconds" in out

    def test_single_account_filter(self, usage_file, capsys):
        assert main(["accounting", usage_file, "--account", "alice"]) == 0
        assert main(["accounting", usage_file, "--account", "nobody"]) == 1

    def test_json_output_round_trips(self, usage_file, capsys):
        import json

        assert main(["accounting", usage_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["alice"]["jobs_submitted"] == 1
        assert data["alice"]["jobs_completed"] == 1

    def test_missing_file_is_usage_error(self, tmp_path):
        assert main(["accounting", str(tmp_path / "missing.json")]) == 2

    def test_non_summary_json_is_usage_error(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        assert main(["accounting", str(path)]) == 2


class TestAuthzExplain:
    def test_renders_permissions_with_provenance(self, policy_file, capsys):
        assert main(["authz", "explain", policy_file, "--subject", ALICE]) == 0
        out = capsys.readouterr().out
        assert ALICE in out
        assert "start" in out
        assert "cancel" in out
        assert "granted by" in out
        assert "statement" in out

    def test_unknown_subject_exits_one_with_known_subjects(
        self, policy_file, capsys
    ):
        code = main(
            [
                "authz",
                "explain",
                policy_file,
                "--subject",
                "/O=Grid/OU=org/CN=Nobody",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "known subjects" in captured.err
        assert ALICE in captured.err
        # The error is an error: nothing rendered on stdout.
        assert "granted by" not in captured.out

    def test_job_precheck_possible(self, policy_file, capsys):
        code = main(
            [
                "authz",
                "explain",
                policy_file,
                "--subject",
                ALICE,
                "--job",
                "&(executable=sim)(count=2)",
            ]
        )
        assert code == 0
        assert "possible" in capsys.readouterr().out

    def test_job_precheck_guaranteed_deny(self, policy_file, capsys):
        code = main(
            [
                "authz",
                "explain",
                policy_file,
                "--subject",
                ALICE,
                "--job",
                "&(executable=rogue)(count=2)",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "guaranteed DENY" in out
        assert "constraint" in out

    def test_multiple_sources_are_merged(self, policy_file, tmp_path, capsys):
        local = tmp_path / "site.policy"
        local.write_text(f"{ALICE}:\n    &(action=information)(jobowner=self)\n")
        code = main(
            [
                "authz",
                "explain",
                policy_file,
                str(local),
                "--subject",
                ALICE,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "information" in out
        assert "start" in out

    def test_bad_policy_path_is_usage_error(self, tmp_path):
        missing = str(tmp_path / "missing.policy")
        assert main(["authz", "explain", missing, "--subject", ALICE]) == 2


class TestPolicyStoreCommands:
    def publish(self, store, policy_file, name="vo"):
        return main(
            ["policy", "publish", "--store", store, f"{name}={policy_file}"]
        )

    def test_publish_and_log(self, policy_file, tmp_path, capsys):
        store = str(tmp_path / "store.jsonl")
        assert self.publish(store, policy_file) == 0
        out = capsys.readouterr().out
        assert "published epoch 1" in out

        assert main(["policy", "log", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "epoch    1" in out
        assert "sources=vo" in out

    def test_identical_republish_is_a_noop(self, policy_file, tmp_path, capsys):
        store = str(tmp_path / "store.jsonl")
        self.publish(store, policy_file)
        capsys.readouterr()
        assert self.publish(store, policy_file) == 0
        assert "no-op" in capsys.readouterr().out

    def test_broken_bundle_rejected_exit_two(
        self, policy_file, tmp_path, capsys
    ):
        store = str(tmp_path / "store.jsonl")
        self.publish(store, policy_file)
        broken = tmp_path / "broken.policy"
        broken.write_text("&(not a policy")
        assert self.publish(store, str(broken)) == 2
        assert "rejected" in capsys.readouterr().err

        # The store still serves the prior publish.
        capsys.readouterr()
        main(["policy", "log", "--store", store])
        assert "epoch    2" not in capsys.readouterr().out

    def test_rollback_republishes_old_content(
        self, policy_file, tmp_path, capsys
    ):
        store = str(tmp_path / "store.jsonl")
        self.publish(store, policy_file)
        second = tmp_path / "v2.policy"
        second.write_text(GOOD_POLICY + "    &(action=information)\n")
        self.publish(store, str(second))
        capsys.readouterr()
        assert main(["policy", "rollback", "--store", store]) == 0
        assert "epoch 3" in capsys.readouterr().out

    def test_rollback_past_history_is_usage_error(
        self, policy_file, tmp_path, capsys
    ):
        store = str(tmp_path / "store.jsonl")
        self.publish(store, policy_file)
        assert main(["policy", "rollback", "--store", store, "--steps", "9"]) == 2

    def test_malformed_source_pair_is_usage_error(self, tmp_path, capsys):
        store = str(tmp_path / "store.jsonl")
        assert main(["policy", "publish", "--store", store, "vo.policy"]) == 2


class TestRecoverCommand:
    def make_spill(self, tmp_path):
        from repro.gram.spill import CompletedJobSpill
        from tests.gram.test_spill_recovery import make_record

        path = str(tmp_path / "spill.jsonl")
        spill = CompletedJobSpill(path)
        spill.append_insert(make_record("1", finished_at=10.0))
        spill.append_insert(make_record("2", finished_at=20.0))
        spill.append_evict("1", "count", at=25.0)
        return path

    def test_reports_live_records(self, tmp_path, capsys):
        path = self.make_spill(tmp_path)
        assert main(["recover", path]) == 0
        out = capsys.readouterr().out
        assert "records  : 1 live" in out
        assert "job 2" in out

    def test_json_summary(self, tmp_path, capsys):
        import json

        path = self.make_spill(tmp_path)
        assert main(["recover", path, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["records"] == 1
        assert summary["evicted"] == 1
        assert summary["last_at"] == 25.0
        assert summary["jobs"][0]["job_id"] == "2"

    def test_garbled_tail_reported_not_fatal(self, tmp_path, capsys):
        path = self.make_spill(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "insert", "trunc')
        assert main(["recover", path]) == 0
        assert "skipped  : 1" in capsys.readouterr().out

    def test_missing_file_is_usage_error(self, tmp_path):
        assert main(["recover", str(tmp_path / "missing.jsonl")]) == 2
