"""Source attribution on authorization-system failures.

Historically the callout chain lost track of *which* configured
callout broke: `registry.invoke` raised bare failures and the GRAM
response carried only prose.  Every failure path must now attach the
originating source name, and the protocol must surface it
machine-readably (``failure_source`` / ``failure_kind``) through the
wire format.
"""

import pytest

from repro.core.builtin_callouts import broken_callout, permit_all
from repro.core.callout import GRAM_AUTHZ_CALLOUT, default_registry
from repro.core.combination import CombinedEvaluator
from repro.core.decision import Decision
from repro.core.errors import AuthorizationSystemFailure
from repro.core.evaluator import PolicyEvaluator
from repro.core.parser import parse_policy
from repro.core.request import AuthorizationRequest
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode, GramResponse
from repro.gram.service import GramService, ServiceConfig
from repro.rsl.parser import parse_specification

from tests.conftest import BO

REQUEST = AuthorizationRequest.start(
    BO, parse_specification("&(executable=test1)(count=1)")
)

ALICE = "/O=Grid/OU=fi/CN=Alice"
POLICY = f"{ALICE}: &(action=start)(executable=sim)"
GOOD = "&(executable=sim)(count=1)(runtime=50)"


class TestRegistryAttribution:
    def test_raising_callout_names_its_label(self):
        registry = default_registry()
        registry.register(GRAM_AUTHZ_CALLOUT, broken_callout, label="akenti")
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            registry.invoke(GRAM_AUTHZ_CALLOUT, REQUEST)
        assert excinfo.value.source == "akenti"

    def test_unconfigured_type_names_the_type(self):
        registry = default_registry()
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            registry.invoke(GRAM_AUTHZ_CALLOUT, REQUEST)
        assert excinfo.value.source == GRAM_AUTHZ_CALLOUT

    def test_non_decision_return_names_the_label(self):
        registry = default_registry()
        registry.register(
            GRAM_AUTHZ_CALLOUT, lambda request: object(), label="byzantine-src"
        )
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            registry.invoke(GRAM_AUTHZ_CALLOUT, REQUEST)
        assert excinfo.value.source == "byzantine-src"

    def test_indeterminate_decision_prefers_the_decision_source(self):
        registry = default_registry()
        registry.register(
            GRAM_AUTHZ_CALLOUT,
            lambda request: Decision.indeterminate("lost", source="cas"),
            label="outer-label",
        )
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            registry.invoke(GRAM_AUTHZ_CALLOUT, REQUEST)
        assert excinfo.value.source == "cas"

    def test_indeterminate_without_source_falls_back_to_label(self):
        registry = default_registry()
        registry.register(
            GRAM_AUTHZ_CALLOUT,
            lambda request: Decision.indeterminate("lost"),
            label="fallback",
        )
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            registry.invoke(GRAM_AUTHZ_CALLOUT, REQUEST)
        assert excinfo.value.source == "fallback"

    def test_failure_in_a_chain_names_the_failing_member(self):
        registry = default_registry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all, label="healthy")
        registry.register(GRAM_AUTHZ_CALLOUT, broken_callout, label="sick")
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            registry.invoke(GRAM_AUTHZ_CALLOUT, REQUEST)
        assert excinfo.value.source == "sick"


class TestCombinationAttribution:
    def test_indeterminate_combination_names_the_sources(self):
        class Lost:
            source = "mds"
            policy_epoch = 0

            def evaluate(self, request):
                return Decision.indeterminate("directory down", source="mds")

        vo = PolicyEvaluator(parse_policy(POLICY, name="vo"), source="vo")
        combined = CombinedEvaluator([vo, Lost()])
        request = AuthorizationRequest.start(
            ALICE, parse_specification("&(executable=sim)(count=1)")
        )
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            combined.evaluate(request)
        assert "mds" in excinfo.value.source


class TestProtocolSurface:
    def build(self):
        service = GramService(
            ServiceConfig(policies=(parse_policy(POLICY, name="vo"),))
        )
        client = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
        return service, client

    def test_response_carries_failure_source_and_kind(self):
        service, client = self.build()
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(
            GRAM_AUTHZ_CALLOUT, broken_callout, label="local-pdp"
        )
        response = client.submit(GOOD)
        assert response.code is GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE
        assert response.failure_source == "local-pdp"
        assert response.failure_kind == "error"

    def test_management_failures_are_attributed_too(self):
        service, client = self.build()
        submitted = client.submit(GOOD)
        assert submitted.ok
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(
            GRAM_AUTHZ_CALLOUT, broken_callout, label="local-pdp"
        )
        response = client.cancel(submitted.contact)
        assert response.code is GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE
        assert response.failure_source == "local-pdp"

    def test_denials_carry_no_failure_source(self):
        service, client = self.build()
        response = client.submit("&(executable=rogue)(count=1)")
        assert response.code is GramErrorCode.AUTHORIZATION_DENIED
        assert response.failure_source == ""
        assert response.failure_kind == ""

    def test_attribution_survives_the_wire(self):
        service, client = self.build()
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(
            GRAM_AUTHZ_CALLOUT, broken_callout, label="local-pdp"
        )
        response = client.submit(GOOD)
        again = GramResponse.from_wire(response.to_wire())
        assert again.failure_source == "local-pdp"
        assert again.failure_kind == "error"
        assert "source=local-pdp" in str(again)
