"""Concurrency smoke test: one PEP hammered from many threads.

A policy source flapping while N threads authorize through the same
EnforcementPoint must produce no deadlock, a consistent breaker
transition log, correctly-summing metrics and a bounded audit log.
Faults here are exception-based only — the simulated clock is
single-threaded by design, so latency faults stay out of this test.
"""

import threading

from repro.core.builtin_callouts import permit_all
from repro.core.callout import GRAM_AUTHZ_CALLOUT, default_registry
from repro.core.errors import AuthorizationSystemFailure
from repro.core.pep import EnforcementPoint
from repro.core.request import AuthorizationRequest
from repro.core.resilience import DegradationMode, ResilienceConfig
from repro.rsl.parser import parse_specification
from repro.testing import ExceptionFault, FlapFault, inject

from tests.conftest import BO

THREADS = 8
CALLS_PER_THREAD = 60
AUDIT_LIMIT = 100


class _EpochStub:
    def __init__(self):
        self.policy_epoch = 0


def build():
    registry = default_registry()
    registry.register(GRAM_AUTHZ_CALLOUT, permit_all, label="flappy")
    fault = FlapFault(ExceptionFault(), period=5, failures=2)
    inject(registry, GRAM_AUTHZ_CALLOUT, fault)
    epochs = _EpochStub()
    config = ResilienceConfig(
        failure_threshold=3, mode=DegradationMode.FAIL_CLOSED
    )
    registry.wrap(
        GRAM_AUTHZ_CALLOUT,
        lambda label, callout: config.wrap(
            callout, name=label, epoch_source=epochs
        ),
    )
    pep = EnforcementPoint(
        registry=registry,
        resilience=config.middleware([epochs]),
        audit_limit=AUDIT_LIMIT,
    )
    return pep, config, fault, epochs


class TestConcurrencySmoke:
    def test_no_deadlock_consistent_breakers_bounded_audit(self):
        pep, config, fault, epochs = build()
        outcomes = [0] * THREADS
        errors = []

        def worker(slot):
            request = AuthorizationRequest.start(
                BO, parse_specification(f"&(executable=sim{slot})(count=1)")
            )
            for call in range(CALLS_PER_THREAD):
                try:
                    pep.decide(request)
                except AuthorizationSystemFailure:
                    pass
                except Exception as exc:  # pragma: no cover - reported below
                    errors.append(exc)
                    return
                outcomes[slot] += 1
                if call % 20 == 19:
                    # A concurrent policy update: re-arms any open
                    # breaker without needing the (single-threaded)
                    # simulated clock.
                    epochs.policy_epoch += 1

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)

        assert not any(thread.is_alive() for thread in threads), "deadlock"
        assert not errors, errors
        total = sum(outcomes)
        assert total == THREADS * CALLS_PER_THREAD

        # Breaker transition logs all form unbroken chains.
        for breaker in config.breakers.values():
            assert breaker.is_consistent(), breaker.transitions

        # The audit log stayed bounded despite hundreds of decisions.
        assert len(pep.audit_log) <= AUDIT_LIMIT

        # The fault saw every underlying (non-fast-failed) invocation.
        assert fault.calls <= total
        assert fault.calls == total - config.metrics.fast_fails

    def test_metrics_counters_are_race_free(self):
        pep, config, fault, _ = build()
        request = AuthorizationRequest.start(
            BO, parse_specification("&(executable=sim)(count=1)")
        )

        def worker():
            for _ in range(40):
                try:
                    pep.decide(request)
                except AuthorizationSystemFailure:
                    pass

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)

        snapshot = config.metrics.snapshot()
        # Failures observed by the wrapper equal the fault activations
        # (every activation raised; none were lost to races).
        assert snapshot["failures"] == fault.activations
        assert snapshot["fast_fails"] == sum(
            breaker.fast_fails for breaker in config.breakers.values()
        )
