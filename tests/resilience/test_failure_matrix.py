"""The failure matrix: every policy source × every fault mode.

For each source backing the GRAM authorization callout (dynamic
policy store, CAS, Akenti, grid-mapfile) and each injected fault
(timeout, exception, intermittent flap, byzantine wrong-answer), the
GRAM protocol must keep the paper's §5.2 distinction intact: policy
denials come back as ``AUTHORIZATION_DENIED``, broken infrastructure
as ``AUTHORIZATION_SYSTEM_FAILURE`` naming the failed source —
and fail-static degradation must never serve a decision across a
policy-epoch bump.
"""

import pytest

from repro.core.builtin_callouts import gridmap_callout
from repro.core.callout import GRAM_AUTHZ_CALLOUT
from repro.core.dynamic import PolicyStore
from repro.core.parser import parse_policy
from repro.core.resilience import (
    DegradationMode,
    ResilienceConfig,
    RetryPolicy,
)
from repro.gram.client import GramClient
from repro.gram.protocol import GramErrorCode
from repro.gram.service import GramService, ServiceConfig
from repro.gsi.keys import KeyPair
from repro.testing import ByzantineFault, ExceptionFault, FlapFault, LatencyFault, inject
from repro.vo.akenti import akenti_callout, akenti_sources_from_policy
from repro.vo.cas import CASServer, attach_cas_policy, cas_callout
from repro.vo.organization import VirtualOrganization

ALICE = "/O=Grid/OU=fi/CN=Alice"
POLICY_TEXT = (
    f"{ALICE}: &(action=start)(executable=sim) &(action=information) "
    "&(action=cancel)(jobowner=self)"
)
GOOD = "&(executable=sim)(count=1)(runtime=50)"
BAD = "&(executable=rogue)(count=1)"

SOURCES = ("policy-store", "cas", "akenti", "gridmap")
FAULTS = ("timeout", "exception", "byzantine")
EXPECTED_KIND = {"timeout": "timeout", "exception": "error", "byzantine": "error"}


class _Scenario:
    def __init__(self, service, client, label, epoch_source, deny):
        self.service = service
        self.client = client
        self.label = label
        self.epoch_source = epoch_source
        #: Callable returning a GramResponse expected to be a denial.
        self.deny = deny


def build_scenario(source_name) -> _Scenario:
    """A GramService whose GRAM authz callout is the named source.

    Built *un-hardened* so tests can inject faults first — the
    resilience wrapper then goes around the faulty callout, exactly
    like a slow real source behind the production wrapper.
    """
    service = GramService(ServiceConfig())
    credential = service.add_user(ALICE, "alice")
    service.registry.clear(GRAM_AUTHZ_CALLOUT)
    policy = parse_policy(POLICY_TEXT, name="vo")

    if source_name == "policy-store":
        store = PolicyStore(policy, clock=service.clock)
        service.registry.register(
            GRAM_AUTHZ_CALLOUT, store.callout(), label="policy-store"
        )
        client = GramClient(credential, service.gatekeeper)
        return _Scenario(
            service, client, "policy-store", store,
            deny=lambda: client.submit(BAD),
        )

    if source_name == "cas":
        vo = VirtualOrganization("NFC")
        vo.add_member(ALICE)
        cas_credential = service.ca.issue("/O=Grid/CN=NFC CAS", now=0.0)
        cas = CASServer(vo, cas_credential, policy)
        callout = cas_callout(
            cas_credential.key_pair.public, service.clock, source="cas"
        )
        service.registry.register(GRAM_AUTHZ_CALLOUT, callout, label="cas")
        signed = cas.issue(credential, now=service.clock.now)
        proxy = attach_cas_policy(credential, signed, now=service.clock.now)
        client = GramClient(proxy, service.gatekeeper)
        return _Scenario(
            service, client, "cas", callout.policy_source,
            deny=lambda: client.submit(BAD),
        )

    if source_name == "akenti":
        engine = akenti_sources_from_policy(
            policy, resource=service.config.host, stakeholder="ops",
            stakeholder_key=KeyPair("ops"),
        )
        service.registry.register(
            GRAM_AUTHZ_CALLOUT, akenti_callout(engine), label="akenti"
        )
        client = GramClient(credential, service.gatekeeper)
        return _Scenario(
            service, client, "akenti", engine,
            deny=lambda: client.submit(BAD),
        )

    assert source_name == "gridmap"
    service.registry.register(
        GRAM_AUTHZ_CALLOUT, gridmap_callout(service.gridmap), label="gridmap"
    )
    client = GramClient(credential, service.gatekeeper)

    def deny():
        submitted = client.submit(GOOD)
        assert submitted.ok
        # The ACL *is* the policy: dropping the entry turns further
        # management requests into denials, not system failures.
        service.gridmap.remove(ALICE)
        return client.cancel(submitted.contact)

    return _Scenario(service, client, "gridmap", service.gridmap, deny=deny)


def make_fault(fault_name, clock):
    if fault_name == "timeout":
        return LatencyFault(clock, latency=5.0)
    if fault_name == "exception":
        return ExceptionFault()
    if fault_name == "byzantine":
        return ByzantineFault()
    assert fault_name == "flap"
    return FlapFault(ExceptionFault(), period=2, failures=1)


def harden(service, **overrides):
    options = dict(
        clock=service.clock,
        timeout=2.0,
        retry=RetryPolicy(max_attempts=2, base_delay=0.1, jitter=0.0),
        failure_threshold=100,
        mode=DegradationMode.FAIL_CLOSED,
    )
    options.update(overrides)
    return service.harden(ResilienceConfig(**options))


class TestFailureMatrix:
    @pytest.mark.parametrize("source_name", SOURCES)
    @pytest.mark.parametrize("fault_name", FAULTS)
    def test_faulted_source_is_a_system_failure_naming_the_source(
        self, source_name, fault_name
    ):
        scenario = build_scenario(source_name)
        fault = make_fault(fault_name, scenario.service.clock)
        inject(scenario.service.registry, GRAM_AUTHZ_CALLOUT, fault)
        harden(scenario.service)

        response = scenario.client.submit(GOOD)
        assert response.code is GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE
        assert response.failure_source == scenario.label
        assert response.failure_kind == EXPECTED_KIND[fault_name]
        assert scenario.service.gatekeeper.active_job_managers == 0

        fault.enabled = False
        assert scenario.client.submit(GOOD).ok

    @pytest.mark.parametrize("source_name", SOURCES)
    def test_intermittent_flap_is_absorbed_by_retry(self, source_name):
        scenario = build_scenario(source_name)
        fault = make_fault("flap", scenario.service.clock)
        inject(scenario.service.registry, GRAM_AUTHZ_CALLOUT, fault)
        resilience = harden(scenario.service)

        # Call 1 of every period faults; the bounded retry rides it out.
        response = scenario.client.submit(GOOD)
        assert response.ok
        assert fault.activations >= 1
        assert resilience.metrics.retries >= 1

    @pytest.mark.parametrize("source_name", SOURCES)
    def test_denial_and_system_failure_stay_distinct(self, source_name):
        scenario = build_scenario(source_name)
        harden(scenario.service)
        denied = scenario.deny()
        assert denied.code is GramErrorCode.AUTHORIZATION_DENIED
        assert denied.code is not GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE
        assert denied.failure_source == ""


class TestBreakerThroughTheProtocol:
    def test_open_breaker_reports_breaker_open_kind(self):
        scenario = build_scenario("policy-store")
        fault = ExceptionFault()
        inject(scenario.service.registry, GRAM_AUTHZ_CALLOUT, fault)
        harden(scenario.service, retry=None, failure_threshold=2)

        for _ in range(2):
            response = scenario.client.submit(GOOD)
            assert response.failure_kind == "error"
        calls_before = fault.calls
        response = scenario.client.submit(GOOD)
        assert response.code is GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE
        assert response.failure_kind == "breaker-open"
        assert response.failure_source == "policy-store"
        assert fault.calls == calls_before  # fast-fail: source untouched

    def test_policy_epoch_bump_rearms_the_breaker(self):
        scenario = build_scenario("policy-store")
        fault = ExceptionFault()
        inject(scenario.service.registry, GRAM_AUTHZ_CALLOUT, fault)
        resilience = harden(scenario.service, retry=None, failure_threshold=2)
        # harden() has no combined evaluator here; arm the breaker on
        # the store's epoch explicitly.
        resilience.breakers["policy-store"].epoch_source = scenario.epoch_source

        for _ in range(3):
            scenario.client.submit(GOOD)
        assert scenario.client.submit(GOOD).failure_kind == "breaker-open"
        fault.enabled = False
        scenario.epoch_source.install(
            parse_policy(POLICY_TEXT, name="vo"), comment="fixed"
        )
        # New policy version: the half-open probe goes through and
        # the recovered source serves again.
        assert scenario.client.submit(GOOD).ok


class TestFailStaticAcrossEpochs:
    def test_fail_static_never_serves_across_an_epoch_bump(self):
        scenario = build_scenario("policy-store")
        fault = ExceptionFault()
        fault.enabled = False
        inject(scenario.service.registry, GRAM_AUTHZ_CALLOUT, fault)
        resilience = harden(
            scenario.service, retry=None, mode=DegradationMode.FAIL_STATIC
        )
        scenario.service.pep.resilience.add_epoch_source(scenario.epoch_source)

        assert scenario.client.submit(GOOD).ok  # populates last-known-good
        fault.enabled = True
        degraded = scenario.client.submit(GOOD)
        assert degraded.ok
        assert degraded.decision_context is not None
        assert degraded.decision_context.degraded == "fail-static"
        assert resilience.metrics.degraded_static == 1

        scenario.epoch_source.install(
            parse_policy(POLICY_TEXT, name="vo"), comment="revoked and reissued"
        )
        after_bump = scenario.client.submit(GOOD)
        assert after_bump.code is GramErrorCode.AUTHORIZATION_SYSTEM_FAILURE
        assert resilience.metrics.degraded_static == 1  # not served again
