"""The deterministic fault-injection harness itself."""

import pytest

from repro.core.builtin_callouts import permit_all
from repro.core.callout import GRAM_AUTHZ_CALLOUT, default_registry
from repro.core.decision import Decision
from repro.core.errors import AuthorizationSystemFailure
from repro.core.evaluator import PolicyEvaluator
from repro.core.parser import parse_policy
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification
from repro.sim.clock import Clock
from repro.testing import (
    ByzantineFault,
    ExceptionFault,
    FaultSchedule,
    FlapFault,
    LatencyFault,
    faulty_source,
    inject,
)

from tests.conftest import BO

REQUEST = AuthorizationRequest.start(
    BO, parse_specification("&(executable=test1)(count=1)")
)


def permit(request):
    return Decision.permit(reason="healthy", source="healthy")


class TestFaultPrimitives:
    def test_latency_fault_advances_the_simulated_clock(self):
        clock = Clock()
        fault = LatencyFault(clock, latency=3.5)
        decision = fault(lambda: permit(REQUEST), REQUEST)
        assert decision.is_permit
        assert clock.now == pytest.approx(3.5)

    def test_exception_fault_raises_configured_exception(self):
        fault = ExceptionFault("boom", exception_type=TimeoutError)
        with pytest.raises(TimeoutError, match="boom"):
            fault(lambda: permit(REQUEST), REQUEST)

    def test_byzantine_fault_returns_a_non_decision_by_default(self):
        fault = ByzantineFault()
        result = fault(lambda: permit(REQUEST), REQUEST)
        assert not isinstance(result, Decision)

    def test_byzantine_fault_can_lie_plausibly(self):
        wrong = Decision.permit(reason="lies", source="byzantine")
        fault = ByzantineFault(result=wrong)
        assert fault(lambda: Decision.deny(), REQUEST) is wrong

    def test_disabled_fault_passes_through(self):
        fault = ExceptionFault()
        fault.enabled = False
        assert fault(lambda: permit(REQUEST), REQUEST).is_permit
        assert fault.calls == 1
        assert fault.activations == 0

    def test_counters_track_calls_and_activations(self):
        fault = FlapFault(ExceptionFault(), period=2, failures=1)
        for _ in range(6):
            try:
                fault(lambda: permit(REQUEST), REQUEST)
            except ConnectionError:
                pass
        assert fault.calls == 6
        assert fault.activations == 3

    def test_validation(self):
        clock = Clock()
        with pytest.raises(ValueError):
            LatencyFault(clock, latency=-1.0)
        with pytest.raises(ValueError):
            FlapFault(ExceptionFault(), period=0)
        with pytest.raises(ValueError):
            FlapFault(ExceptionFault(), period=2, failures=3)
        with pytest.raises(ValueError):
            FaultSchedule([(0, ExceptionFault())])


class TestFlapPattern:
    def test_first_failures_of_each_period_fault(self):
        fault = FlapFault(ExceptionFault(), period=4, failures=2)
        outcomes = []
        for _ in range(8):
            try:
                fault(lambda: permit(REQUEST), REQUEST)
                outcomes.append("ok")
            except ConnectionError:
                outcomes.append("fail")
        assert outcomes == ["fail", "fail", "ok", "ok"] * 2

    def test_flap_is_deterministic_across_instances(self):
        def run():
            fault = FlapFault(ExceptionFault(), period=3, failures=1)
            pattern = []
            for _ in range(9):
                try:
                    fault(lambda: permit(REQUEST), REQUEST)
                    pattern.append(True)
                except ConnectionError:
                    pattern.append(False)
            return pattern

        assert run() == run()


class TestFaultSchedule:
    def test_segments_play_in_order_then_pass_through(self):
        clock = Clock()
        schedule = FaultSchedule(
            [(2, ExceptionFault()), (1, LatencyFault(clock, 5.0)), (1, None)]
        )
        for _ in range(2):
            with pytest.raises(ConnectionError):
                schedule(lambda: permit(REQUEST), REQUEST)
        assert schedule(lambda: permit(REQUEST), REQUEST).is_permit
        assert clock.now == pytest.approx(5.0)
        # Call 4 hits the explicit pass-through segment; call 5 is
        # beyond the schedule entirely.
        assert schedule(lambda: permit(REQUEST), REQUEST).is_permit
        assert schedule(lambda: permit(REQUEST), REQUEST).is_permit
        assert clock.now == pytest.approx(5.0)


class TestInjection:
    def test_inject_wraps_without_monkeypatching(self):
        registry = default_registry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all, label="wide-open")
        fault = ExceptionFault()
        assert inject(registry, GRAM_AUTHZ_CALLOUT, fault) == 1
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            registry.invoke(GRAM_AUTHZ_CALLOUT, REQUEST)
        assert excinfo.value.source == "wide-open"
        fault.enabled = False
        assert registry.invoke(GRAM_AUTHZ_CALLOUT, REQUEST).is_permit

    def test_inject_targets_one_label_in_a_chain(self):
        registry = default_registry()
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all, label="first")
        registry.register(GRAM_AUTHZ_CALLOUT, permit_all, label="second")
        fault = ExceptionFault()
        assert inject(registry, GRAM_AUTHZ_CALLOUT, fault, label="second") == 1
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            registry.invoke(GRAM_AUTHZ_CALLOUT, REQUEST)
        assert excinfo.value.source == "second"

    def test_inject_on_unconfigured_type_is_a_noop(self):
        registry = default_registry()
        assert inject(registry, GRAM_AUTHZ_CALLOUT, ExceptionFault()) == 0


class TestFaultySource:
    def test_proxy_faults_evaluate_and_delegates_the_rest(self):
        policy = parse_policy(
            f"{BO}: &(action=start)(executable=test1)", name="local"
        )
        evaluator = PolicyEvaluator(policy, source="local")
        fault = FlapFault(ExceptionFault(), period=2, failures=1)
        proxy = faulty_source(evaluator, fault)
        assert proxy.source == "local"
        assert proxy.policy_epoch == evaluator.policy_epoch
        with pytest.raises(ConnectionError):
            proxy.evaluate(REQUEST)
        assert proxy.evaluate(REQUEST).is_permit
