"""Retry policy and the resilient-callout retry/timeout loop.

Everything is deterministic: backoff jitter comes from a seeded RNG
and "time" is the simulated clock, so the exact delays and the exact
number of attempts are assertable.
"""

import pytest

from repro.core.decision import Decision
from repro.core.errors import AuthorizationSystemFailure
from repro.core.pipeline import DecisionContext, activate
from repro.core.request import AuthorizationRequest
from repro.core.resilience import (
    CalloutTimeout,
    ResilienceMetrics,
    ResilientCallout,
    RetryPolicy,
)
from repro.rsl.parser import parse_specification
from repro.sim.clock import Clock

from tests.conftest import BO

REQUEST = AuthorizationRequest.start(
    BO, parse_specification("&(executable=test1)(count=1)")
)


class TestRetryPolicy:
    def test_delay_count_is_attempts_minus_one(self):
        policy = RetryPolicy(max_attempts=4)
        assert len(list(policy.delays())) == 3

    def test_delays_are_deterministic(self):
        policy = RetryPolicy(max_attempts=5, seed=42)
        assert list(policy.delays()) == list(policy.delays())

    def test_delays_grow_exponentially_within_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, jitter=0.1,
            max_delay=100.0,
        )
        for index, delay in enumerate(policy.delays()):
            nominal = 1.0 * 2.0**index
            assert nominal * 0.9 <= delay <= nominal * 1.1

    def test_delays_are_capped_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=10.0, max_delay=5.0,
            jitter=0.1,
        )
        assert all(d <= 5.0 * 1.1 for d in policy.delays())

    def test_different_seeds_desynchronise(self):
        a = RetryPolicy(max_attempts=5, seed=1)
        b = RetryPolicy(max_attempts=5, seed=2)
        assert list(a.delays()) != list(b.delays())

    def test_zero_jitter_gives_exact_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.5, multiplier=2.0, jitter=0.0,
            max_delay=100.0,
        )
        assert list(policy.delays()) == [0.5, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class _Flaky:
    """Fails the first *failures* calls, then permits."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        if self.calls <= self.failures:
            raise ConnectionError("transient outage")
        return Decision.permit(reason="recovered", source="flaky")


class TestResilientCalloutRetry:
    def test_transient_failure_is_retried_to_success(self):
        clock = Clock()
        flaky = _Flaky(failures=2)
        metrics = ResilienceMetrics()
        wrapped = ResilientCallout(
            flaky, name="flaky", clock=clock,
            retry=RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0),
            metrics=metrics,
        )
        decision = wrapped(REQUEST)
        assert decision.is_permit
        assert flaky.calls == 3
        assert metrics.retries == 2
        assert metrics.failures == 2
        # Backoff advanced the simulated clock: 1.0 + 2.0.
        assert clock.now == pytest.approx(3.0)

    def test_exhausted_retries_raise_with_source(self):
        flaky = _Flaky(failures=10)
        wrapped = ResilientCallout(
            flaky, name="cas",
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
        )
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            wrapped(REQUEST)
        assert excinfo.value.source == "cas"
        assert flaky.calls == 3

    def test_no_retry_policy_means_single_attempt(self):
        flaky = _Flaky(failures=1)
        wrapped = ResilientCallout(flaky, name="once")
        with pytest.raises(AuthorizationSystemFailure):
            wrapped(REQUEST)
        assert flaky.calls == 1

    def test_attempts_and_backoffs_land_on_the_decision_context(self):
        clock = Clock()
        flaky = _Flaky(failures=1)
        wrapped = ResilientCallout(
            flaky, name="flaky", clock=clock,
            retry=RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.0),
        )
        context = DecisionContext.from_request(REQUEST)
        with activate(context):
            wrapped(REQUEST)
        stages = [record.name for record in context.stages]
        assert "attempt:flaky#1" in stages
        assert "retry:flaky" in stages


class _Slow:
    """Advances the simulated clock before answering."""

    def __init__(self, clock, latency):
        self.clock = clock
        self.latency = latency

    def __call__(self, request):
        self.clock.advance(self.latency)
        return Decision.permit(reason="eventually", source="slow")


class TestSimulatedTimeouts:
    def test_call_exceeding_budget_becomes_timeout(self):
        clock = Clock()
        metrics = ResilienceMetrics()
        wrapped = ResilientCallout(
            _Slow(clock, latency=5.0), name="akenti", clock=clock,
            timeout=1.0, metrics=metrics,
        )
        with pytest.raises(CalloutTimeout) as excinfo:
            wrapped(REQUEST)
        assert excinfo.value.source == "akenti"
        assert excinfo.value.kind == "timeout"
        assert metrics.timeouts == 1

    def test_call_within_budget_passes(self):
        clock = Clock()
        wrapped = ResilientCallout(
            _Slow(clock, latency=0.5), name="akenti", clock=clock, timeout=1.0
        )
        assert wrapped(REQUEST).is_permit

    def test_timeouts_are_retried_like_any_failure(self):
        clock = Clock()
        metrics = ResilienceMetrics()
        wrapped = ResilientCallout(
            _Slow(clock, latency=5.0), name="slow", clock=clock, timeout=1.0,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
            metrics=metrics,
        )
        with pytest.raises(CalloutTimeout):
            wrapped(REQUEST)
        assert metrics.timeouts == 3
        assert metrics.retries == 2
