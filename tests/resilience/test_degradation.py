"""Degradation modes: fail-closed vs fail-static, through a real PEP."""

import pytest

from repro.core.callout import GRAM_AUTHZ_CALLOUT, default_registry
from repro.core.decision import Decision
from repro.core.errors import AuthorizationDenied, AuthorizationSystemFailure
from repro.core.pep import EnforcementPoint
from repro.core.request import AuthorizationRequest
from repro.core.resilience import (
    DegradationMode,
    ResilienceConfig,
    ResilienceMiddleware,
)
from repro.rsl.parser import parse_specification

from tests.conftest import BO, KATE


class _EpochStub:
    def __init__(self):
        self.policy_epoch = 0


class _Toggleable:
    """Permits BO / denies others while healthy; raises when down."""

    def __init__(self):
        self.down = False

    def __call__(self, request):
        if self.down:
            raise ConnectionError("policy source unreachable")
        if str(request.requester) == BO:
            return Decision.permit(reason="known user", source="toggle")
        return Decision.deny(reasons=("unknown user",), source="toggle")


def request_for(who, executable="test1"):
    return AuthorizationRequest.start(
        who, parse_specification(f"&(executable={executable})(count=1)")
    )


def build(mode, epoch_source=None):
    registry = default_registry()
    source = _Toggleable()
    registry.register(GRAM_AUTHZ_CALLOUT, source, label="toggle")
    config = ResilienceConfig(mode=mode)
    middleware = config.middleware(
        [epoch_source] if epoch_source is not None else []
    )
    pep = EnforcementPoint(registry=registry, resilience=middleware)
    return pep, source, config, middleware


class TestFailClosed:
    def test_failure_propagates_with_source(self):
        pep, source, config, _ = build(DegradationMode.FAIL_CLOSED)
        source.down = True
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            pep.authorize(request_for(BO))
        assert excinfo.value.source == "toggle"
        assert config.metrics.failed_closed == 1

    def test_failure_even_with_a_fresh_last_known_good(self):
        pep, source, config, _ = build(DegradationMode.FAIL_CLOSED)
        assert pep.authorize(request_for(BO)).is_permit
        source.down = True
        with pytest.raises(AuthorizationSystemFailure):
            pep.authorize(request_for(BO))
        assert config.metrics.degraded_static == 0


class TestFailStatic:
    def test_serves_last_known_good_and_flags_provenance(self):
        pep, source, config, _ = build(DegradationMode.FAIL_STATIC)
        healthy = pep.authorize(request_for(BO))
        assert healthy.context.degraded == ""
        source.down = True
        degraded = pep.authorize(request_for(BO))
        assert degraded.is_permit
        assert degraded.context.degraded == "fail-static"
        assert any(
            record.name == "resilience" and "last-known-good" in record.detail
            for record in degraded.context.stages
        )
        assert any(
            record.detail == "last-known-good"
            for record in degraded.context.sources
        )
        assert config.metrics.degraded_static == 1
        assert pep.metrics.degraded == 1

    def test_denials_are_served_statically_too(self):
        pep, source, config, _ = build(DegradationMode.FAIL_STATIC)
        with pytest.raises(AuthorizationDenied):
            pep.authorize(request_for(KATE))
        source.down = True
        # Still a *denial*, not a system failure: the stale decision
        # keeps the deny/failure distinction intact.
        with pytest.raises(AuthorizationDenied):
            pep.authorize(request_for(KATE))
        assert config.metrics.degraded_static == 1

    def test_no_last_known_good_fails_closed(self):
        pep, source, config, _ = build(DegradationMode.FAIL_STATIC)
        source.down = True
        with pytest.raises(AuthorizationSystemFailure):
            pep.authorize(request_for(BO))
        assert config.metrics.failed_closed == 1

    def test_different_request_does_not_reuse_anothers_decision(self):
        pep, source, _, _ = build(DegradationMode.FAIL_STATIC)
        pep.authorize(request_for(BO, executable="test1"))
        source.down = True
        with pytest.raises(AuthorizationSystemFailure):
            pep.authorize(request_for(BO, executable="other"))

    def test_epoch_bump_invalidates_the_stale_decision(self):
        epochs = _EpochStub()
        pep, source, _, _ = build(DegradationMode.FAIL_STATIC, epoch_source=epochs)
        pep.authorize(request_for(BO))
        source.down = True
        assert pep.authorize(request_for(BO)).is_permit  # same epoch: served
        epochs.policy_epoch += 1
        # The policy changed; yesterday's PERMIT must never outlive it.
        with pytest.raises(AuthorizationSystemFailure):
            pep.authorize(request_for(BO))

    def test_recovery_refreshes_the_store_under_the_new_epoch(self):
        epochs = _EpochStub()
        pep, source, _, _ = build(DegradationMode.FAIL_STATIC, epoch_source=epochs)
        pep.authorize(request_for(BO))
        epochs.policy_epoch += 1
        pep.authorize(request_for(BO))  # healthy call under the new epoch
        source.down = True
        assert pep.authorize(request_for(BO)).is_permit

    def test_store_is_bounded(self):
        middleware = ResilienceMiddleware(
            mode=DegradationMode.FAIL_STATIC, lkg_limit=2
        )
        registry = default_registry()
        source = _Toggleable()
        registry.register(GRAM_AUTHZ_CALLOUT, source, label="toggle")
        pep = EnforcementPoint(registry=registry, resilience=middleware)
        for executable in ("a", "b", "c", "d"):
            pep.authorize(request_for(BO, executable=executable))
        assert middleware.lkg_size == 2


class TestMiddlewarePlacement:
    def test_resilience_sits_between_extras_and_cache(self):
        from repro.core.pipeline import DecisionCache

        middleware = ResilienceMiddleware()
        pep = EnforcementPoint(resilience=middleware, cache=DecisionCache())
        stack = pep.middlewares
        assert stack.index(middleware) == len(stack) - 2
        assert stack[-1] is pep.cache

    def test_use_resilience_rebuilds_the_chain(self):
        pep, source, _, _ = build(DegradationMode.FAIL_CLOSED)
        source.down = True
        with pytest.raises(AuthorizationSystemFailure):
            pep.authorize(request_for(BO))
        replacement = ResilienceMiddleware(mode=DegradationMode.FAIL_STATIC)
        pep.use_resilience(replacement)
        assert pep.resilience is replacement
