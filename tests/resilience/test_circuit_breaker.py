"""Circuit-breaker state machine: closed → open → half-open."""

import pytest

from repro.core.decision import Decision
from repro.core.errors import AuthorizationSystemFailure
from repro.core.request import AuthorizationRequest
from repro.core.resilience import (
    BreakerOpen,
    BreakerState,
    CircuitBreaker,
    ResilienceMetrics,
    ResilientCallout,
    RetryPolicy,
)
from repro.rsl.parser import parse_specification
from repro.sim.clock import Clock

from tests.conftest import BO

REQUEST = AuthorizationRequest.start(
    BO, parse_specification("&(executable=test1)(count=1)")
)


class _EpochStub:
    def __init__(self):
        self.policy_epoch = 0


def _fail_times(breaker, n):
    for _ in range(n):
        breaker.before_call()
        breaker.record_failure()


class TestStateMachine:
    def test_starts_closed(self):
        assert CircuitBreaker("s").state is BreakerState.CLOSED

    def test_opens_at_failure_threshold(self):
        breaker = CircuitBreaker("s", failure_threshold=3)
        _fail_times(breaker, 2)
        assert breaker.state is BreakerState.CLOSED
        _fail_times(breaker, 1)
        assert breaker.state is BreakerState.OPEN

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker("s", failure_threshold=3)
        _fail_times(breaker, 2)
        breaker.before_call()
        breaker.record_success()
        _fail_times(breaker, 2)
        assert breaker.state is BreakerState.CLOSED

    def test_open_breaker_fast_fails(self):
        breaker = CircuitBreaker("s", failure_threshold=1)
        _fail_times(breaker, 1)
        with pytest.raises(BreakerOpen) as excinfo:
            breaker.before_call()
        assert excinfo.value.source == "s"
        assert excinfo.value.kind == "breaker-open"
        assert breaker.fast_fails == 1

    def test_reset_timeout_moves_to_half_open(self):
        clock = Clock()
        breaker = CircuitBreaker(
            "s", clock=clock, failure_threshold=1, reset_timeout=30.0
        )
        _fail_times(breaker, 1)
        clock.advance(29.0)
        assert breaker.state is BreakerState.OPEN
        clock.advance(1.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_probe_success_closes(self):
        clock = Clock()
        breaker = CircuitBreaker(
            "s", clock=clock, failure_threshold=1, reset_timeout=10.0
        )
        _fail_times(breaker, 1)
        clock.advance(10.0)
        breaker.before_call()  # the probe
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = Clock()
        breaker = CircuitBreaker(
            "s", clock=clock, failure_threshold=1, reset_timeout=10.0
        )
        _fail_times(breaker, 1)
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_half_open_admits_exactly_one_probe(self):
        clock = Clock()
        breaker = CircuitBreaker(
            "s", clock=clock, failure_threshold=1, reset_timeout=10.0
        )
        _fail_times(breaker, 1)
        clock.advance(10.0)
        breaker.before_call()  # probe in flight
        with pytest.raises(BreakerOpen):
            breaker.before_call()  # concurrent caller sheds

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("s", failure_threshold=0)


class TestEpochAwareReset:
    def test_policy_epoch_bump_moves_to_half_open_immediately(self):
        clock = Clock()
        epochs = _EpochStub()
        breaker = CircuitBreaker(
            "s", clock=clock, failure_threshold=1, reset_timeout=1000.0,
            epoch_source=epochs,
        )
        _fail_times(breaker, 1)
        assert breaker.state is BreakerState.OPEN
        epochs.policy_epoch += 1
        # No time has passed; the new policy version alone re-arms it.
        assert breaker.state is BreakerState.HALF_OPEN

    def test_unchanged_epoch_keeps_breaker_open(self):
        clock = Clock()
        breaker = CircuitBreaker(
            "s", clock=clock, failure_threshold=1, reset_timeout=1000.0,
            epoch_source=_EpochStub(),
        )
        _fail_times(breaker, 1)
        assert breaker.state is BreakerState.OPEN


class TestTransitionLog:
    def test_transitions_form_an_unbroken_chain(self):
        clock = Clock()
        breaker = CircuitBreaker(
            "s", clock=clock, failure_threshold=1, reset_timeout=5.0
        )
        for _ in range(3):
            _fail_times(breaker, 1)  # -> OPEN
            clock.advance(5.0)
            breaker.before_call()  # -> HALF_OPEN probe
            breaker.record_success()  # -> CLOSED
        states = [t.to_state for t in breaker.transitions]
        assert states == [
            BreakerState.OPEN, BreakerState.HALF_OPEN, BreakerState.CLOSED,
        ] * 3
        assert breaker.is_consistent()

    def test_transitions_carry_reasons_and_times(self):
        clock = Clock()
        breaker = CircuitBreaker("s", clock=clock, failure_threshold=2)
        clock.advance(7.0)
        _fail_times(breaker, 2)
        (transition,) = breaker.transitions
        assert transition.at == 7.0
        assert "2 consecutive" in transition.reason


class _AlwaysFails:
    def __init__(self):
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        raise ConnectionError("down")


class TestBreakerInsideResilientCallout:
    def test_threshold_failures_open_then_fast_fail(self):
        clock = Clock()
        source = _AlwaysFails()
        metrics = ResilienceMetrics()
        wrapped = ResilientCallout(
            source, name="cas", clock=clock,
            breaker=CircuitBreaker(
                "cas", clock=clock, failure_threshold=3, reset_timeout=60.0
            ),
            metrics=metrics,
        )
        for _ in range(3):
            with pytest.raises(AuthorizationSystemFailure):
                wrapped(REQUEST)
        assert source.calls == 3
        with pytest.raises(BreakerOpen):
            wrapped(REQUEST)
        assert source.calls == 3  # fast-fail: the source was not touched
        assert metrics.fast_fails == 1
        assert metrics.breaker_opens == 1

    def test_open_breaker_short_circuits_the_retry_loop(self):
        clock = Clock()
        source = _AlwaysFails()
        metrics = ResilienceMetrics()
        wrapped = ResilientCallout(
            source, name="cas", clock=clock,
            retry=RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0),
            breaker=CircuitBreaker("cas", clock=clock, failure_threshold=1),
            metrics=metrics,
        )
        with pytest.raises(BreakerOpen):
            wrapped(REQUEST)
        # Attempt 1 failed and opened the breaker; retrying against an
        # open breaker is load-shedding's whole point, so no 5 attempts.
        assert source.calls == 1

    def test_recovery_after_reset_timeout(self):
        clock = Clock()
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ConnectionError("down")
            return Decision.permit(reason="back", source="cas")

        metrics = ResilienceMetrics()
        breaker = CircuitBreaker(
            "cas", clock=clock, failure_threshold=2, reset_timeout=10.0
        )
        wrapped = ResilientCallout(
            flaky, name="cas", clock=clock, breaker=breaker, metrics=metrics
        )
        for _ in range(2):
            with pytest.raises(AuthorizationSystemFailure):
                wrapped(REQUEST)
        clock.advance(10.0)
        assert wrapped(REQUEST).is_permit  # the half-open probe
        assert breaker.state is BreakerState.CLOSED
        assert metrics.breaker_closes == 1
