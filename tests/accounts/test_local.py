"""Static local accounts."""

import pytest

from repro.accounts.local import AccountLimits, AccountRegistry, LocalAccount


class TestAccountLimits:
    def test_unrestricted_allows_everything(self):
        limits = AccountLimits.unrestricted()
        assert limits.allows_executable("anything")
        assert limits.max_cpus_per_job is None

    def test_executable_whitelist(self):
        limits = AccountLimits(allowed_executables=frozenset({"a", "b"}))
        assert limits.allows_executable("a")
        assert not limits.allows_executable("c")


class TestLocalAccount:
    def test_default_home(self):
        account = LocalAccount(username="bo", uid=5001)
        assert account.home == "/home/bo"

    def test_quota_remaining(self):
        account = LocalAccount(
            username="bo",
            uid=5001,
            limits=AccountLimits(cpu_quota_seconds=100.0),
        )
        assert account.quota_remaining() == 100.0
        account.cpu_seconds_used = 30.0
        assert account.quota_remaining() == 70.0
        account.cpu_seconds_used = 150.0
        assert account.quota_remaining() == 0.0

    def test_no_quota_means_none(self):
        account = LocalAccount(username="bo", uid=5001)
        assert account.quota_remaining() is None

    def test_reconfigure(self):
        account = LocalAccount(username="bo", uid=5001)
        account.reconfigure(
            AccountLimits(max_cpus_per_job=2), groups=("vo", "dev")
        )
        assert account.limits.max_cpus_per_job == 2
        assert account.groups == ("vo", "dev")


class TestAccountRegistry:
    def test_create_and_get(self):
        registry = AccountRegistry()
        account = registry.create("bo", groups=("users",))
        assert registry.get("bo") is account
        assert registry.exists("bo")
        assert "bo" in registry
        assert len(registry) == 1

    def test_uids_are_unique(self):
        registry = AccountRegistry()
        uids = {registry.create(f"user{i}").uid for i in range(10)}
        assert len(uids) == 10

    def test_duplicate_name_rejected(self):
        registry = AccountRegistry()
        registry.create("bo")
        with pytest.raises(ValueError):
            registry.create("bo")

    def test_missing_account_raises(self):
        with pytest.raises(KeyError):
            AccountRegistry().get("ghost")

    def test_remove(self):
        registry = AccountRegistry()
        registry.create("bo")
        registry.remove("bo")
        assert not registry.exists("bo")
        with pytest.raises(KeyError):
            registry.remove("bo")
