"""Sandbox monitoring and kills."""

import pytest

from repro.accounts.sandbox import ResourceLimits, Sandbox
from repro.lrm.cluster import Cluster
from repro.lrm.jobs import BatchJob, JobState
from repro.lrm.scheduler import BatchScheduler
from repro.sim.clock import Clock


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def scheduler(clock):
    return BatchScheduler(Cluster.homogeneous("c", 2, 4), clock)


def running_job(scheduler, cpus=2, runtime=100.0):
    job = BatchJob(account="a", executable="sim", cpus=cpus, runtime=runtime)
    scheduler.submit(job)
    return job


class TestLimits:
    def test_unlimited(self):
        assert ResourceLimits.unlimited().is_unlimited
        assert not ResourceLimits(max_cpus=1).is_unlimited


class TestAdmission:
    def test_cpu_cap_kills_at_admission(self, scheduler, clock):
        job = running_job(scheduler, cpus=4)
        sandbox = Sandbox(
            job, ResourceLimits(max_cpus=2), scheduler, clock
        ).start()
        assert job.state is JobState.FAILED
        assert sandbox.violations[0].limit == "cpus"

    def test_within_cap_starts_monitoring(self, scheduler, clock):
        job = running_job(scheduler, cpus=2)
        sandbox = Sandbox(
            job, ResourceLimits(max_cpus=4, max_cpu_seconds=1e9), scheduler, clock
        ).start()
        assert sandbox.active
        assert job.state is JobState.RUNNING


class TestContinuousEnforcement:
    def test_cpu_seconds_violation_kills(self, scheduler, clock):
        job = running_job(scheduler, cpus=2, runtime=100.0)
        sandbox = Sandbox(
            job,
            ResourceLimits(max_cpu_seconds=20.0),
            scheduler,
            clock,
            interval=1.0,
        ).start()
        clock.advance(50.0)
        assert job.state is JobState.FAILED
        assert "sandbox" in job.exit_reason
        violation = sandbox.violations[0]
        assert violation.limit == "cpu-seconds"
        # 2 cpus * 10s = 20 cpu-seconds; first sample past that is t=11.
        assert violation.detected_at == pytest.approx(11.0)

    def test_wall_seconds_violation_kills(self, scheduler, clock):
        job = running_job(scheduler, cpus=1, runtime=100.0)
        Sandbox(
            job,
            ResourceLimits(max_wall_seconds=30.0),
            scheduler,
            clock,
            interval=1.0,
        ).start()
        clock.advance(32.0)
        assert job.state is JobState.FAILED

    def test_detection_latency_scales_with_interval(self, scheduler, clock):
        job = running_job(scheduler, cpus=1, runtime=1000.0)
        sandbox = Sandbox(
            job,
            ResourceLimits(max_cpu_seconds=10.0),
            scheduler,
            clock,
            interval=7.0,
        ).start()
        clock.advance(100.0)
        violation = sandbox.violations[0]
        # violation at t>10; samples at 7, 14 -> detected at 14.
        assert violation.detected_at == pytest.approx(14.0)

    def test_job_within_limits_is_untouched(self, scheduler, clock):
        job = running_job(scheduler, cpus=1, runtime=10.0)
        sandbox = Sandbox(
            job,
            ResourceLimits(max_cpu_seconds=1000.0),
            scheduler,
            clock,
            interval=1.0,
        ).start()
        clock.advance(20.0)
        assert job.state is JobState.COMPLETED
        assert sandbox.violations == []

    def test_monitor_stops_when_job_finishes(self, scheduler, clock):
        job = running_job(scheduler, cpus=1, runtime=5.0)
        sandbox = Sandbox(
            job, ResourceLimits(max_cpu_seconds=1e9), scheduler, clock, interval=1.0
        ).start()
        clock.advance(10.0)
        assert not sandbox.active

    def test_suspended_job_does_not_accrue_cpu_seconds(self, scheduler, clock):
        job = running_job(scheduler, cpus=2, runtime=100.0)
        sandbox = Sandbox(
            job,
            ResourceLimits(max_cpu_seconds=30.0),
            scheduler,
            clock,
            interval=1.0,
        ).start()
        clock.advance(5.0)  # 10 cpu-seconds consumed
        scheduler.suspend(job.job_id)
        clock.advance(1000.0)
        assert job.state is JobState.SUSPENDED
        assert sandbox.violations == []

    def test_violation_callback_invoked(self, scheduler, clock):
        seen = []
        job = running_job(scheduler, cpus=2, runtime=100.0)
        Sandbox(
            job,
            ResourceLimits(max_cpu_seconds=4.0),
            scheduler,
            clock,
            interval=1.0,
            on_violation=seen.append,
        ).start()
        clock.advance(10.0)
        assert len(seen) == 1
        assert seen[0].job_id == job.job_id

    def test_unlimited_sandbox_never_samples(self, scheduler, clock):
        job = running_job(scheduler, cpus=1, runtime=10.0)
        sandbox = Sandbox(
            job, ResourceLimits.unlimited(), scheduler, clock, interval=1.0
        ).start()
        clock.advance(20.0)
        assert sandbox.samples == 0

    def test_bad_interval_rejected(self, scheduler, clock):
        job = running_job(scheduler)
        with pytest.raises(ValueError):
            Sandbox(job, ResourceLimits(), scheduler, clock, interval=0.0)
