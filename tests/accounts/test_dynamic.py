"""Dynamic account pool."""

import pytest

from repro.accounts.dynamic import DynamicAccountError, DynamicAccountPool
from repro.accounts.local import AccountLimits, AccountRegistry
from repro.sim.clock import Clock

IDENTITY = "/O=Grid/CN=Visitor"


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def pool(clock):
    return DynamicAccountPool(AccountRegistry(), clock, size=3, prefix="dyn")


class TestAllocation:
    def test_allocate_configures_account(self, pool):
        lease = pool.allocate(
            IDENTITY,
            limits=AccountLimits(max_cpus_per_job=2),
            groups=("vo",),
        )
        assert lease.account.dynamic
        assert lease.account.limits.max_cpus_per_job == 2
        assert lease.account.groups == ("vo",)
        assert pool.available == 2

    def test_pool_exhaustion(self, pool):
        for index in range(3):
            pool.allocate(f"{IDENTITY}{index}")
        with pytest.raises(DynamicAccountError):
            pool.allocate("/O=Grid/CN=One Too Many")

    def test_release_recycles_and_wipes(self, pool):
        lease = pool.allocate(IDENTITY, limits=AccountLimits(max_cpus_per_job=2))
        lease.account.cpu_seconds_used = 99.0
        pool.release(lease)
        assert pool.available == 3
        # The recycled account must not leak the previous tenant's state.
        fresh = pool.allocate("/O=Grid/CN=Next Tenant")
        assert fresh.account.cpu_seconds_used == 0.0
        assert fresh.account.limits.max_cpus_per_job is None

    def test_double_release_rejected(self, pool):
        lease = pool.allocate(IDENTITY)
        pool.release(lease)
        with pytest.raises(DynamicAccountError):
            pool.release(lease)

    def test_zero_size_pool_rejected(self, clock):
        with pytest.raises(ValueError):
            DynamicAccountPool(AccountRegistry(), clock, size=0)


class TestLeases:
    def test_lease_for_finds_active_lease(self, pool):
        lease = pool.allocate(IDENTITY)
        assert pool.lease_for(IDENTITY) is lease
        assert pool.lease_for("/O=Grid/CN=Nobody") is None

    def test_lease_expiry_recycles(self, pool, clock):
        pool.allocate(IDENTITY, lease_time=100.0)
        clock.advance(99.0)
        assert pool.available == 2
        clock.advance(2.0)
        assert pool.available == 3
        assert pool.lease_for(IDENTITY) is None

    def test_expired_lease_is_inactive(self, pool, clock):
        lease = pool.allocate(IDENTITY, lease_time=10.0)
        assert lease.active(clock.now)
        clock.advance(11.0)
        assert not lease.active(clock.now)

    def test_allocations_counter(self, pool):
        pool.allocate(IDENTITY + "1")
        pool.allocate(IDENTITY + "2")
        assert pool.allocations == 2
