"""The three enforcement vehicles, contrasted (paper §6.1)."""

import pytest

from repro.accounts.enforcement import (
    DynamicAccountEnforcement,
    SandboxEnforcement,
    StaticAccountEnforcement,
)
from repro.accounts.local import AccountLimits, LocalAccount
from repro.accounts.sandbox import ResourceLimits
from repro.lrm.cluster import Cluster
from repro.lrm.jobs import BatchJob, JobState
from repro.lrm.scheduler import BatchScheduler
from repro.sim.clock import Clock


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def scheduler(clock):
    return BatchScheduler(Cluster.homogeneous("c", 4, 4), clock)


def account(**kwargs):
    return LocalAccount(username="grid01", uid=5001, **kwargs)


def dynamic_account(**kwargs):
    return LocalAccount(username="dyn01", uid=6001, dynamic=True, **kwargs)


def job(cpus=2, runtime=10.0, executable="sim"):
    return BatchJob(account="grid01", executable=executable, cpus=cpus, runtime=runtime)


class TestStaticAccountEnforcement:
    def test_enforces_account_limits(self):
        mech = StaticAccountEnforcement()
        acct = account(limits=AccountLimits(max_cpus_per_job=4))
        assert mech.admit(job(cpus=4), acct, ResourceLimits()).admitted
        assert not mech.admit(job(cpus=8), acct, ResourceLimits()).admitted

    def test_blind_to_policy_limits(self):
        """The defining weakness: per-request limits are invisible."""
        mech = StaticAccountEnforcement()
        acct = account()
        outcome = mech.admit(job(cpus=8), acct, ResourceLimits(max_cpus=2))
        assert outcome.admitted  # over the policy limit, admitted anyway

    def test_executable_whitelist(self):
        mech = StaticAccountEnforcement()
        acct = account(limits=AccountLimits(allowed_executables=frozenset({"sim"})))
        assert mech.admit(job(executable="sim"), acct, ResourceLimits()).admitted
        assert not mech.admit(job(executable="evil"), acct, ResourceLimits()).admitted

    def test_concurrent_job_cap(self):
        mech = StaticAccountEnforcement()
        acct = account(limits=AccountLimits(max_concurrent_jobs=1))
        first = job()
        assert mech.admit(first, acct, ResourceLimits()).admitted
        mech.job_started(first, acct, ResourceLimits())
        assert not mech.admit(job(), acct, ResourceLimits()).admitted
        mech.job_finished(first, acct)
        assert mech.admit(job(), acct, ResourceLimits()).admitted

    def test_quota_exhaustion_blocks_admission(self):
        mech = StaticAccountEnforcement()
        acct = account(limits=AccountLimits(cpu_quota_seconds=10.0))
        acct.cpu_seconds_used = 15.0
        assert not mech.admit(job(), acct, ResourceLimits()).admitted

    def test_counters(self):
        mech = StaticAccountEnforcement()
        acct = account(limits=AccountLimits(max_cpus_per_job=4))
        mech.admit(job(cpus=2), acct, ResourceLimits())
        mech.admit(job(cpus=8), acct, ResourceLimits())
        assert mech.admissions == 1
        assert mech.rejections == 1


class TestDynamicAccountEnforcement:
    def test_policy_limits_installed_into_account(self):
        mech = DynamicAccountEnforcement()
        acct = dynamic_account()
        outcome = mech.admit(job(cpus=8), acct, ResourceLimits(max_cpus=2))
        assert not outcome.admitted
        assert acct.limits.max_cpus_per_job == 2

    def test_within_policy_admitted(self):
        mech = DynamicAccountEnforcement()
        acct = dynamic_account()
        assert mech.admit(job(cpus=2), acct, ResourceLimits(max_cpus=4)).admitted

    def test_requires_dynamic_account(self):
        mech = DynamicAccountEnforcement()
        outcome = mech.admit(job(), account(), ResourceLimits())
        assert not outcome.admitted
        assert "not dynamically managed" in outcome.reason

    def test_no_continuous_enforcement(self, scheduler, clock):
        """Admission-time only: a job that overruns is never killed."""
        mech = DynamicAccountEnforcement()
        acct = dynamic_account()
        overrunner = job(cpus=2, runtime=100.0)
        limits = ResourceLimits(max_cpus=4, max_cpu_seconds=10.0)
        assert mech.admit(overrunner, acct, limits).admitted
        scheduler.submit(overrunner)
        mech.job_started(overrunner, acct, limits)
        clock.advance(200.0)
        assert overrunner.state is JobState.COMPLETED  # ran to completion
        assert mech.violations == []


class TestSandboxEnforcement:
    def test_admission_checks_policy_cpus(self, scheduler, clock):
        mech = SandboxEnforcement(scheduler, clock)
        outcome = mech.admit(job(cpus=8), account(), ResourceLimits(max_cpus=2))
        assert not outcome.admitted

    def test_continuous_enforcement_kills_overrunner(self, scheduler, clock):
        mech = SandboxEnforcement(scheduler, clock, interval=1.0)
        acct = account()
        overrunner = job(cpus=2, runtime=100.0)
        limits = ResourceLimits(max_cpus=4, max_cpu_seconds=10.0)
        assert mech.admit(overrunner, acct, limits).admitted
        scheduler.submit(overrunner)
        mech.job_started(overrunner, acct, limits)
        clock.advance(200.0)
        assert overrunner.state is JobState.FAILED
        assert len(mech.violations) == 1

    def test_sandbox_released_on_completion(self, scheduler, clock):
        mech = SandboxEnforcement(scheduler, clock, interval=1.0)
        acct = account()
        fine = job(cpus=1, runtime=5.0)
        limits = ResourceLimits(max_cpu_seconds=100.0)
        mech.admit(fine, acct, limits)
        scheduler.submit(fine)
        mech.job_started(fine, acct, limits)
        clock.advance(10.0)
        mech.job_finished(fine, acct)
        assert mech.active_sandboxes == 0

    def test_account_usage_updated_on_finish(self, scheduler, clock):
        mech = SandboxEnforcement(scheduler, clock)
        acct = account()
        j = job(cpus=2, runtime=10.0)
        mech.admit(j, acct, ResourceLimits())
        scheduler.submit(j)
        mech.job_started(j, acct, ResourceLimits())
        clock.advance(10.0)
        mech.job_finished(j, acct)
        assert acct.cpu_seconds_used == pytest.approx(20.0)
        assert acct.running_jobs == 0


class TestVehicleContrast:
    def test_only_sandbox_stops_runtime_violations(self, clock):
        """The §6.1 comparison in one test: same over-limit job under
        each vehicle; only the sandbox detects and stops it."""
        results = {}
        for name, build in (
            ("static", lambda s: StaticAccountEnforcement()),
            ("dynamic", lambda s: DynamicAccountEnforcement()),
            ("sandbox", lambda s: SandboxEnforcement(s, clock, interval=1.0)),
        ):
            scheduler = BatchScheduler(
                Cluster.homogeneous(name, 4, 4), clock
            )
            mech = build(scheduler)
            acct = dynamic_account() if name == "dynamic" else account()
            # Declares 10 cpu-seconds, actually needs 100s of runtime.
            overrunner = BatchJob(
                account=acct.username, executable="sim", cpus=1, runtime=100.0
            )
            limits = ResourceLimits(max_cpus=4, max_cpu_seconds=10.0)
            outcome = mech.admit(overrunner, acct, limits)
            assert outcome.admitted
            scheduler.submit(overrunner)
            mech.job_started(overrunner, acct, limits)
            clock.advance(200.0)
            results[name] = (overrunner.state, len(mech.violations))

        assert results["static"] == (JobState.COMPLETED, 0)
        assert results["dynamic"] == (JobState.COMPLETED, 0)
        assert results["sandbox"][0] is JobState.FAILED
        assert results["sandbox"][1] == 1
