"""Every example script must run cleanly — examples are executable docs."""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[p.stem for p in EXAMPLE_SCRIPTS]
)
class TestExamples:
    def test_example_runs_and_produces_output(self, script, capsys):
        module = load_module(script)
        assert hasattr(module, "main"), f"{script.name} must define main()"
        module.main()
        out = capsys.readouterr().out
        assert out.strip(), f"{script.name} printed nothing"

    def test_example_has_a_docstring(self, script):
        module = load_module(script)
        assert module.__doc__ and len(module.__doc__) > 40


def test_expected_example_set_present():
    names = {p.stem for p in EXAMPLE_SCRIPTS}
    required = {
        "quickstart",
        "vo_job_management",
        "fusion_collaboratory",
        "policy_sources",
        "dynamic_policy",
        "federated_vo",
    }
    assert required <= names, f"missing examples: {required - names}"
