"""Credential-chain verification."""

import pytest

from repro.gsi.credentials import CertificateAuthority, Credential
from repro.gsi.errors import (
    CertificateExpiredError,
    SignatureError,
    UntrustedIssuerError,
    VerificationError,
)
from repro.gsi.keys import KeyPair
from repro.gsi.proxy import delegate
from repro.gsi.verification import verify_chain, verify_credential

ALICE = "/O=Grid/OU=test/CN=Alice"


@pytest.fixture
def ca():
    return CertificateAuthority("/O=Grid/CN=Test CA", now=0.0)


@pytest.fixture
def alice(ca):
    return ca.issue(ALICE, now=0.0)


class TestHappyPaths:
    def test_identity_credential_verifies(self, ca, alice):
        result = verify_credential(alice, [ca], at_time=10.0)
        assert str(result.identity) == ALICE
        assert result.proxy_depth == 0
        assert result.anchor == ca.dn

    def test_single_proxy_verifies(self, ca, alice):
        proxy = delegate(alice, now=1.0)
        result = verify_credential(proxy, [ca], at_time=10.0)
        assert str(result.identity) == ALICE
        assert result.proxy_depth == 1
        assert result.chain_length == 2

    def test_deep_delegation_verifies(self, ca, alice):
        credential = alice
        for _ in range(5):
            credential = delegate(credential, now=1.0)
        result = verify_credential(credential, [ca], at_time=10.0)
        assert result.proxy_depth == 5
        assert str(result.identity) == ALICE

    def test_multiple_anchors(self, ca, alice):
        other = CertificateAuthority("/O=Other/CN=CA", now=0.0)
        result = verify_credential(alice, [other, ca], at_time=10.0)
        assert result.anchor == ca.dn


class TestFailures:
    def test_empty_chain_rejected(self, ca):
        with pytest.raises(VerificationError):
            verify_chain([], [ca], at_time=0.0)

    def test_no_anchors_rejected(self, alice):
        with pytest.raises(UntrustedIssuerError):
            verify_chain(alice.full_chain(), [], at_time=0.0)

    def test_untrusted_issuer_rejected(self, alice):
        stranger = CertificateAuthority("/O=Stranger/CN=CA", now=0.0)
        with pytest.raises(UntrustedIssuerError):
            verify_credential(alice, [stranger], at_time=10.0)

    def test_expired_certificate_rejected(self, ca):
        short = ca.issue(ALICE, now=0.0, lifetime=10.0)
        with pytest.raises(CertificateExpiredError):
            verify_credential(short, [ca], at_time=11.0)

    def test_not_yet_valid_rejected(self, ca):
        future = ca.issue(ALICE, now=100.0)
        with pytest.raises(CertificateExpiredError):
            verify_credential(future, [ca], at_time=50.0)

    def test_expired_proxy_rejected(self, ca, alice):
        proxy = delegate(alice, now=0.0, lifetime=5.0)
        with pytest.raises(CertificateExpiredError):
            verify_credential(proxy, [ca], at_time=6.0)

    def test_revoked_identity_rejected(self, ca, alice):
        ca.revoke(alice.certificate)
        with pytest.raises(VerificationError):
            verify_credential(alice, [ca], at_time=1.0)

    def test_revoked_base_poisons_proxies(self, ca, alice):
        proxy = delegate(alice, now=0.0)
        ca.revoke(alice.certificate)
        with pytest.raises(VerificationError):
            verify_credential(proxy, [ca], at_time=1.0)

    def test_truncated_chain_rejected(self, ca, alice):
        """A proxy presented without its ancestry cannot verify."""
        proxy = delegate(alice, now=0.0)
        orphan = Credential(certificate=proxy.certificate, key_pair=proxy.key_pair)
        with pytest.raises(VerificationError):
            verify_credential(orphan, [ca], at_time=1.0)

    def test_stolen_certificate_fails_possession(self, ca, alice):
        """Holding the public certificate without the key is not enough."""
        thief_keys = KeyPair("thief")
        stolen = Credential(certificate=alice.certificate, key_pair=thief_keys)
        with pytest.raises(SignatureError):
            verify_credential(stolen, [ca], at_time=1.0)

    def test_explicit_possession_proof_checked(self, ca, alice):
        bad_proof = KeyPair("eve").sign(b"possession:gatekeeper-challenge")
        with pytest.raises(SignatureError):
            verify_credential(
                alice, [ca], at_time=1.0, possession_proof=bad_proof
            )

    def test_valid_explicit_possession_proof(self, ca, alice):
        proof = alice.prove_possession(b"challenge-42")
        result = verify_credential(
            alice, [ca], at_time=1.0, challenge=b"challenge-42",
            possession_proof=proof,
        )
        assert str(result.identity) == ALICE

    def test_chain_with_foreign_cert_spliced_in(self, ca, alice):
        """An attacker cannot splice someone else's proxy into a chain."""
        mallory = ca.issue("/O=Grid/CN=Mallory", now=0.0)
        mallory_proxy = delegate(mallory, now=0.0)
        frankenstein = Credential(
            certificate=mallory_proxy.certificate,
            key_pair=mallory_proxy.key_pair,
            chain=alice.full_chain(),
        )
        with pytest.raises(UntrustedIssuerError):
            verify_credential(frankenstein, [ca], at_time=1.0)
