"""Property-based tests for the simulated GSI."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gsi.credentials import CertificateAuthority
from repro.gsi.errors import GSIError
from repro.gsi.names import DistinguishedName
from repro.gsi.proxy import delegate
from repro.gsi.verification import verify_credential

_cn_chars = string.ascii_letters + string.digits + " .-_"

cn_values = st.text(alphabet=_cn_chars, min_size=1, max_size=20).filter(
    lambda s: s.strip() == s and s.strip()
)


class TestNameProperties:
    @given(parts=st.lists(cn_values, min_size=1, max_size=6))
    @settings(max_examples=150)
    def test_parse_str_round_trip(self, parts):
        text = "".join(f"/CN={part}" for part in parts)
        dn = DistinguishedName.parse(text)
        assert str(dn) == text
        assert DistinguishedName.parse(str(dn)) == dn

    @given(
        parts=st.lists(cn_values, min_size=2, max_size=6),
        cut=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=100)
    def test_every_component_prefix_matches(self, parts, cut):
        text = "".join(f"/CN={part}" for part in parts)
        dn = DistinguishedName.parse(text)
        cut = min(cut, len(parts) - 1)
        prefix_text = "".join(f"/CN={part}" for part in parts[:cut])
        prefix = DistinguishedName.parse(prefix_text)
        assert dn.startswith(prefix)
        assert dn.matches_string_prefix(prefix_text)

    @given(parts=st.lists(cn_values, min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_child_then_parent_is_identity(self, parts):
        text = "".join(f"/CN={part}" for part in parts)
        dn = DistinguishedName.parse(text)
        assert dn.child("CN", "proxy").parent == dn


class TestDelegationProperties:
    @given(depth=st.integers(min_value=0, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_any_depth_chain_verifies(self, depth):
        ca = CertificateAuthority("/O=Grid/CN=CA", now=0.0)
        credential = ca.issue("/O=Grid/CN=User", now=0.0)
        for hop in range(depth):
            credential = delegate(credential, now=float(hop))
        result = verify_credential(credential, [ca], at_time=float(depth))
        assert result.proxy_depth == depth
        assert str(result.identity) == "/O=Grid/CN=User"

    @given(
        depth=st.integers(min_value=1, max_value=5),
        drop=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_truncated_chain_fails(self, depth, drop):
        from repro.gsi.credentials import Credential

        ca = CertificateAuthority("/O=Grid/CN=CA", now=0.0)
        credential = ca.issue("/O=Grid/CN=User", now=0.0)
        for hop in range(depth):
            credential = delegate(credential, now=float(hop))
        drop = drop % len(credential.chain) + 1 if credential.chain else 1
        truncated = Credential(
            certificate=credential.certificate,
            key_pair=credential.key_pair,
            chain=credential.chain[:-drop],
        )
        try:
            verify_credential(truncated, [ca], at_time=float(depth))
        except GSIError:
            pass  # expected: every truncation must fail
        else:
            raise AssertionError("truncated chain verified")

    @given(
        lifetime=st.floats(min_value=1.0, max_value=1000.0),
        offset=st.floats(min_value=0.0, max_value=2000.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_validity_window_is_exact(self, lifetime, offset):
        ca = CertificateAuthority("/O=Grid/CN=CA", now=0.0)
        credential = ca.issue("/O=Grid/CN=User", now=0.0, lifetime=lifetime)
        inside = offset <= lifetime
        try:
            verify_credential(credential, [ca], at_time=offset)
            verified = True
        except GSIError:
            verified = False
        assert verified == inside
