"""Certificates, credentials and the toy CA."""

import pytest

from repro.gsi.credentials import CertificateAuthority, make_certificate
from repro.gsi.errors import GSIError
from repro.gsi.keys import KeyPair
from repro.gsi.names import DistinguishedName

ALICE = "/O=Grid/OU=test/CN=Alice"


@pytest.fixture
def ca():
    return CertificateAuthority("/O=Grid/CN=Test CA", now=0.0)


class TestCertificateAuthority:
    def test_root_is_self_signed(self, ca):
        assert ca.certificate.subject == ca.dn
        assert ca.certificate.issuer == ca.dn
        assert ca.certificate.signed_by(ca.key_pair.public)
        assert ca.certificate.is_ca

    def test_issue_identity(self, ca):
        credential = ca.issue(ALICE, now=0.0)
        assert str(credential.subject) == ALICE
        assert credential.certificate.issuer == ca.dn
        assert credential.certificate.signed_by(ca.key_pair.public)
        assert not credential.certificate.is_ca

    def test_issued_serials_are_unique(self, ca):
        serials = {ca.issue(f"/O=Grid/CN=U{i}").certificate.serial for i in range(10)}
        assert len(serials) == 10

    def test_cannot_issue_own_name(self, ca):
        with pytest.raises(GSIError):
            ca.issue(str(ca.dn))

    def test_issue_with_extensions(self, ca):
        credential = ca.issue(ALICE, extensions={"vo": "NFC"})
        assert credential.certificate.extension_dict == {"vo": "NFC"}

    def test_issued_count(self, ca):
        assert ca.issued_count == 0
        ca.issue(ALICE)
        assert ca.issued_count == 1


class TestRevocation:
    def test_revoke_and_check(self, ca):
        credential = ca.issue(ALICE)
        assert not ca.is_revoked(credential.certificate)
        ca.revoke(credential.certificate, "compromised")
        assert ca.is_revoked(credential.certificate)

    def test_cannot_revoke_foreign_certificate(self, ca):
        other = CertificateAuthority("/O=Other/CN=CA")
        foreign = other.issue(ALICE)
        with pytest.raises(GSIError):
            ca.revoke(foreign.certificate)


class TestCertificate:
    def test_validity_window(self, ca):
        credential = ca.issue(ALICE, now=100.0, lifetime=50.0)
        certificate = credential.certificate
        assert not certificate.valid_at(99.0)
        assert certificate.valid_at(100.0)
        assert certificate.valid_at(150.0)
        assert not certificate.valid_at(151.0)

    def test_empty_window_rejected(self, ca):
        with pytest.raises(GSIError):
            make_certificate(
                subject=DistinguishedName.parse(ALICE),
                issuer=ca.dn,
                public_key=KeyPair().public,
                signer=ca.key_pair,
                not_before=10.0,
                not_after=10.0,
            )

    def test_signature_covers_subject(self, ca):
        """Two certs differing only in subject have different payloads."""
        a = ca.issue("/O=Grid/CN=A").certificate
        b = ca.issue("/O=Grid/CN=B").certificate
        assert a.payload() != b.payload()

    def test_signed_by_wrong_key_fails(self, ca):
        certificate = ca.issue(ALICE).certificate
        assert not certificate.signed_by(KeyPair().public)


class TestCredential:
    def test_identity_of_plain_credential(self, ca):
        credential = ca.issue(ALICE)
        assert credential.identity == credential.subject

    def test_prove_possession(self, ca):
        credential = ca.issue(ALICE)
        proof = credential.prove_possession(b"nonce")
        assert credential.certificate.public_key.verify(b"possession:nonce", proof)

    def test_possession_proof_is_challenge_specific(self, ca):
        credential = ca.issue(ALICE)
        proof = credential.prove_possession(b"nonce-1")
        assert not credential.certificate.public_key.verify(
            b"possession:nonce-2", proof
        )

    def test_full_chain_of_identity(self, ca):
        credential = ca.issue(ALICE)
        assert credential.full_chain() == (credential.certificate,)
