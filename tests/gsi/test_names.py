"""Distinguished-name parsing and matching."""

import pytest

from repro.gsi.names import DistinguishedName

BO = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu"


class TestParsing:
    def test_round_trip(self):
        dn = DistinguishedName.parse(BO)
        assert str(dn) == BO

    def test_components(self):
        dn = DistinguishedName.parse(BO)
        assert dn.rdns == (
            ("O", "Grid"),
            ("O", "Globus"),
            ("OU", "mcs.anl.gov"),
            ("CN", "Bo Liu"),
        )

    def test_attribute_types_uppercased(self):
        dn = DistinguishedName.parse("/o=Grid/cn=Alice")
        assert dn.rdns == (("O", "Grid"), ("CN", "Alice"))

    def test_must_start_with_slash(self):
        with pytest.raises(ValueError):
            DistinguishedName.parse("O=Grid/CN=X")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DistinguishedName.parse("/")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError):
            DistinguishedName.parse("/O=Grid/Globus")

    def test_empty_value_rejected(self):
        with pytest.raises(ValueError):
            DistinguishedName.parse("/O=Grid/CN=")

    def test_escaped_slash_in_value(self):
        dn = DistinguishedName.parse(r"/O=Grid/CN=web\/service")
        assert dn.common_name == "web/service"

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            DistinguishedName.parse(42)

    def test_whitespace_trimmed(self):
        dn = DistinguishedName.parse("  /O=Grid/CN=A  ")
        assert str(dn) == "/O=Grid/CN=A"


class TestAccessors:
    def test_common_name(self):
        assert DistinguishedName.parse(BO).common_name == "Bo Liu"

    def test_common_name_absent(self):
        assert DistinguishedName.parse("/O=Grid/OU=x").common_name == ""

    def test_common_name_takes_last_cn(self):
        dn = DistinguishedName.parse("/O=G/CN=base/CN=proxy")
        assert dn.common_name == "proxy"

    def test_len_and_iter(self):
        dn = DistinguishedName.parse(BO)
        assert len(dn) == 4
        assert list(dn)[0] == ("O", "Grid")

    def test_child_appends(self):
        dn = DistinguishedName.parse("/O=Grid/CN=Bo")
        child = dn.child("CN", "proxy")
        assert str(child) == "/O=Grid/CN=Bo/CN=proxy"

    def test_child_rejects_empty(self):
        dn = DistinguishedName.parse("/O=Grid/CN=Bo")
        with pytest.raises(ValueError):
            dn.child("CN", "  ")

    def test_parent(self):
        dn = DistinguishedName.parse("/O=Grid/CN=Bo/CN=proxy")
        assert str(dn.parent) == "/O=Grid/CN=Bo"

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            DistinguishedName.parse("/O=Grid").parent


class TestMatching:
    def test_component_prefix(self):
        dn = DistinguishedName.parse(BO)
        prefix = DistinguishedName.parse("/O=Grid/O=Globus")
        assert dn.startswith(prefix)
        assert not prefix.startswith(dn)

    def test_string_prefix_matches_figure3_group(self):
        dn = DistinguishedName.parse(BO)
        assert dn.matches_string_prefix("/O=Grid/O=Globus/OU=mcs.anl.gov")

    def test_string_prefix_can_cut_mid_component(self):
        dn = DistinguishedName.parse(BO)
        assert dn.matches_string_prefix("/O=Grid/O=Globus/OU=mcs")

    def test_string_prefix_mismatch(self):
        dn = DistinguishedName.parse(BO)
        assert not dn.matches_string_prefix("/O=Other")

    def test_is_proxy_of_direct(self):
        base = DistinguishedName.parse("/O=Grid/CN=Bo")
        proxy = base.child("CN", "proxy")
        assert proxy.is_proxy_of(base)

    def test_is_proxy_of_multi_level(self):
        base = DistinguishedName.parse("/O=Grid/CN=Bo")
        deep = base.child("CN", "proxy").child("CN", "proxy")
        assert deep.is_proxy_of(base)

    def test_is_proxy_of_rejects_non_cn_extension(self):
        base = DistinguishedName.parse("/O=Grid/CN=Bo")
        fake = base.child("OU", "dept")
        assert not fake.is_proxy_of(base)

    def test_is_proxy_of_rejects_self(self):
        base = DistinguishedName.parse("/O=Grid/CN=Bo")
        assert not base.is_proxy_of(base)

    def test_equality_and_hash(self):
        a = DistinguishedName.parse(BO)
        b = DistinguishedName.parse(BO)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
