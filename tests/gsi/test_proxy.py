"""Proxy certificates and delegation."""

import pytest

from repro.gsi.credentials import CertificateAuthority
from repro.gsi.errors import GSIError
from repro.gsi.proxy import (
    IMPERSONATION,
    ProxyCertificate,
    ProxyPolicy,
    delegate,
    effective_policy,
)

ALICE = "/O=Grid/OU=test/CN=Alice"


@pytest.fixture
def ca():
    return CertificateAuthority("/O=Grid/CN=Test CA", now=0.0)


@pytest.fixture
def alice(ca):
    return ca.issue(ALICE, now=0.0)


class TestDelegation:
    def test_proxy_subject_extends_delegator(self, alice):
        proxy = delegate(alice, now=1.0)
        assert str(proxy.subject) == ALICE + "/CN=proxy"
        assert isinstance(proxy.certificate, ProxyCertificate)

    def test_proxy_signed_by_delegator_not_ca(self, alice):
        proxy = delegate(alice, now=1.0)
        assert proxy.certificate.issuer == alice.subject
        assert proxy.certificate.signed_by(alice.key_pair.public)

    def test_proxy_has_fresh_key(self, alice):
        proxy = delegate(alice, now=1.0)
        assert (
            proxy.key_pair.public.fingerprint
            != alice.key_pair.public.fingerprint
        )

    def test_chain_grows_with_each_hop(self, alice):
        hop1 = delegate(alice, now=1.0)
        hop2 = delegate(hop1, now=2.0)
        assert len(hop2.full_chain()) == 3
        assert hop2.chain[-1] is alice.certificate

    def test_identity_is_base_subject(self, alice):
        hop2 = delegate(delegate(alice, now=1.0), now=2.0)
        assert str(hop2.identity) == ALICE

    def test_custom_label(self, alice):
        proxy = delegate(alice, now=1.0, label="cas-proxy")
        assert proxy.subject.common_name == "cas-proxy"

    def test_empty_label_rejected(self, alice):
        with pytest.raises(GSIError):
            delegate(alice, label="   ")

    def test_proxy_lifetime_clamped_to_parent(self, ca):
        short = ca.issue(ALICE, now=0.0, lifetime=100.0)
        proxy = delegate(short, now=50.0, lifetime=1000.0)
        assert proxy.certificate.not_after == 100.0

    def test_cannot_delegate_from_expired_parent(self, ca):
        short = ca.issue(ALICE, now=0.0, lifetime=100.0)
        with pytest.raises(GSIError):
            delegate(short, now=200.0)


class TestPathLength:
    def test_path_length_zero_blocks_further_delegation(self, alice):
        proxy = delegate(alice, now=1.0, path_length=0)
        with pytest.raises(GSIError):
            delegate(proxy, now=2.0)

    def test_path_length_decrements(self, alice):
        proxy = delegate(alice, now=1.0, path_length=2)
        hop2 = delegate(proxy, now=2.0)
        assert hop2.certificate.path_length == 1
        hop3 = delegate(hop2, now=3.0)
        assert hop3.certificate.path_length == 0
        with pytest.raises(GSIError):
            delegate(hop3, now=4.0)

    def test_negative_path_length_rejected(self, alice):
        with pytest.raises(GSIError):
            delegate(alice, path_length=-1)


class TestPolicies:
    def test_default_is_impersonation(self, alice):
        proxy = delegate(alice, now=1.0)
        assert proxy.certificate.policy.is_impersonation

    def test_restricted_proxy_carries_policy(self, alice):
        policy = ProxyPolicy(language="CAS-RSL", text="&(action=start)")
        proxy = delegate(alice, now=1.0, policy=policy)
        assert proxy.certificate.policy == policy

    def test_effective_policy_none_for_impersonation(self, alice):
        proxy = delegate(delegate(alice, now=1.0), now=2.0)
        assert effective_policy(proxy) is None

    def test_effective_policy_finds_restriction_deep_in_chain(self, alice):
        restricted = delegate(
            alice, now=1.0, policy=ProxyPolicy("CAS-RSL", "&(action=start)")
        )
        further = delegate(restricted, now=2.0)
        found = effective_policy(further)
        assert found is not None
        assert found.text == "&(action=start)"

    def test_leafmost_restriction_wins(self, alice):
        outer = delegate(alice, now=1.0, policy=ProxyPolicy("CAS-RSL", "outer"))
        inner = delegate(outer, now=2.0, policy=ProxyPolicy("CAS-RSL", "inner"))
        found = effective_policy(inner)
        assert found.text == "inner"

    def test_impersonation_constant(self):
        assert IMPERSONATION.is_impersonation
