"""Property-based round-trip tests for the policy substrate.

Complements ``test_roundtrip_property.py`` one layer up: instead of
bare RSL specifications, these properties generate whole
:class:`~repro.core.model.Policy` ASTs — exact and prefix subjects,
grants and requirements, and the paper's special vocabulary
(``action``, ``jobowner=self``, ``jobtag != NULL``) — and check that
``parse_policy(str(policy))`` reproduces the structure exactly.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    Policy,
    PolicyAssertion,
    PolicyStatement,
    StatementKind,
    Subject,
)
from repro.core.parser import parse_policy
from repro.rsl.ast import Relation, Relop, Specification, Value
from repro.workloads.generator import PolicyShape, generate_policy

import pytest

# Safe inside both a subject pattern (no ':', no '#', no '*') and a
# one-line statement body.
_name_chars = string.ascii_letters + string.digits + ". -_"
_word_chars = string.ascii_letters + string.digits + "/._-"

ACTIONS = ("start", "cancel", "information", "signal")
JOBTAGS = ("ADS", "NFC", "nightly", "batch-17")

dn_components = st.text(alphabet=_name_chars, min_size=1, max_size=10).map(
    str.strip
).filter(bool)


@st.composite
def subjects(draw):
    """An exact identity (ends in CN=) or an explicit prefix group."""
    organization = draw(dn_components)
    unit = draw(dn_components)
    if draw(st.booleans()):
        user = draw(dn_components)
        return Subject.identity(f"/O={organization}/OU={unit}/CN={user}")
    return Subject.prefix(f"/O={organization}/OU={unit}")


def action_relation(draw):
    return Relation(
        attribute="action",
        op=Relop.EQ,
        values=(Value.of(draw(st.sampled_from(ACTIONS))),),
    )


@st.composite
def extra_relations(draw):
    kind = draw(
        st.sampled_from(
            ["jobowner", "jobtag", "jobtag-required", "word", "count"]
        )
    )
    if kind == "jobowner":
        owner = draw(
            st.one_of(
                st.just("self"),
                dn_components.map(lambda n: f"/O=Grid/CN={n}"),
            )
        )
        return Relation(
            attribute="jobowner", op=Relop.EQ, values=(Value.of(owner),)
        )
    if kind == "jobtag":
        tag = draw(st.sampled_from(JOBTAGS + ("NULL",)))
        return Relation(
            attribute="jobtag", op=Relop.EQ, values=(Value.of(tag),)
        )
    if kind == "jobtag-required":
        # The paper's Figure 3 obligation: a jobtag must be present.
        return Relation(
            attribute="jobtag", op=Relop.NEQ, values=(Value.of("NULL"),)
        )
    if kind == "word":
        attribute = draw(st.sampled_from(["executable", "directory"]))
        value = draw(
            st.text(alphabet=_word_chars, min_size=1, max_size=16)
        )
        return Relation(
            attribute=attribute, op=Relop.EQ, values=(Value.of(value),)
        )
    op = draw(st.sampled_from([Relop.LT, Relop.LTE, Relop.GT, Relop.GTE]))
    number = draw(st.integers(min_value=0, max_value=10_000))
    return Relation(attribute="count", op=op, values=(Value.of(number),))


@st.composite
def assertions(draw):
    relations = [action_relation(draw)]
    relations.extend(draw(st.lists(extra_relations(), max_size=4)))
    return PolicyAssertion(spec=Specification.make(relations))


@st.composite
def statements(draw):
    return PolicyStatement(
        subject=draw(subjects()),
        assertions=tuple(draw(st.lists(assertions(), min_size=1, max_size=3))),
        kind=draw(st.sampled_from(list(StatementKind))),
    )


@st.composite
def policies(draw):
    return Policy.make(
        draw(st.lists(statements(), min_size=1, max_size=5)), name="generated"
    )


def assert_same_structure(original: Policy, reparsed: Policy) -> None:
    assert len(reparsed) == len(original)
    for before, after in zip(original, reparsed):
        assert after.kind is before.kind
        assert after.subject.exact == before.subject.exact
        assert after.subject.pattern == before.subject.pattern
        assert len(after.assertions) == len(before.assertions)
        for b_assert, a_assert in zip(before.assertions, after.assertions):
            assert len(a_assert.spec) == len(b_assert.spec)
            for b_rel, a_rel in zip(b_assert.spec, a_assert.spec):
                assert a_rel.attribute == b_rel.attribute
                assert a_rel.op is b_rel.op
                assert a_rel.value_texts() == b_rel.value_texts()


class TestPolicyRoundTripProperties:
    @given(policy=policies())
    @settings(max_examples=150)
    def test_policy_round_trip(self, policy):
        reparsed = parse_policy(str(policy), name="generated")
        assert_same_structure(policy, reparsed)

    @given(policy=policies())
    @settings(max_examples=75)
    def test_round_trip_is_idempotent(self, policy):
        once = str(parse_policy(str(policy)))
        twice = str(parse_policy(once))
        assert once == twice

    @given(statement=statements())
    @settings(max_examples=100)
    def test_subject_kind_survives(self, statement):
        """Exact stays exact, prefix stays prefix — never cross over."""
        policy = Policy.make([statement])
        reparsed = parse_policy(str(policy))
        assert reparsed.statements[0].subject == statement.subject

    @given(policy=policies())
    @settings(max_examples=75)
    def test_special_values_survive(self, policy):
        """`self`, `NULL` and `!=` come back verbatim, not normalised."""
        reparsed = parse_policy(str(policy))
        for before, after in zip(policy, reparsed):
            for b_assert, a_assert in zip(before.assertions, after.assertions):
                for b_rel, a_rel in zip(b_assert.spec, a_assert.spec):
                    if b_rel.value_texts() in (("self",), ("NULL",)):
                        assert a_rel.value_texts() == b_rel.value_texts()
                        assert a_rel.op is b_rel.op


class TestGeneratedWorkloadPolicies:
    @pytest.mark.parametrize("seed", [1, 7, 23, 99])
    def test_synthetic_policies_round_trip(self, seed):
        policy = generate_policy(
            PolicyShape(users=6, statements_per_user=2, seed=seed)
        )
        reparsed = parse_policy(str(policy), name=policy.name)
        assert_same_structure(policy, reparsed)
