"""Property-based round-trip tests for the RSL pipeline."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rsl.ast import MultiRequest, Relation, Relop, Specification, Value
from repro.rsl.parser import parse_rsl
from repro.rsl.unparser import unparse

_word_chars = string.ascii_letters + string.digits + "/._-:"

attribute_names = st.text(
    alphabet=string.ascii_lowercase, min_size=1, max_size=12
)

word_values = st.text(alphabet=_word_chars, min_size=1, max_size=20)

quoted_values = st.text(
    alphabet=string.ascii_letters + string.digits + " '\"()=<>!&+",
    min_size=0,
    max_size=20,
)

numeric_values = st.integers(min_value=-10_000, max_value=10_000)


@st.composite
def values(draw):
    kind = draw(st.sampled_from(["word", "quoted", "number"]))
    if kind == "word":
        return Value.of(draw(word_values))
    if kind == "quoted":
        return Value.of(draw(quoted_values), quoted=True)
    return Value.of(draw(numeric_values))


@st.composite
def relations(draw):
    op = draw(st.sampled_from(list(Relop)))
    if op.is_ordering:
        vals = (Value.of(draw(numeric_values)),)
    else:
        vals = tuple(draw(st.lists(values(), min_size=1, max_size=3)))
    return Relation(attribute=draw(attribute_names), op=op, values=vals)


@st.composite
def specifications(draw):
    rels = draw(st.lists(relations(), min_size=1, max_size=6))
    return Specification.make(rels)


@st.composite
def multirequests(draw):
    specs = draw(st.lists(specifications(), min_size=1, max_size=3))
    return MultiRequest.make(specs)


class TestRoundTripProperties:
    @given(spec=specifications())
    @settings(max_examples=200)
    def test_specification_round_trip(self, spec):
        """unparse → parse reproduces attribute/op/value structure."""
        reparsed = parse_rsl(unparse(spec))
        assert isinstance(reparsed, Specification)
        assert len(reparsed) == len(spec)
        for original, parsed in zip(spec, reparsed):
            assert parsed.attribute == original.attribute
            assert parsed.op is original.op
            assert parsed.value_texts() == original.value_texts()

    @given(spec=specifications())
    @settings(max_examples=100)
    def test_unparse_is_idempotent_after_one_round(self, spec):
        once = unparse(parse_rsl(unparse(spec)))
        twice = unparse(parse_rsl(once))
        assert once == twice

    @given(multi=multirequests())
    @settings(max_examples=100)
    def test_multirequest_round_trip(self, multi):
        reparsed = parse_rsl(unparse(multi))
        assert isinstance(reparsed, MultiRequest)
        assert len(reparsed) == len(multi)

    @given(spec=specifications())
    @settings(max_examples=100)
    def test_numeric_values_survive(self, spec):
        reparsed = parse_rsl(unparse(spec))
        for original, parsed in zip(spec, reparsed):
            for ov, pv in zip(original.values, parsed.values):
                if isinstance(ov, Value) and ov.is_numeric and not ov.quoted:
                    assert isinstance(pv, Value)
                    assert pv.number == ov.number
