"""AST helper behaviour."""

import pytest

from repro.rsl.ast import (
    MultiRequest,
    Relation,
    Relop,
    Specification,
    Value,
    VariableReference,
)


class TestValue:
    def test_of_string(self):
        value = Value.of("hello")
        assert value.text == "hello"
        assert not value.is_numeric

    def test_of_int(self):
        value = Value.of(42)
        assert value.text == "42"
        assert value.number == 42.0

    def test_of_float(self):
        value = Value.of(2.5)
        assert value.number == 2.5

    def test_numeric_string_detected(self):
        assert Value.of("3.14").is_numeric

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            Value.of(True)

    def test_equality_by_text_only(self):
        assert Value.of("4") == Value(text="4", number=None)


class TestRelop:
    def test_from_symbol(self):
        assert Relop.from_symbol("<=") is Relop.LTE

    def test_unknown_symbol(self):
        with pytest.raises(ValueError):
            Relop.from_symbol("==")

    def test_ordering_property(self):
        assert Relop.LT.is_ordering
        assert Relop.GTE.is_ordering
        assert not Relop.EQ.is_ordering
        assert not Relop.NEQ.is_ordering


class TestRelation:
    def test_make_lowercases_attribute(self):
        relation = Relation.make("Count", "=", 4)
        assert relation.attribute == "count"

    def test_make_with_string_op(self):
        relation = Relation.make("a", "!=", "x")
        assert relation.op is Relop.NEQ

    def test_make_with_value_list(self):
        relation = Relation.make("args", "=", ["-v", "-x"])
        assert relation.value_texts() == ("-v", "-x")

    def test_make_requires_values(self):
        with pytest.raises(ValueError):
            Relation.make("a", "=", [])

    def test_value_accessor_single(self):
        relation = Relation.make("a", "=", "x")
        assert str(relation.value) == "x"

    def test_value_accessor_rejects_multi(self):
        relation = Relation.make("a", "=", ["x", "y"])
        with pytest.raises(ValueError):
            relation.value


class TestSpecification:
    def build(self):
        return Specification.make(
            [
                Relation.make("executable", "=", "prog"),
                Relation.make("count", "<", 4),
                Relation.make("count", ">=", 1),
            ]
        )

    def test_len_and_iter(self):
        spec = self.build()
        assert len(spec) == 3
        assert len(list(spec)) == 3

    def test_relations_for_is_case_insensitive(self):
        spec = self.build()
        assert len(spec.relations_for("COUNT")) == 2

    def test_first_value_only_sees_equality(self):
        spec = self.build()
        assert spec.first_value("count") is None
        assert spec.first_value("executable") == "prog"

    def test_has(self):
        spec = self.build()
        assert spec.has("count")
        assert not spec.has("queue")

    def test_without_removes_all_relations(self):
        spec = self.build().without("count")
        assert not spec.has("count")
        assert spec.has("executable")

    def test_replace_swaps_every_relation(self):
        spec = self.build().replace("count", Relation.make("count", "=", 2))
        assert len(spec.relations_for("count")) == 1
        assert spec.first_value("count") == "2"

    def test_merged_with_concatenates(self):
        extra = Specification.from_pairs({"queue": "fast"})
        merged = self.build().merged_with(extra)
        assert merged.has("queue")
        assert len(merged) == 4

    def test_from_pairs_builds_equalities(self):
        spec = Specification.from_pairs({"a": 1, "b": "two"})
        assert spec.first_value("a") == "1"
        assert spec.first_value("b") == "two"

    def test_to_dict_flattens_equalities(self):
        spec = Specification.make(
            [
                Relation.make("a", "=", 1),
                Relation.make("a", "=", 2),
                Relation.make("b", "<", 3),
            ]
        )
        flattened = spec.to_dict()
        assert flattened["a"] == ("1", "2")
        assert "b" not in flattened


class TestSubstitution:
    def test_bound_variable_replaced(self):
        spec = Specification.make(
            [Relation.make("stdout", "=", VariableReference("HOME"))]
        )
        resolved = spec.substitute({"HOME": "/home/bo"})
        assert resolved.first_value("stdout") == "/home/bo"
        assert resolved.unbound_variables() == ()

    def test_unbound_variable_left_in_place(self):
        spec = Specification.make(
            [Relation.make("stdout", "=", VariableReference("HOME"))]
        )
        resolved = spec.substitute({})
        assert resolved.unbound_variables() == ("HOME",)

    def test_substitution_does_not_mutate(self):
        spec = Specification.make(
            [Relation.make("stdout", "=", VariableReference("HOME"))]
        )
        spec.substitute({"HOME": "/x"})
        assert spec.unbound_variables() == ("HOME",)


class TestMultiRequest:
    def test_iteration(self):
        specs = [Specification.from_pairs({"a": i}) for i in range(3)]
        multi = MultiRequest.make(specs)
        assert len(multi) == 3
        assert [s.first_value("a") for s in multi] == ["0", "1", "2"]
