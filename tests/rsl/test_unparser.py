"""Unparser behaviour and simple round-trips."""

import pytest

from repro.rsl.ast import Value, VariableReference
from repro.rsl.parser import parse_rsl, parse_specification
from repro.rsl.unparser import unparse, unparse_value


class TestUnparseValue:
    def test_bare_word_stays_bare(self):
        assert unparse_value(Value.of("/bin/prog")) == "/bin/prog"

    def test_spaces_force_quoting(self):
        assert unparse_value(Value.of("hello world")) == '"hello world"'

    def test_empty_value_quoted(self):
        assert unparse_value(Value.of("")) == '""'

    def test_embedded_quote_doubled(self):
        assert unparse_value(Value.of('say "hi"')) == '"say ""hi"""'

    def test_variable_reference(self):
        assert unparse_value(VariableReference("HOME")) == "$(HOME)"

    def test_parenthesis_forces_quoting(self):
        assert unparse_value(Value.of("a(b)")) == '"a(b)"'


class TestRoundTrips:
    CASES = [
        "&(executable=test1)(count<4)",
        "&(action=start)(jobtag!=NULL)",
        '&(arguments="-l" "/tmp files")',
        "&(directory=/sandbox/test)(maxwalltime<=3600)",
        "+(&(a=1))(&(b=2)(c>=3))",
        "&(stdout=$(HOME))",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_unparse_parse_is_stable(self, text):
        once = parse_rsl(text)
        rendered = unparse(once)
        twice = parse_rsl(rendered)
        assert unparse(twice) == rendered

    def test_semantics_preserved(self):
        spec = parse_specification("&(Executable = test1)(COUNT < 4)")
        again = parse_specification(unparse(spec))
        assert again.first_value("executable") == "test1"
        assert again.relations_for("count")[0].op.value == "<"

    def test_unparse_rejects_unknown_node(self):
        with pytest.raises(TypeError):
            unparse(42)

    def test_str_matches_unparse(self):
        spec = parse_specification("&(a=1)(b=2)")
        assert str(spec) == unparse(spec)
        relation = spec.relations[0]
        assert str(relation) == "(a=1)"
