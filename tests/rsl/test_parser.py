"""RSL parser behaviour."""

import pytest

from repro.rsl.ast import MultiRequest, Relop, VariableReference
from repro.rsl.errors import RSLSyntaxError
from repro.rsl.parser import parse_rsl, parse_specification


class TestSpecifications:
    def test_single_relation(self):
        spec = parse_specification("&(executable=/bin/date)")
        assert len(spec) == 1
        assert spec.first_value("executable") == "/bin/date"

    def test_ampersand_is_optional(self):
        with_amp = parse_specification("&(a=1)(b=2)")
        without = parse_specification("(a=1)(b=2)")
        assert str(with_amp) == str(without)

    def test_multiple_relations_keep_order(self):
        spec = parse_specification("&(a=1)(b=2)(c=3)")
        assert spec.attributes == ("a", "b", "c")

    def test_attribute_names_are_case_insensitive(self):
        spec = parse_specification("&(Executable=test)(COUNT=4)")
        assert spec.first_value("executable") == "test"
        assert spec.first_value("count") == "4"

    def test_figure3_bo_liu_line_parses(self):
        spec = parse_specification(
            "&(action = start)(executable = test1)(directory = /sandbox/test)"
            "(jobtag = ADS)(count<4)"
        )
        assert spec.first_value("executable") == "test1"
        relation = spec.relations_for("count")[0]
        assert relation.op is Relop.LT
        assert str(relation.values[0]) == "4"

    def test_same_attribute_twice_gives_two_relations(self):
        spec = parse_specification("&(count>=1)(count<=8)")
        assert len(spec.relations_for("count")) == 2

    def test_multiple_values_in_one_relation(self):
        spec = parse_specification('&(arguments="-v" "-x" input.dat)')
        relation = spec.relations_for("arguments")[0]
        assert relation.value_texts() == ("-v", "-x", "input.dat")

    def test_empty_input_rejected(self):
        with pytest.raises(RSLSyntaxError):
            parse_rsl("")
        with pytest.raises(RSLSyntaxError):
            parse_rsl("   \n ")

    def test_bare_ampersand_rejected(self):
        with pytest.raises(RSLSyntaxError):
            parse_rsl("&")

    def test_relation_without_value_rejected(self):
        with pytest.raises(RSLSyntaxError):
            parse_rsl("&(a=)")

    def test_missing_operator_rejected(self):
        with pytest.raises(RSLSyntaxError):
            parse_rsl("&(abc)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(RSLSyntaxError):
            parse_rsl("&(a=1")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(RSLSyntaxError):
            parse_rsl("&(a=1) garbage")


class TestMultiRequests:
    def test_two_specifications(self):
        result = parse_rsl("+(&(a=1))(&(b=2))")
        assert isinstance(result, MultiRequest)
        assert len(result) == 2
        first, second = result
        assert first.first_value("a") == "1"
        assert second.first_value("b") == "2"

    def test_empty_multirequest_rejected(self):
        with pytest.raises(RSLSyntaxError):
            parse_rsl("+")

    def test_parse_specification_rejects_multirequest(self):
        with pytest.raises(RSLSyntaxError):
            parse_specification("+(&(a=1))")


class TestValues:
    def test_numeric_values_have_numbers(self):
        spec = parse_specification("&(count=4)(ratio=0.5)")
        assert spec.relations_for("count")[0].values[0].number == 4.0
        assert spec.relations_for("ratio")[0].values[0].number == 0.5

    def test_non_numeric_value_has_no_number(self):
        spec = parse_specification("&(executable=prog)")
        assert spec.relations_for("executable")[0].values[0].number is None

    def test_variable_reference_survives(self):
        spec = parse_specification("&(stdout=$(GLOBUS_HOME))")
        value = spec.relations_for("stdout")[0].values[0]
        assert isinstance(value, VariableReference)
        assert value.name == "GLOBUS_HOME"

    def test_quoted_values_preserve_spaces(self):
        spec = parse_specification('&(comment="hello grid world")')
        assert spec.first_value("comment") == "hello grid world"

    def test_negative_numbers(self):
        spec = parse_specification("&(nice=-5)")
        assert spec.relations_for("nice")[0].values[0].number == -5.0
