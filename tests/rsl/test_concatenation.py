"""RSL '#' concatenation."""

import pytest

from repro.rsl.ast import Concatenation, Value, VariableReference
from repro.rsl.errors import RSLSyntaxError
from repro.rsl.parser import parse_specification
from repro.rsl.unparser import unparse


class TestParsing:
    def test_ground_concatenation_folds_at_parse_time(self):
        spec = parse_specification("&(x=abc#def)")
        assert spec.first_value("x") == "abcdef"

    def test_quoted_parts_fold(self):
        spec = parse_specification('&(x="a b"#"c d")')
        assert spec.first_value("x") == "a bc d"

    def test_variable_concatenation_survives(self):
        spec = parse_specification("&(stdout=$(HOME)#/out.log)")
        value = spec.relations_for("stdout")[0].values[0]
        assert isinstance(value, Concatenation)
        assert value.variable_names() == ("HOME",)

    def test_three_part_concatenation(self):
        spec = parse_specification("&(path=$(ROOT)#/bin/#$(NAME))")
        value = spec.relations_for("path")[0].values[0]
        assert isinstance(value, Concatenation)
        assert len(value.parts) == 3

    def test_dangling_hash_rejected(self):
        with pytest.raises(RSLSyntaxError):
            parse_specification("&(x=a#)")

    def test_leading_hash_rejected(self):
        with pytest.raises(RSLSyntaxError):
            parse_specification("&(x=#a)")


class TestSubstitution:
    def test_bound_concatenation_collapses(self):
        spec = parse_specification("&(stdout=$(HOME)#/out.log)")
        resolved = spec.substitute({"HOME": "/home/bo"})
        assert resolved.first_value("stdout") == "/home/bo/out.log"
        assert resolved.unbound_variables() == ()

    def test_partially_bound_concatenation_stays(self):
        spec = parse_specification("&(path=$(ROOT)#/x/#$(NAME))")
        resolved = spec.substitute({"ROOT": "/opt"})
        assert "NAME" in resolved.unbound_variables()
        # ROOT is reported too: the concatenation is still unresolved.
        assert "ROOT" in resolved.unbound_variables()

    def test_unbound_listed(self):
        spec = parse_specification("&(stdout=$(HOME)#/out.log)")
        assert spec.unbound_variables() == ("HOME",)


class TestUnparsing:
    def test_concatenation_round_trips(self):
        spec = parse_specification("&(stdout=$(HOME)#/out.log)")
        again = parse_specification(unparse(spec))
        value = again.relations_for("stdout")[0].values[0]
        assert isinstance(value, Concatenation)
        assert unparse(again) == unparse(spec)


class TestModel:
    def test_concatenation_requires_two_parts(self):
        with pytest.raises(ValueError):
            Concatenation(parts=(Value.of("only"),))

    def test_is_ground(self):
        ground = Concatenation(parts=(Value.of("a"), Value.of("b")))
        assert ground.is_ground
        mixed = Concatenation(parts=(Value.of("a"), VariableReference("X")))
        assert not mixed.is_ground

    def test_resolve(self):
        mixed = Concatenation(parts=(Value.of("a/"), VariableReference("X")))
        assert mixed.resolve({"X": "b"}).text == "a/b"
        assert mixed.resolve({}) is None


class TestPolicyInteraction:
    def test_unresolved_concatenation_in_policy_fails_closed(self):
        from repro.core.evaluator import PolicyEvaluator
        from repro.core.model import (
            Policy,
            PolicyAssertion,
            PolicyStatement,
            Subject,
        )
        from repro.core.request import AuthorizationRequest

        alice = "/O=Grid/CN=Alice"
        assertion = PolicyAssertion(
            spec=parse_specification("&(action=start)(directory=$(VO_ROOT)#/apps)")
        )
        policy = Policy.make(
            [PolicyStatement(subject=Subject.identity(alice), assertions=(assertion,))]
        )
        request = AuthorizationRequest.start(
            alice, parse_specification("&(executable=x)(directory=/vo/apps)")
        )
        decision = PolicyEvaluator(policy).evaluate(request)
        assert decision.is_deny

    def test_resolved_policy_concatenation_grants(self):
        from repro.core.evaluator import PolicyEvaluator
        from repro.core.model import (
            Policy,
            PolicyAssertion,
            PolicyStatement,
            Subject,
        )
        from repro.core.request import AuthorizationRequest

        alice = "/O=Grid/CN=Alice"
        raw = parse_specification("&(action=start)(directory=$(VO_ROOT)#/apps)")
        assertion = PolicyAssertion(spec=raw.substitute({"VO_ROOT": "/vo"}))
        policy = Policy.make(
            [PolicyStatement(subject=Subject.identity(alice), assertions=(assertion,))]
        )
        request = AuthorizationRequest.start(
            alice, parse_specification("&(executable=x)(directory=/vo/apps)")
        )
        assert PolicyEvaluator(policy).evaluate(request).is_permit


class TestHashInStrings:
    def test_hash_inside_quoted_string_is_literal(self):
        spec = parse_specification('&(comment="issue #42")')
        assert spec.first_value("comment") == "issue #42"

    def test_hash_after_string_concatenates(self):
        spec = parse_specification('&(x="a#b"#"c")')
        assert spec.first_value("x") == "a#bc"
