"""Tokenizer behaviour."""

import pytest

from repro.rsl.errors import RSLSyntaxError
from repro.rsl.lexer import TokenType, tokenize


def types(text):
    return [t.type for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text) if t.type is not TokenType.EOF]


class TestStructuralTokens:
    def test_parens_and_amp(self):
        assert types("&()") == [
            TokenType.AMP,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.EOF,
        ]

    def test_plus_prefix(self):
        assert types("+(") [0] is TokenType.PLUS

    def test_whitespace_is_skipped(self):
        assert types("  &\t( \n )  ") == [
            TokenType.AMP,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.EOF,
        ]

    def test_empty_input_yields_only_eof(self):
        assert types("") == [TokenType.EOF]


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_each_operator(self, op):
        tokens = tokenize(f"(a{op}b)")
        ops = [t for t in tokens if t.type is TokenType.OP]
        assert len(ops) == 1
        assert ops[0].text == op

    def test_bang_without_equals_is_an_error(self):
        with pytest.raises(RSLSyntaxError):
            tokenize("(a ! b)")

    def test_less_equal_not_split(self):
        tokens = [t for t in tokenize("(count<=4)") if t.type is TokenType.OP]
        assert [t.text for t in tokens] == ["<="]


class TestWords:
    def test_path_is_one_word(self):
        assert "/sandbox/test" in texts("(directory=/sandbox/test)")

    def test_word_with_dots_and_dashes(self):
        assert "my-app.v2" in texts("(executable=my-app.v2)")

    def test_word_stops_at_operator(self):
        assert texts("(a=b)") == ["(", "a", "=", "b", ")"]

    def test_distinguished_name_fragment(self):
        words = texts("(jobowner=/O=Grid/CN=Bo)")
        # '=' inside a DN splits it; the relation parser reassembles
        # values, but the lexer treats '=' as an operator char.
        assert "(" in words

    def test_numbers_are_words(self):
        assert "42" in texts("(count=42)")


class TestStrings:
    def test_double_quoted(self):
        tokens = tokenize('(args="-l /tmp")')
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert [t.text for t in strings] == ["-l /tmp"]

    def test_single_quoted(self):
        tokens = tokenize("(args='hello world')")
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert [t.text for t in strings] == ["hello world"]

    def test_doubled_quote_escapes(self):
        tokens = tokenize('(a="say ""hi""")')
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert strings[0].text == 'say "hi"'

    def test_unterminated_string_raises(self):
        with pytest.raises(RSLSyntaxError):
            tokenize('(a="oops)')

    def test_empty_string_is_a_token(self):
        tokens = tokenize('(a="")')
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert strings[0].text == ""


class TestVariableReferences:
    def test_basic_varref(self):
        tokens = tokenize("(stdout=$(HOME))")
        refs = [t for t in tokens if t.type is TokenType.VARREF]
        assert [t.text for t in refs] == ["HOME"]

    def test_unterminated_varref_raises(self):
        with pytest.raises(RSLSyntaxError):
            tokenize("(a=$(HOME")

    def test_empty_varref_raises(self):
        with pytest.raises(RSLSyntaxError):
            tokenize("(a=$())")

    def test_dollar_without_paren_is_a_word(self):
        words = texts("(cost=$5)")
        assert "$5" in words


class TestPositions:
    def test_positions_point_into_source(self):
        text = "&(abc=def)"
        for token in tokenize(text):
            if token.type is TokenType.WORD:
                assert text[token.position : token.position + len(token.text)] == token.text
