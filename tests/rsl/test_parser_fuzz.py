"""Fuzzing: the parser must reject garbage with RSLSyntaxError only."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rsl.errors import RSLSyntaxError
from repro.rsl.parser import parse_rsl

garbage = st.text(
    alphabet=string.printable,
    min_size=0,
    max_size=60,
)

structured_noise = st.lists(
    st.sampled_from(["&", "+", "(", ")", "=", "!=", "<", ">", "a", "1", '"', " "]),
    min_size=0,
    max_size=30,
).map("".join)


class TestParserRobustness:
    @given(text=garbage)
    @settings(max_examples=300)
    def test_arbitrary_text_never_crashes(self, text):
        """Any input either parses or raises RSLSyntaxError — no other
        exception type may escape (the Job Manager relies on this to
        map failures to BAD_RSL)."""
        try:
            parse_rsl(text)
        except RSLSyntaxError:
            pass

    @given(text=structured_noise)
    @settings(max_examples=300)
    def test_structural_noise_never_crashes(self, text):
        try:
            parse_rsl(text)
        except RSLSyntaxError:
            pass

    @given(text=garbage)
    @settings(max_examples=150)
    def test_successful_parses_unparse_and_reparse(self, text):
        from repro.rsl.unparser import unparse

        try:
            node = parse_rsl(text)
        except RSLSyntaxError:
            return
        rendered = unparse(node)
        again = parse_rsl(rendered)  # must not raise
        assert unparse(again) == rendered


class TestPolicyParserRobustness:
    @given(text=garbage)
    @settings(max_examples=200)
    def test_policy_parser_never_crashes(self, text):
        from repro.core.errors import PolicyParseError
        from repro.core.parser import parse_policy

        try:
            parse_policy(text)
        except PolicyParseError:
            pass
