"""Public-API stability: every advertised name imports and exists.

A downstream user's `from repro import X` must not break silently;
this test pins the exported surface of every package.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.rsl",
    "repro.gsi",
    "repro.vo",
    "repro.gram",
    "repro.lrm",
    "repro.accounts",
    "repro.sim",
    "repro.testing",
    "repro.workloads",
    "repro.xacml",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} must declare __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} is advertised but missing"

    def test_package_has_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__) > 60, (
            f"{package} needs a substantive docstring"
        )


class TestTopLevelSurface:
    def test_headline_classes_available(self):
        import repro

        for name in (
            "GramService",
            "GramClient",
            "ServiceConfig",
            "parse_policy",
            "PolicyEvaluator",
            "AuthorizationRequest",
            "CertificateAuthority",
            "parse_specification",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_version_is_a_string(self):
        import repro

        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_cli_is_importable_and_has_main(self):
        from repro import cli

        assert callable(cli.main)
