"""RequestContext construction from GRAM requests."""


from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification
from repro.xacml.context import RequestContext
from repro.xacml.model import (
    ACTION_ID,
    SUBJECT_ID,
    AttributeDesignator,
    Category,
)

ALICE = "/O=Grid/OU=ctx/CN=Alice"
BOB = "/O=Grid/OU=ctx/CN=Bob"


def resource(attribute):
    return AttributeDesignator(Category.RESOURCE, attribute)


class TestFromRequest:
    def test_subject_and_action_bags(self):
        request = AuthorizationRequest.start(
            ALICE, parse_specification("&(executable=sim)")
        )
        context = RequestContext.from_request(request)
        assert context.bag(SUBJECT_ID) == (ALICE,)
        assert context.bag(ACTION_ID) == ("start",)

    def test_resource_attributes_land_in_resource_category(self):
        request = AuthorizationRequest.start(
            ALICE, parse_specification("&(executable=sim)(count=4)(jobtag=NFC)")
        )
        context = RequestContext.from_request(request)
        assert context.bag(resource("executable")) == ("sim",)
        assert context.bag(resource("count")) == ("4",)
        assert context.bag(resource("jobtag")) == ("NFC",)

    def test_jobowner_computed_for_management(self):
        request = AuthorizationRequest.manage(
            ALICE, "cancel", parse_specification("&(executable=sim)"), jobowner=BOB
        )
        context = RequestContext.from_request(request)
        assert context.bag(resource("jobowner")) == (BOB,)
        assert context.bag(ACTION_ID) == ("cancel",)

    def test_spoofed_action_in_rsl_is_ignored(self):
        """Context hardening: the action bag reflects the real action,
        never an (action=...) the client wrote into its RSL."""
        request = AuthorizationRequest.start(
            ALICE, parse_specification("&(executable=sim)(action=cancel)")
        )
        context = RequestContext.from_request(request)
        assert context.bag(ACTION_ID) == ("start",)
        # And the bogus value does not leak into the resource category.
        assert context.bag(resource("action")) == ()

    def test_spoofed_jobowner_is_replaced(self):
        request = AuthorizationRequest.start(
            ALICE, parse_specification(f'&(executable=sim)(jobowner="{BOB}")')
        )
        context = RequestContext.from_request(request)
        assert context.bag(resource("jobowner")) == (ALICE,)

    def test_constraint_relations_supply_no_values(self):
        """A request is a description: (count<4) is not a value."""
        request = AuthorizationRequest.start(
            ALICE, parse_specification("&(executable=sim)(count<4)")
        )
        context = RequestContext.from_request(request)
        assert context.bag(resource("count")) == ()

    def test_multi_valued_attributes(self):
        request = AuthorizationRequest.start(
            ALICE, parse_specification('&(executable=sim)(arguments="-a" "-b")')
        )
        context = RequestContext.from_request(request)
        assert context.bag(resource("arguments")) == ("-a", "-b")


class TestManualConstruction:
    def test_add_appends(self):
        context = RequestContext()
        context.add(SUBJECT_ID, "a")
        context.add(SUBJECT_ID, "b", "c")
        assert context.bag(SUBJECT_ID) == ("a", "b", "c")

    def test_missing_bag_is_empty(self):
        assert RequestContext().bag(SUBJECT_ID) == ()
