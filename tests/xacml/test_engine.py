"""The miniature XACML engine: targets, rules, combining algorithms."""


from repro.xacml.conditions import (
    AllValuesIn,
    AllValuesSatisfy,
    And,
    AnyValueIn,
    Not,
    Present,
    TrueCondition,
)
from repro.xacml.context import RequestContext
from repro.xacml.engine import XACMLDecision, evaluate_policy
from repro.xacml.model import (
    ACTION_ID,
    SUBJECT_ID,
    AllOf,
    AnyOf,
    AttributeDesignator,
    Category,
    CombiningAlgorithm,
    Match,
    Rule,
    RuleEffect,
    Target,
    XACMLPolicy,
)

ALICE = "/O=Grid/OU=org/CN=Alice"
EXE = AttributeDesignator(Category.RESOURCE, "executable")
COUNT = AttributeDesignator(Category.RESOURCE, "count")


def context(subject=ALICE, action="start", executable="sim", count="2"):
    ctx = RequestContext()
    ctx.add(SUBJECT_ID, subject)
    ctx.add(ACTION_ID, action)
    if executable is not None:
        ctx.add(EXE, executable)
    if count is not None:
        ctx.add(COUNT, count)
    return ctx


def subject_target(pattern=ALICE, match_id="string-equal"):
    return Target(
        any_ofs=(
            AnyOf(
                all_ofs=(
                    AllOf(
                        matches=(
                            Match(
                                designator=SUBJECT_ID,
                                match_id=match_id,
                                value=pattern,
                            ),
                        )
                    ),
                )
            ),
        )
    )


def permit_rule(condition=None, target=None, rule_id="r1"):
    return Rule(
        rule_id=rule_id,
        effect=RuleEffect.PERMIT,
        target=target or Target.empty(),
        condition=condition,
    )


class TestTargets:
    def test_empty_target_matches_everything(self):
        policy = XACMLPolicy(policy_id="p", rules=(permit_rule(),))
        assert evaluate_policy(policy, context()) is XACMLDecision.PERMIT

    def test_subject_equal_match(self):
        policy = XACMLPolicy(
            policy_id="p", rules=(permit_rule(target=subject_target()),)
        )
        assert evaluate_policy(policy, context()) is XACMLDecision.PERMIT
        assert (
            evaluate_policy(policy, context(subject="/O=Grid/CN=Other"))
            is XACMLDecision.NOT_APPLICABLE
        )

    def test_subject_prefix_match(self):
        policy = XACMLPolicy(
            policy_id="p",
            rules=(
                permit_rule(
                    target=subject_target("/O=Grid/OU=org", "string-starts-with")
                ),
            ),
        )
        assert evaluate_policy(policy, context()) is XACMLDecision.PERMIT

    def test_policy_level_target_gates_all_rules(self):
        policy = XACMLPolicy(
            policy_id="p",
            rules=(permit_rule(),),
            target=subject_target("/O=Elsewhere"),
        )
        assert evaluate_policy(policy, context()) is XACMLDecision.NOT_APPLICABLE


class TestConditions:
    def test_present(self):
        assert Present(EXE).holds(context().bag)
        assert not Present(EXE).holds(context(executable=None).bag)

    def test_all_values_in(self):
        condition = AllValuesIn(EXE, "executable", ("sim", "transp"))
        assert condition.holds(context(executable="sim").bag)
        assert not condition.holds(context(executable="rogue").bag)

    def test_any_value_in(self):
        condition = AnyValueIn(EXE, "executable", ("rogue",))
        assert not condition.holds(context(executable="sim").bag)
        assert condition.holds(context(executable="rogue").bag)

    def test_all_values_satisfy(self):
        condition = AllValuesSatisfy(COUNT, "<", 4.0)
        assert condition.holds(context(count="2").bag)
        assert not condition.holds(context(count="8").bag)
        assert not condition.holds(context(count="many").bag)

    def test_numeric_equality_in_membership(self):
        condition = AllValuesIn(COUNT, "count", ("4",))
        assert condition.holds(context(count="4.0").bag)

    def test_combinators(self):
        yes = TrueCondition()
        no = Not(TrueCondition())
        assert And(parts=(yes, yes)).holds(context().bag)
        assert not And(parts=(yes, no)).holds(context().bag)
        assert Not(no).holds(context().bag)

    def test_failed_condition_is_not_applicable(self):
        rule = permit_rule(condition=Not(TrueCondition()))
        policy = XACMLPolicy(policy_id="p", rules=(rule,))
        assert evaluate_policy(policy, context()) is XACMLDecision.NOT_APPLICABLE

    def test_crashing_condition_is_indeterminate(self):
        class Bomb(TrueCondition):
            def holds(self, bags):
                raise RuntimeError("boom")

        policy = XACMLPolicy(policy_id="p", rules=(permit_rule(condition=Bomb()),))
        assert evaluate_policy(policy, context()) is XACMLDecision.INDETERMINATE


class TestCombiningAlgorithms:
    def deny_rule(self, condition=None):
        return Rule(
            rule_id="deny", effect=RuleEffect.DENY, condition=condition
        )

    def test_deny_overrides(self):
        policy = XACMLPolicy(
            policy_id="p",
            rules=(permit_rule(), self.deny_rule()),
            combining=CombiningAlgorithm.DENY_OVERRIDES,
        )
        assert evaluate_policy(policy, context()) is XACMLDecision.DENY

    def test_permit_overrides(self):
        policy = XACMLPolicy(
            policy_id="p",
            rules=(self.deny_rule(), permit_rule()),
            combining=CombiningAlgorithm.PERMIT_OVERRIDES,
        )
        assert evaluate_policy(policy, context()) is XACMLDecision.PERMIT

    def test_first_applicable_takes_the_first_decision(self):
        policy = XACMLPolicy(
            policy_id="p",
            rules=(
                permit_rule(condition=Not(TrueCondition()), rule_id="skipped"),
                self.deny_rule(),
                permit_rule(rule_id="late"),
            ),
            combining=CombiningAlgorithm.FIRST_APPLICABLE,
        )
        assert evaluate_policy(policy, context()) is XACMLDecision.DENY

    def test_nothing_applicable(self):
        policy = XACMLPolicy(
            policy_id="p",
            rules=(permit_rule(target=subject_target("/O=Elsewhere")),),
        )
        assert evaluate_policy(policy, context()) is XACMLDecision.NOT_APPLICABLE

    def test_indeterminate_beats_permit_under_deny_overrides(self):
        class Bomb(TrueCondition):
            def holds(self, bags):
                raise RuntimeError("boom")

        policy = XACMLPolicy(
            policy_id="p",
            rules=(permit_rule(), permit_rule(condition=Bomb(), rule_id="bomb")),
            combining=CombiningAlgorithm.DENY_OVERRIDES,
        )
        assert evaluate_policy(policy, context()) is XACMLDecision.INDETERMINATE
