"""Property-based invariants of the XACML combining algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xacml.conditions import Not, TrueCondition
from repro.xacml.context import RequestContext
from repro.xacml.engine import XACMLDecision, evaluate_policy
from repro.xacml.model import (
    SUBJECT_ID,
    CombiningAlgorithm,
    Rule,
    RuleEffect,
    XACMLPolicy,
)


def context():
    ctx = RequestContext()
    ctx.add(SUBJECT_ID, "/O=Grid/CN=Someone")
    return ctx


#: Rule archetypes: (effect, applicable?)
rule_kinds = st.sampled_from(
    [
        (RuleEffect.PERMIT, True),
        (RuleEffect.PERMIT, False),
        (RuleEffect.DENY, True),
        (RuleEffect.DENY, False),
    ]
)


def build_rules(kinds):
    rules = []
    for index, (effect, applicable) in enumerate(kinds):
        condition = TrueCondition() if applicable else Not(TrueCondition())
        rules.append(
            Rule(rule_id=f"r{index}", effect=effect, condition=condition)
        )
    return tuple(rules)


class TestCombiningProperties:
    @given(kinds=st.lists(rule_kinds, min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_deny_overrides_is_order_independent(self, kinds):
        forward = XACMLPolicy(
            policy_id="p",
            rules=build_rules(kinds),
            combining=CombiningAlgorithm.DENY_OVERRIDES,
        )
        backward = XACMLPolicy(
            policy_id="p",
            rules=tuple(reversed(build_rules(kinds))),
            combining=CombiningAlgorithm.DENY_OVERRIDES,
        )
        assert evaluate_policy(forward, context()) is evaluate_policy(
            backward, context()
        )

    @given(kinds=st.lists(rule_kinds, min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_deny_overrides_matches_set_semantics(self, kinds):
        policy = XACMLPolicy(
            policy_id="p",
            rules=build_rules(kinds),
            combining=CombiningAlgorithm.DENY_OVERRIDES,
        )
        outcome = evaluate_policy(policy, context())
        applicable_effects = {
            effect for effect, applicable in kinds if applicable
        }
        if RuleEffect.DENY in applicable_effects:
            assert outcome is XACMLDecision.DENY
        elif RuleEffect.PERMIT in applicable_effects:
            assert outcome is XACMLDecision.PERMIT
        else:
            assert outcome is XACMLDecision.NOT_APPLICABLE

    @given(kinds=st.lists(rule_kinds, min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_permit_overrides_dual(self, kinds):
        policy = XACMLPolicy(
            policy_id="p",
            rules=build_rules(kinds),
            combining=CombiningAlgorithm.PERMIT_OVERRIDES,
        )
        outcome = evaluate_policy(policy, context())
        applicable_effects = {
            effect for effect, applicable in kinds if applicable
        }
        if RuleEffect.PERMIT in applicable_effects:
            assert outcome is XACMLDecision.PERMIT
        elif RuleEffect.DENY in applicable_effects:
            assert outcome is XACMLDecision.DENY
        else:
            assert outcome is XACMLDecision.NOT_APPLICABLE

    @given(kinds=st.lists(rule_kinds, min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_first_applicable_respects_order(self, kinds):
        policy = XACMLPolicy(
            policy_id="p",
            rules=build_rules(kinds),
            combining=CombiningAlgorithm.FIRST_APPLICABLE,
        )
        outcome = evaluate_policy(policy, context())
        expected = XACMLDecision.NOT_APPLICABLE
        for effect, applicable in kinds:
            if applicable:
                expected = (
                    XACMLDecision.PERMIT
                    if effect is RuleEffect.PERMIT
                    else XACMLDecision.DENY
                )
                break
        assert outcome is expected

    @given(kinds=st.lists(rule_kinds, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_algorithms_agree_when_effects_are_uniform(self, kinds):
        """With only PERMIT rules (or only DENY rules), every
        algorithm returns the same decision."""
        uniform = [(RuleEffect.PERMIT, applicable) for _, applicable in kinds]
        outcomes = set()
        for algorithm in CombiningAlgorithm:
            policy = XACMLPolicy(
                policy_id="p",
                rules=build_rules(uniform),
                combining=algorithm,
            )
            outcomes.add(evaluate_policy(policy, context()))
        assert len(outcomes) == 1
