"""XACML XML round-trips."""

import pytest

from repro.core.evaluator import PolicyEvaluator
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification
from repro.workloads.generator import (
    PolicyShape,
    WorkloadGenerator,
    generate_policy,
    generate_users,
)
from repro.xacml.bridge import XACMLEvaluator, xacml_from_policy
from repro.xacml.model import CombiningAlgorithm
from repro.xacml.serialize import (
    XACMLSerializationError,
    policy_from_xml,
    policy_to_xml,
)

from tests.conftest import BO, KATE


class TestRoundTrip:
    def test_figure3_policy_round_trips_structurally(self, figure3_policy):
        xacml = xacml_from_policy(figure3_policy)
        text = policy_to_xml(xacml)
        again = policy_from_xml(text)
        assert again.policy_id == xacml.policy_id
        assert again.combining is xacml.combining
        assert len(again.rules) == len(xacml.rules)
        for original, parsed in zip(xacml.rules, again.rules):
            assert parsed.rule_id == original.rule_id
            assert parsed.effect is original.effect

    def test_round_trip_preserves_decisions(self, figure3_policy):
        """Semantics survive the XML boundary — the exchange property
        §6.3 wants from a standard language."""
        xacml = xacml_from_policy(figure3_policy)
        recovered = policy_from_xml(policy_to_xml(xacml))
        before = XACMLEvaluator(xacml)
        after = XACMLEvaluator(recovered)
        probes = [
            AuthorizationRequest.start(
                BO,
                parse_specification(
                    "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)"
                ),
            ),
            AuthorizationRequest.start(
                BO, parse_specification("&(executable=rogue)(jobtag=ADS)(count=2)")
            ),
            AuthorizationRequest.manage(
                KATE,
                "cancel",
                parse_specification("&(executable=test2)(jobtag=NFC)"),
                jobowner=BO,
            ),
        ]
        for probe in probes:
            assert before.evaluate(probe).is_permit == after.evaluate(probe).is_permit

    def test_random_policies_round_trip_decisions(self):
        policy = generate_policy(PolicyShape(users=6, seed=99))
        xacml = xacml_from_policy(policy)
        recovered = policy_from_xml(policy_to_xml(xacml))
        native = PolicyEvaluator(policy)
        restored = XACMLEvaluator(recovered)
        generator = WorkloadGenerator(policy, generate_users(6), seed=1)
        for request in generator.batch(50):
            assert (
                native.evaluate(request).is_permit
                == restored.evaluate(request).is_permit
            ), str(request)

    def test_xml_looks_like_xacml(self, figure3_policy):
        text = policy_to_xml(xacml_from_policy(figure3_policy))
        assert "<Policy " in text
        assert "RuleCombiningAlgId" in text
        assert "deny-overrides" in text
        assert "<AnyOf>" in text
        assert "<AttributeDesignator" in text

    def test_combining_algorithms_survive(self, figure3_policy):
        from dataclasses import replace

        for algorithm in CombiningAlgorithm:
            xacml = replace(xacml_from_policy(figure3_policy), combining=algorithm)
            again = policy_from_xml(policy_to_xml(xacml))
            assert again.combining is algorithm


class TestErrors:
    def test_malformed_xml_rejected(self):
        with pytest.raises(XACMLSerializationError):
            policy_from_xml("<Policy")

    def test_wrong_root_rejected(self):
        with pytest.raises(XACMLSerializationError):
            policy_from_xml("<NotAPolicy/>")

    def test_unknown_combining_rejected(self):
        with pytest.raises(XACMLSerializationError):
            policy_from_xml('<Policy PolicyId="p" RuleCombiningAlgId="bogus"/>')

    def test_unknown_function_rejected(self):
        text = (
            '<Policy PolicyId="p" RuleCombiningAlgId='
            '"urn:oasis:names:tc:xacml:3.0:rule-combining-algorithm:deny-overrides">'
            '<Rule RuleId="r" Effect="Permit"><Condition>'
            '<Apply FunctionId="urn:repro:function:frobnicate"/>'
            "</Condition></Rule></Policy>"
        )
        with pytest.raises(XACMLSerializationError):
            policy_from_xml(text)
