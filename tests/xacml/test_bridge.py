"""The RSL→XACML bridge: decision agreement with the native PDP."""

from hypothesis import given, settings

from repro.core.evaluator import PolicyEvaluator
from repro.core.request import AuthorizationRequest
from repro.rsl.parser import parse_specification
from repro.workloads.generator import (
    PolicyShape,
    WorkloadGenerator,
    generate_policy,
    generate_users,
)
from repro.xacml.bridge import XACMLEvaluator, xacml_callout, xacml_from_policy
from repro.xacml.model import RuleEffect

from tests.conftest import BO, KATE

import hypothesis.strategies as st


class TestTranslationStructure:
    def test_rule_counts(self, figure3_policy):
        xacml = xacml_from_policy(figure3_policy)
        grants = sum(
            len(s.assertions)
            for s in figure3_policy
            if s.kind.value == "grant"
        )
        obligations = sum(
            len(s.assertions)
            for s in figure3_policy
            if s.kind.value == "requirement"
        )
        permits = [r for r in xacml.rules if r.effect is RuleEffect.PERMIT]
        denies = [r for r in xacml.rules if r.effect is RuleEffect.DENY]
        assert len(permits) == grants
        assert len(denies) == obligations

    def test_policy_id_from_name(self, figure3_policy):
        assert xacml_from_policy(figure3_policy).policy_id == "figure3"


class TestFigure3Agreement:
    PROBES = [
        (BO, "start", "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)", None),
        (BO, "start", "&(executable=test1)(directory=/sandbox/test)(count=2)", None),
        (BO, "start", "&(executable=rogue)(jobtag=ADS)(count=2)", None),
        (BO, "start", "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)", None),
        (KATE, "start", "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)", None),
        (KATE, "cancel", "&(executable=test2)(jobtag=NFC)", BO),
        (KATE, "cancel", "&(executable=test1)(jobtag=ADS)", BO),
        (KATE, "signal", "&(executable=test2)(jobtag=NFC)", BO),
        ("/O=Other/CN=Eve", "start", "&(executable=test1)(jobtag=ADS)(count=1)", None),
    ]

    def test_every_probe_agrees(self, figure3_policy):
        native = PolicyEvaluator(figure3_policy)
        xacml = XACMLEvaluator(xacml_from_policy(figure3_policy))
        for who, action, rsl, owner in self.PROBES:
            spec = parse_specification(rsl)
            if action == "start":
                request = AuthorizationRequest.start(who, spec)
            else:
                request = AuthorizationRequest.manage(
                    who, action, spec, jobowner=owner
                )
            assert (
                native.evaluate(request).is_permit
                == xacml.evaluate(request).is_permit
            ), (who, action, rsl)


class TestPropertyAgreement:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_random_policies_and_requests_agree(self, seed):
        policy = generate_policy(PolicyShape(users=8, seed=seed))
        native = PolicyEvaluator(policy)
        xacml = XACMLEvaluator(xacml_from_policy(policy))
        generator = WorkloadGenerator(
            policy, generate_users(8), seed=seed + 1, permit_bias=0.5
        )
        for request in generator.batch(25):
            assert (
                native.evaluate(request).is_permit
                == xacml.evaluate(request).is_permit
            ), str(request)


class TestXACMLCallout:
    def test_callout_defaults_to_deny(self, figure3_policy):
        callout = xacml_callout(figure3_policy)
        outsider = AuthorizationRequest.start(
            "/O=Other/CN=Eve", parse_specification("&(executable=x)")
        )
        decision = callout(outsider)
        assert decision.is_deny
        assert decision.effect.value == "deny"

    def test_callout_through_a_live_resource(self, figure3_policy):
        from repro.core.callout import GRAM_AUTHZ_CALLOUT
        from repro.gram import GramClient, GramService, ServiceConfig
        from repro.gram.protocol import GramErrorCode

        service = GramService(ServiceConfig())
        service.registry.clear(GRAM_AUTHZ_CALLOUT)
        service.registry.register(
            GRAM_AUTHZ_CALLOUT, xacml_callout(figure3_policy)
        )
        bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
        kate = GramClient(service.add_user(KATE, "keahey"), service.gatekeeper)

        submitted = bo.submit(
            "&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)"
            "(count=2)(runtime=50)"
        )
        assert submitted.ok
        rogue = bo.submit("&(executable=rogue)(jobtag=NFC)(count=1)")
        assert rogue.code is GramErrorCode.AUTHORIZATION_DENIED
        assert kate.cancel(submitted.contact).ok
