"""Property-based invariants of the event clock."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import Clock


class TestClockProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        clock = Clock()
        fire_times = []
        for delay in delays:
            clock.call_after(delay, lambda: fire_times.append(clock.now))
        clock.run()
        assert fire_times == sorted(fire_times)
        assert len(fire_times) == len(delays)

    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_time_never_moves_backwards(self, delays):
        clock = Clock()
        observed = []
        for delay in delays:
            clock.call_after(delay, lambda: observed.append(clock.now))
        previous = clock.now
        while clock.step() is not None:
            assert clock.now >= previous
            previous = clock.now

    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=30),
        cancel_index=st.integers(min_value=0, max_value=28),
    )
    @settings(max_examples=100)
    def test_cancelled_events_never_fire(self, delays, cancel_index):
        clock = Clock()
        fired = []
        events = [
            clock.call_after(delay, lambda i=i: fired.append(i))
            for i, delay in enumerate(delays)
        ]
        victim = events[cancel_index % len(events)]
        victim.cancel()
        clock.run()
        cancelled_id = events.index(victim)
        assert cancelled_id not in fired
        assert len(fired) == len(delays) - 1

    @given(
        splits=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=10)
    )
    @settings(max_examples=50)
    def test_run_until_in_pieces_equals_run(self, splits):
        """Advancing in arbitrary increments fires the same events."""

        def build():
            clock = Clock()
            fired = []
            for i in range(10):
                clock.call_at(float(i), lambda i=i: fired.append(i))
            return clock, fired

        clock_a, fired_a = build()
        clock_a.run_until(sum(splits))

        clock_b, fired_b = build()
        for split in splits:
            clock_b.advance(split)

        assert fired_a == fired_b
        assert clock_a.now == clock_b.now
