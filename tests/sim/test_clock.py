"""Discrete-event clock behaviour."""

import pytest

from repro.sim.clock import Clock, SimulationError


class TestScheduling:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(start=100.0).now == 100.0

    def test_call_at_fires_in_time_order(self):
        clock = Clock()
        fired = []
        clock.call_at(5.0, lambda: fired.append("b"))
        clock.call_at(1.0, lambda: fired.append("a"))
        clock.call_at(9.0, lambda: fired.append("c"))
        clock.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        clock = Clock()
        fired = []
        for label in "abc":
            clock.call_at(3.0, lambda tag=label: fired.append(tag))
        clock.run()
        assert fired == ["a", "b", "c"]

    def test_call_after_is_relative(self):
        clock = Clock(start=10.0)
        seen = []
        clock.call_after(5.0, lambda: seen.append(clock.now))
        clock.run()
        assert seen == [15.0]

    def test_scheduling_in_past_rejected(self):
        clock = Clock(start=10.0)
        with pytest.raises(SimulationError):
            clock.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Clock().call_after(-1.0, lambda: None)


class TestStepAndRun:
    def test_step_advances_to_event_time(self):
        clock = Clock()
        clock.call_at(7.0, lambda: None)
        event = clock.step()
        assert event is not None
        assert clock.now == 7.0

    def test_step_on_empty_queue_returns_none(self):
        assert Clock().step() is None

    def test_run_until_fires_only_due_events(self):
        clock = Clock()
        fired = []
        clock.call_at(1.0, lambda: fired.append(1))
        clock.call_at(10.0, lambda: fired.append(10))
        count = clock.run_until(5.0)
        assert count == 1
        assert fired == [1]
        assert clock.now == 5.0
        assert clock.pending == 1

    def test_run_until_past_deadline_rejected(self):
        clock = Clock(start=10.0)
        with pytest.raises(SimulationError):
            clock.run_until(5.0)

    def test_run_until_lands_exactly_on_deadline(self):
        clock = Clock()
        clock.run_until(42.0)
        assert clock.now == 42.0

    def test_advance_is_relative(self):
        clock = Clock(start=10.0)
        clock.advance(5.0)
        assert clock.now == 15.0

    def test_events_scheduled_during_run_fire(self):
        clock = Clock()
        fired = []

        def chain():
            fired.append(clock.now)
            if clock.now < 3.0:
                clock.call_after(1.0, chain)

        clock.call_at(1.0, chain)
        clock.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_event_budget_guards_infinite_loops(self):
        clock = Clock()

        def forever():
            clock.call_after(1.0, forever)

        clock.call_after(1.0, forever)
        with pytest.raises(SimulationError):
            clock.run(max_events=100)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        clock = Clock()
        fired = []
        event = clock.call_at(1.0, lambda: fired.append(1))
        event.cancel()
        clock.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        clock = Clock()
        event = clock.call_at(1.0, lambda: None)
        clock.call_at(2.0, lambda: None)
        assert clock.pending == 2
        event.cancel()
        assert clock.pending == 1

    def test_processed_counts_only_fired(self):
        clock = Clock()
        event = clock.call_at(1.0, lambda: None)
        clock.call_at(2.0, lambda: None)
        event.cancel()
        clock.run()
        assert clock.processed == 1
