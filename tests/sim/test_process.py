"""Simulated process lifecycle."""

import pytest

from repro.sim.clock import Clock, SimulationError
from repro.sim.process import PeriodicTask, ProcessState, SimProcess


@pytest.fixture
def clock():
    return Clock()


class TestBasicLifecycle:
    def test_completes_after_duration(self, clock):
        proc = SimProcess(clock, duration=10.0, name="p")
        proc.start()
        clock.advance(9.9)
        assert proc.state is ProcessState.RUNNING
        clock.advance(0.2)
        assert proc.state is ProcessState.DONE
        assert proc.finished_at == 10.0

    def test_completion_callback_fires(self, clock):
        done = []
        proc = SimProcess(clock, duration=5.0, on_complete=done.append)
        proc.start()
        clock.advance(5.0)
        assert done == [proc]

    def test_zero_duration_completes_immediately_on_tick(self, clock):
        proc = SimProcess(clock, duration=0.0)
        proc.start()
        clock.run()
        assert proc.state is ProcessState.DONE

    def test_negative_duration_rejected(self, clock):
        with pytest.raises(SimulationError):
            SimProcess(clock, duration=-1.0)

    def test_cannot_start_twice(self, clock):
        proc = SimProcess(clock, duration=1.0)
        proc.start()
        with pytest.raises(SimulationError):
            proc.start()


class TestSuspendResume:
    def test_suspension_pauses_progress(self, clock):
        proc = SimProcess(clock, duration=10.0)
        proc.start()
        clock.advance(4.0)
        proc.suspend()
        assert proc.state is ProcessState.SUSPENDED
        assert proc.consumed == 4.0
        clock.advance(100.0)
        assert proc.state is ProcessState.SUSPENDED
        proc.resume()
        clock.advance(6.0)
        assert proc.state is ProcessState.DONE
        assert proc.finished_at == 110.0

    def test_cpu_time_counts_only_running(self, clock):
        proc = SimProcess(clock, duration=10.0)
        proc.start()
        clock.advance(3.0)
        proc.suspend()
        clock.advance(50.0)
        assert proc.cpu_time == 3.0

    def test_remaining_accounts_for_progress(self, clock):
        proc = SimProcess(clock, duration=10.0)
        proc.start()
        clock.advance(4.0)
        assert proc.remaining == pytest.approx(6.0)

    def test_suspend_requires_running(self, clock):
        proc = SimProcess(clock, duration=1.0)
        with pytest.raises(SimulationError):
            proc.suspend()

    def test_resume_requires_suspended(self, clock):
        proc = SimProcess(clock, duration=1.0)
        proc.start()
        with pytest.raises(SimulationError):
            proc.resume()

    def test_repeated_suspend_resume_cycles(self, clock):
        proc = SimProcess(clock, duration=6.0)
        proc.start()
        for _ in range(3):
            clock.advance(1.0)
            proc.suspend()
            clock.advance(10.0)
            proc.resume()
        clock.advance(3.0)
        assert proc.state is ProcessState.DONE
        assert proc.cpu_time == pytest.approx(6.0)


class TestKill:
    def test_kill_prevents_completion(self, clock):
        proc = SimProcess(clock, duration=5.0)
        proc.start()
        clock.advance(2.0)
        proc.kill()
        clock.advance(10.0)
        assert proc.state is ProcessState.KILLED
        assert proc.cpu_time == 2.0

    def test_kill_is_idempotent(self, clock):
        proc = SimProcess(clock, duration=5.0)
        proc.start()
        proc.kill()
        proc.kill()
        assert proc.state is ProcessState.KILLED

    def test_kill_after_done_is_noop(self, clock):
        proc = SimProcess(clock, duration=1.0)
        proc.start()
        clock.advance(1.0)
        proc.kill()
        assert proc.state is ProcessState.DONE

    def test_is_active(self, clock):
        proc = SimProcess(clock, duration=1.0)
        assert proc.is_active
        proc.start()
        assert proc.is_active
        proc.kill()
        assert not proc.is_active


class TestPeriodicTask:
    def test_fires_at_interval(self, clock):
        times = []
        task = PeriodicTask(clock, interval=2.0, callback=lambda t: times.append(clock.now))
        task.start()
        clock.run_until(7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_stop_cancels_future_ticks(self, clock):
        count = []
        task = PeriodicTask(clock, interval=1.0, callback=lambda t: count.append(1))
        task.start()
        clock.run_until(3.0)
        task.stop()
        clock.run_until(10.0)
        assert len(count) == 3

    def test_callback_can_stop_its_own_task(self, clock):
        def until_three(task):
            if task.fired >= 3:
                task.stop()

        task = PeriodicTask(clock, interval=1.0, callback=until_three)
        task.start()
        clock.run_until(100.0)
        assert task.fired == 3
        assert task.stopped

    def test_zero_interval_rejected(self, clock):
        with pytest.raises(SimulationError):
            PeriodicTask(clock, interval=0.0, callback=lambda t: None)

    def test_cannot_restart_stopped_task(self, clock):
        task = PeriodicTask(clock, interval=1.0, callback=lambda t: None)
        task.start()
        task.stop()
        with pytest.raises(SimulationError):
            task.start()
