"""Unit tests for the labeled metrics registry (repro.obs.registry)."""

import json

import pytest

from repro.obs import (
    LabelError,
    MetricsRegistry,
    OVERFLOW_LABEL,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increments_per_label_set(self, registry):
        family = registry.counter(
            "authz_decisions_total", "decisions", ("action", "decision")
        )
        family.labels(action="start", decision="permit").inc()
        family.labels(action="start", decision="permit").inc(2)
        family.labels(action="cancel", decision="deny").inc()
        assert registry.value(
            "authz_decisions_total", action="start", decision="permit"
        ) == 3
        assert registry.value(
            "authz_decisions_total", action="cancel", decision="deny"
        ) == 1

    def test_negative_increment_rejected(self, registry):
        family = registry.counter("c_total", "c", ())
        with pytest.raises(ValueError):
            family.labels().inc(-1)

    def test_convenience_count(self, registry):
        registry.count("requests_total", "requests", source="vo")
        registry.count("requests_total", "requests", source="vo")
        assert registry.value("requests_total", source="vo") == 2


class TestGauge:
    def test_set_and_overwrite(self, registry):
        registry.set_gauge("breaker_state", 2, help="state", source="cas")
        registry.set_gauge("breaker_state", 0, help="state", source="cas")
        assert registry.value("breaker_state", source="cas") == 0


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        family = registry.histogram(
            "latency_seconds", "latency", ("source",),
            buckets=(0.1, 1.0, float("inf")),
        )
        hist = family.labels(source="vo")
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(6.05)
        # Cumulative bucket counts: <=0.1, <=1.0, <=inf.
        assert [count for _, count in hist.cumulative()] == [1, 3, 4]

    def test_quantile_interpolates(self, registry):
        family = registry.histogram(
            "h_seconds", "h", (), buckets=(1.0, 2.0, float("inf"))
        )
        hist = family.labels()
        for value in (0.5, 1.5, 1.5, 1.5):
            hist.observe(value)
        assert 0.0 < hist.quantile(0.5) <= 2.0
        assert hist.quantile(0.1) <= hist.quantile(0.99)

    def test_empty_quantile_is_zero(self, registry):
        family = registry.histogram("h2_seconds", "h", ())
        assert family.labels().quantile(0.5) == 0.0

    def test_bad_quantile_rejected(self, registry):
        family = registry.histogram("h3_seconds", "h", ())
        with pytest.raises(ValueError):
            family.labels().quantile(1.5)


class TestLabelValidation:
    def test_wrong_labelnames_raise(self, registry):
        family = registry.counter("t_total", "t", ("action",))
        with pytest.raises(LabelError):
            family.labels(verb="start")
        with pytest.raises(LabelError):
            family.labels(action="start", extra="x")

    def test_kind_mismatch_raises(self, registry):
        registry.counter("m_total", "m", ())
        with pytest.raises(LabelError):
            registry.gauge("m_total", "m", ())

    def test_labelname_mismatch_raises(self, registry):
        registry.counter("n_total", "n", ("a",))
        with pytest.raises(LabelError):
            registry.counter("n_total", "n", ("b",))

    def test_idempotent_get_or_create(self, registry):
        first = registry.counter("i_total", "i", ("a",))
        second = registry.counter("i_total", "i", ("a",))
        assert first is second


class TestCardinalityGuard:
    def test_overflow_folds_into_reserved_series(self):
        registry = MetricsRegistry(max_series=3)
        family = registry.counter("wide_total", "wide", ("user",))
        for index in range(10):
            family.labels(user=f"user-{index}").inc()
        # Three real series plus the overflow bucket.
        labels = [labels for labels, _ in family.series()]
        assert {"user": OVERFLOW_LABEL} in labels
        assert len(labels) == 4
        assert family.overflowed == 7
        assert registry.value("wide_total", user=OVERFLOW_LABEL) == 7

    def test_existing_series_keep_counting_after_overflow(self):
        registry = MetricsRegistry(max_series=1)
        family = registry.counter("w2_total", "w", ("k",))
        family.labels(k="a").inc()
        family.labels(k="b").inc()  # overflows
        family.labels(k="a").inc()  # existing series still addressable
        assert registry.value("w2_total", k="a") == 2

    def test_overflow_is_visible_in_snapshot(self):
        registry = MetricsRegistry(max_series=1)
        family = registry.counter("w3_total", "w", ("k",))
        family.labels(k="a").inc()
        family.labels(k="b").inc()
        (data,) = [f for f in registry.snapshot() if f["name"] == "w3_total"]
        assert data["overflowed"] == 1


class TestSnapshot:
    def test_snapshot_is_sorted_and_plain_data(self, registry):
        registry.count("b_total", "b", x="1")
        registry.count("a_total", "a")
        snapshot = registry.snapshot()
        assert [family["name"] for family in snapshot] == ["a_total", "b_total"]
        json.dumps(snapshot)  # plain JSON-serializable data
