"""Unit tests for span tracing (repro.obs.spans)."""

import json
import threading

import pytest

from repro.obs import MetricsRegistry, Tracer, current_span, event, span
from repro.sim.clock import Clock


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestNesting:
    def test_root_and_children_share_trace_id(self, tracer, clock):
        with tracer.span("root") as root:
            clock.advance(1.0)
            with tracer.span("child") as child:
                clock.advance(0.5)
                with tracer.span("grandchild") as grandchild:
                    pass
        assert root.trace_id == child.trace_id == grandchild.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert root.duration == pytest.approx(1.5)
        assert child.start == pytest.approx(1.0)

    def test_correlation_ids_are_sequential(self, tracer):
        for _ in range(3):
            with tracer.span("request"):
                pass
        assert tracer.trace_ids() == ("req-000001", "req-000002", "req-000003")

    def test_module_helpers_attach_to_active_span(self, tracer):
        with tracer.span("root") as root:
            with span("inner", detail="x") as inner:
                assert current_span() is inner
                event("tick", "something happened")
        assert inner.trace_id == root.trace_id
        assert inner.events[0].name == "tick"

    def test_module_helpers_noop_without_trace(self):
        assert current_span() is None
        with span("orphan") as nothing:
            assert nothing is None
        event("ignored")  # must not raise

    def test_trace_buffered_only_when_root_finishes(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            assert len(tracer) == 0  # root still open
        assert len(tracer) == 1


class TestErrorStatus:
    def test_exception_marks_span_and_propagates(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        spans = tracer.find("req-000001")
        by_name = {item.name: item for item in spans}
        assert by_name["child"].status == "error:RuntimeError"
        assert by_name["root"].status == "error:RuntimeError"


class TestRetention:
    def test_limit_evicts_and_counts(self, clock):
        registry = MetricsRegistry()
        tracer = Tracer(clock=clock, limit=2, registry=registry)
        for _ in range(5):
            with tracer.span("request"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert registry.value("obs_traces_dropped_total") == 3
        # The newest traces survive.
        assert tracer.trace_ids() == ("req-000004", "req-000005")


class TestThreadIsolation:
    def test_threads_do_not_inherit_spans(self, tracer):
        seen = {}

        def worker():
            seen["span"] = current_span()

        with tracer.span("root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["span"] is None

    def test_concurrent_roots_get_distinct_traces(self, tracer):
        barrier = threading.Barrier(4)
        trace_ids = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            with tracer.span("request") as root:
                with tracer.span("child") as child:
                    assert child.trace_id == root.trace_id
            with lock:
                trace_ids.append(root.trace_id)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(trace_ids)) == 4
        for trace_id in trace_ids:
            spans = tracer.find(trace_id)
            assert [item.name for item in spans] == ["request", "child"]


class TestExport:
    def test_jsonl_roundtrip_and_determinism(self, clock, tmp_path):
        def run():
            tracer = Tracer(clock=Clock())
            with tracer.span("root", kind="test"):
                with tracer.span("child"):
                    event("mark", "detail")
            return tracer.to_jsonl()

        first, second = run(), run()
        assert first == second
        lines = [json.loads(line) for line in first.splitlines()]
        assert [item["name"] for item in lines] == ["root", "child"]

    def test_export_writes_every_span(self, tracer, tmp_path):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export(str(path)) == 2
        assert len(path.read_text().splitlines()) == 2
