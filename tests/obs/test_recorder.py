"""The anomaly flight recorder (repro.obs.recorder)."""

import json

import pytest

from repro.obs.recorder import (
    FlightDump,
    FlightRecorder,
    load_flight_dump,
    render_flight_dump,
)

ALERT = {
    "target": "lbnl",
    "severity": "critical",
    "spec": "decision-availability",
    "burn": 6.5,
    "error_rate": 0.0065,
    "message": "lbnl transitioned to critical at t=12.0",
}


def decision(request_id, scope="lbnl", code="SUCCESS", at=1.0):
    return {
        "at": at,
        "scope": scope,
        "request_id": request_id,
        "name": "gatekeeper.submit",
        "code": code,
        "status": "ok",
    }


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(limit=3)
        for index in range(5):
            recorder.record_decision(decision(f"req-{index:06d}"))
        assert len(recorder) == 3
        assert recorder.recorded == 5
        assert [d["request_id"] for d in recorder.decisions()] == [
            "req-000002",
            "req-000003",
            "req-000004",
        ]

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(limit=0)

    def test_scope_filtering(self):
        recorder = FlightRecorder()
        recorder.record_decision(decision("req-000001", scope="lbnl"))
        recorder.record_decision(decision("req-000002", scope="anl"))
        recorder.note_window({"scope": "lbnl", "index": 0, "delta": []})
        recorder.note_window({"scope": "anl", "index": 0, "delta": []})
        assert len(recorder.decisions("lbnl")) == 1
        assert len(recorder.decisions()) == 2
        assert len(recorder.windows("anl")) == 1

    def test_freeze_snapshots_without_disturbing_recording(self):
        recorder = FlightRecorder()
        recorder.record_decision(decision("req-000001"))
        dump = recorder.freeze(ALERT, frozen_at=12.0, scope="lbnl")
        recorder.record_decision(decision("req-000002"))
        assert recorder.frozen == 1
        assert dump.request_ids() == ("req-000001",)  # frozen, not live
        assert len(recorder) == 2


class TestFlightDump:
    def build(self):
        return FlightDump(
            ALERT,
            [
                decision("req-000007", code="AUTHORIZATION_SYSTEM_FAILURE"),
                decision("req-000007", code="AUTHORIZATION_SYSTEM_FAILURE"),
                decision("req-000009"),
            ],
            [{"scope": "lbnl", "index": 4, "start": 8.0, "end": 10.0, "delta": []}],
            frozen_at=12.0,
        )

    def test_request_ids_deduplicate_in_order(self):
        assert self.build().request_ids() == ("req-000007", "req-000009")

    def test_jsonl_roundtrip_through_disk(self, tmp_path):
        dump = self.build()
        path = tmp_path / "dump.jsonl"
        lines = dump.export(str(path))
        assert lines == 5  # 1 alert + 3 decisions + 1 window
        loaded = load_flight_dump(str(path))
        assert loaded.alert == dump.alert
        assert loaded.frozen_at == 12.0
        assert loaded.decisions == dump.decisions
        assert loaded.windows == dump.windows

    def test_jsonl_lines_are_kind_tagged(self):
        kinds = [
            json.loads(line)["kind"]
            for line in self.build().to_jsonl().splitlines()
        ]
        assert kinds == ["alert", "decision", "decision", "decision", "window"]

    def test_load_rejects_unknown_kinds(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown line kind"):
            load_flight_dump(str(path))

    def test_load_rejects_missing_alert(self, tmp_path):
        path = tmp_path / "headless.jsonl"
        path.write_text(json.dumps({"kind": "decision"}) + "\n")
        with pytest.raises(ValueError, match="no alert line"):
            load_flight_dump(str(path))

    def test_render_names_the_evidence(self):
        text = render_flight_dump(self.build())
        assert "flight dump @ t=12.0" in text
        assert "lbnl -> critical" in text
        assert "req-000007" in text
        assert "decisions (3)" in text
        assert "windows (1)" in text
