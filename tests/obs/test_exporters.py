"""Golden-output tests for the exporters (repro.obs.exporters)."""

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    diff_snapshots,
    histogram_quantile,
    load_snapshot,
    load_spans,
    prometheus_text,
    render_trace_tree,
    snapshot_jsonl,
    source_latency_report,
    trace_summary,
)
from repro.sim.clock import Clock


def small_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.count(
        "authz_decisions_total", "decisions", action="start", decision="permit"
    )
    registry.count(
        "authz_decisions_total", "decisions", action="start", decision="permit"
    )
    registry.set_gauge("breaker_state", 2, help="state", source="cas")
    family = registry.histogram(
        "authz_source_latency_seconds",
        "latency",
        ("source",),
        buckets=(0.1, 1.0, float("inf")),
    )
    family.labels(source="vo").observe(0.05)
    family.labels(source="vo").observe(0.5)
    return registry


GOLDEN_PROMETHEUS = """\
# HELP authz_decisions_total decisions
# TYPE authz_decisions_total counter
authz_decisions_total{action="start",decision="permit"} 2
# HELP authz_source_latency_seconds latency
# TYPE authz_source_latency_seconds histogram
authz_source_latency_seconds_bucket{source="vo",le="0.1"} 1
authz_source_latency_seconds_bucket{source="vo",le="1"} 2
authz_source_latency_seconds_bucket{source="vo",le="+Inf"} 2
authz_source_latency_seconds_sum{source="vo"} 0.55
authz_source_latency_seconds_count{source="vo"} 2
# HELP breaker_state state
# TYPE breaker_state gauge
breaker_state{source="cas"} 2
"""


class TestPrometheus:
    def test_golden_output(self):
        assert prometheus_text(small_registry().snapshot()) == GOLDEN_PROMETHEUS

    def test_empty_snapshot(self):
        assert prometheus_text([]) == ""

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.count("c_total", "c", source='say "hi"\nback\\slash')
        text = prometheus_text(registry.snapshot())
        assert 'source="say \\"hi\\"\\nback\\\\slash"' in text


class TestJsonlRoundtrip:
    def test_snapshot_roundtrip(self, tmp_path):
        snapshot = small_registry().snapshot()
        path = tmp_path / "metrics.jsonl"
        path.write_text(snapshot_jsonl(snapshot) + "\n")
        assert load_snapshot(str(path)) == snapshot

    def test_snapshot_json_array_accepted(self, tmp_path):
        import json

        snapshot = small_registry().snapshot()
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snapshot))
        assert load_snapshot(str(path)) == snapshot

    def test_span_roundtrip(self, tmp_path):
        tracer = Tracer(clock=Clock())
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        path = tmp_path / "spans.jsonl"
        tracer.export(str(path))
        spans = load_spans(str(path))
        assert [item["name"] for item in spans] == ["root", "child"]


class TestDiff:
    def test_counters_and_histograms_subtract(self):
        registry = small_registry()
        before = registry.snapshot()
        registry.count(
            "authz_decisions_total", "d", action="start", decision="permit"
        )
        registry.histogram(
            "authz_source_latency_seconds", "l", ("source",)
        ).labels(source="vo").observe(0.05)
        delta = diff_snapshots(before, registry.snapshot())
        by_name = {family["name"]: family for family in delta}
        assert by_name["authz_decisions_total"]["series"][0]["value"] == 1
        assert by_name["authz_source_latency_seconds"]["series"][0]["count"] == 1
        # Untouched families are dropped from the delta entirely.
        assert "breaker_state" not in by_name

    def test_gauge_reports_after_value(self):
        registry = small_registry()
        before = registry.snapshot()
        registry.set_gauge("breaker_state", 0, help="state", source="cas")
        delta = diff_snapshots(before, registry.snapshot())
        (family,) = [f for f in delta if f["name"] == "breaker_state"]
        assert family["series"][0]["value"] == 0

    def test_identical_snapshots_diff_empty(self):
        snapshot = small_registry().snapshot()
        assert diff_snapshots(snapshot, snapshot) == []


class TestQuantiles:
    def test_histogram_quantile_from_export(self):
        buckets = [[0.1, 1], [1.0, 3], [float("inf"), 4]]
        assert 0.1 <= histogram_quantile(buckets, 0.5) <= 1.0
        assert histogram_quantile(buckets, 1.0) == 1.0  # inf bucket -> lower
        assert histogram_quantile([], 0.5) == 0.0

    def test_source_latency_report(self):
        report = source_latency_report(small_registry().snapshot())
        assert report.startswith("per-source latency")
        assert "vo: n=2" in report
        assert "p50=" in report and "p99=" in report

    def test_source_latency_report_missing_metric(self):
        assert "no authz_source_latency_seconds" in source_latency_report([])


def two_trace_export():
    clock = Clock()
    tracer = Tracer(clock=clock)
    with tracer.span("gatekeeper.submit", host="grid") as root:
        clock.advance(0.25)
        with tracer.span("pep.authorize", action="start"):
            root.event("gridmap", "lookup identity")
            clock.advance(0.5)
    with tracer.span("gatekeeper.manage", action="cancel"):
        clock.advance(0.125)
    import json

    return [json.loads(line) for line in tracer.to_jsonl().splitlines()]


GOLDEN_TREE = """\
trace req-000001
  gatekeeper.submit 0.750s [host=grid]
    @0.250 gridmap: lookup identity
    pep.authorize 0.500s [action=start]"""


class TestTraceRendering:
    def test_golden_tree(self):
        spans = two_trace_export()
        assert render_trace_tree(spans, trace_id="req-000001") == GOLDEN_TREE

    def test_ambiguous_export_requires_trace_id(self):
        spans = two_trace_export()
        with pytest.raises(ValueError, match="req-000001, req-000002"):
            render_trace_tree(spans)

    def test_unknown_trace_id(self):
        spans = two_trace_export()
        with pytest.raises(ValueError, match="no trace"):
            render_trace_tree(spans, trace_id="req-999999")

    def test_summary_lists_each_trace(self):
        spans = two_trace_export()
        summary = trace_summary(spans)
        assert summary.splitlines() == [
            "req-000001 gatekeeper.submit spans=2 0.750s",
            "req-000002 gatekeeper.manage spans=1 0.125s",
        ]

    def test_summary_empty(self):
        assert trace_summary([]) == "no traces"
