"""Telemetry instrumentation through the real authorization path.

Exercises the span trees and labeled metrics produced by the PEP,
callout registry, combined evaluator and resilience layer — including
the degraded (fail-static) and breaker-open paths the dashboards care
about most.
"""

import pytest

from repro.core.builtin_callouts import combined_policy_callout
from repro.core.callout import GRAM_AUTHZ_CALLOUT, default_registry
from repro.core.decision import Decision
from repro.core.errors import AuthorizationDenied, AuthorizationSystemFailure
from repro.core.parser import parse_policy
from repro.core.pep import EnforcementPoint
from repro.core.pipeline import TracingMiddleware
from repro.core.request import AuthorizationRequest
from repro.core.resilience import DegradationMode, ResilienceConfig
from repro.obs import Telemetry
from repro.rsl.parser import parse_specification
from repro.sim.clock import Clock

ALICE = "/O=Grid/OU=fi/CN=Alice"
POLICY_TEXT = f"{ALICE}: &(action=start)(executable=sim) &(action=cancel)"


def start_request(executable="sim"):
    return AuthorizationRequest.start(
        ALICE, parse_specification(f"&(executable={executable})(count=1)")
    )


def events_named(spans, name):
    return [
        event
        for item in spans
        for event in item.events
        if event.name == name
    ]


def build_policy_pep():
    """PEP over the combined VO∧local evaluator, telemetry attached."""
    telemetry = Telemetry(clock=Clock())
    registry = default_registry()
    callout = combined_policy_callout(
        [
            parse_policy(POLICY_TEXT, name="vo"),
            parse_policy(POLICY_TEXT, name="local"),
        ]
    )
    registry.register(GRAM_AUTHZ_CALLOUT, callout, label="vo+local")
    pep = EnforcementPoint(registry=registry, telemetry=telemetry)
    return pep, telemetry


class _Toggleable:
    """Permits while healthy; raises when down."""

    def __init__(self):
        self.down = False

    def __call__(self, request):
        if self.down:
            raise ConnectionError("policy source unreachable")
        return Decision.permit(reason="known user", source="toggle")


def build_resilient_pep(mode, failure_threshold=5):
    telemetry = Telemetry(clock=Clock())
    registry = default_registry()
    source = _Toggleable()
    config = ResilienceConfig(
        clock=telemetry.clock,
        failure_threshold=failure_threshold,
        mode=mode,
        registry=telemetry.registry,
    )
    registry.register(
        GRAM_AUTHZ_CALLOUT, config.wrap(source, name="toggle"), label="toggle"
    )
    pep = EnforcementPoint(
        registry=registry,
        resilience=config.middleware(),
        telemetry=telemetry,
    )
    return pep, source, telemetry


class TestSpanTree:
    def test_pep_to_source_nesting(self):
        pep, telemetry = build_policy_pep()
        decision = pep.authorize(start_request())
        assert decision.is_permit
        assert decision.context.correlation_id == "req-000001"
        spans = telemetry.tracer.find("req-000001")
        names = [item.name for item in spans]
        assert names == [
            "pep.authorize",
            "callout:vo+local",
            "source:vo",
            "source:local",
        ]
        root = spans[0]
        assert root.attrs["decision"] == "permit"
        assert all(item.trace_id == "req-000001" for item in spans)

    def test_denial_labels_span(self):
        pep, telemetry = build_policy_pep()
        with pytest.raises(AuthorizationDenied):
            pep.authorize(start_request(executable="rogue"))
        root = telemetry.tracer.find("req-000001")[0]
        assert root.attrs["decision"] == "deny"

    def test_source_latency_bridge_populates_histograms(self):
        pep, telemetry = build_policy_pep()
        pep.authorize(start_request())
        family = telemetry.registry.get("authz_source_latency_seconds")
        sources = {labels["source"] for labels, _ in family.series()}
        assert sources == {"vo", "local"}
        family = telemetry.registry.get("authz_callout_latency_seconds")
        assert {labels["callout"] for labels, _ in family.series()} == {
            "vo+local"
        }


class TestDecisionMetrics:
    def test_registry_mirrors_legacy_counters(self):
        pep, telemetry = build_policy_pep()
        pep.authorize(start_request())
        with pytest.raises(AuthorizationDenied):
            pep.authorize(start_request(executable="rogue"))
        registry = telemetry.registry
        assert registry.value(
            "authz_decisions_total", action="start", decision="permit"
        ) == 1
        assert registry.value(
            "authz_decisions_total", action="start", decision="deny"
        ) == 1
        assert registry.value("authz_cache_total", status="bypass") == 2
        latency = registry.get("authz_latency_seconds")
        assert sum(h.count for _, h in latency.series()) == 2
        # Legacy middleware API still answers.
        assert pep.permits == 1 and pep.denials == 1


class TestFailStaticPath:
    def test_degraded_serve_is_traced_and_counted(self):
        pep, source, telemetry = build_resilient_pep(DegradationMode.FAIL_STATIC)
        assert pep.authorize(start_request()).is_permit
        source.down = True
        degraded = pep.authorize(start_request())
        assert degraded.is_permit
        assert degraded.context.degraded == "fail-static"
        spans = telemetry.tracer.find("req-000002")
        assert [item.name for item in spans] == [
            "pep.authorize",
            "callout:toggle",
        ]
        assert events_named(spans, "degraded")
        registry = telemetry.registry
        assert registry.value("resilience_degraded_total", source="toggle") == 1
        assert registry.value("authz_degraded_total", mode="fail-static") == 1
        assert registry.value(
            "resilience_failures_total", source="toggle", failure_kind="error"
        ) == 1


class TestBreakerOpenPath:
    def test_fast_fail_is_traced_and_gauged(self):
        pep, source, telemetry = build_resilient_pep(
            DegradationMode.FAIL_CLOSED, failure_threshold=1
        )
        source.down = True
        with pytest.raises(AuthorizationSystemFailure):
            pep.authorize(start_request())
        with pytest.raises(AuthorizationSystemFailure) as excinfo:
            pep.authorize(start_request())
        assert excinfo.value.kind == "breaker-open"
        registry = telemetry.registry
        assert registry.value("breaker_state", source="toggle") == 2  # open
        assert registry.value(
            "breaker_transitions_total", source="toggle", to="open"
        ) == 1
        assert registry.value("resilience_fast_fails_total", source="toggle") == 1
        # First trace carries the breaker transition, second the fast-fail.
        assert events_named(telemetry.tracer.find("req-000001"), "breaker")
        assert events_named(telemetry.tracer.find("req-000002"), "fast-fail")
        root = telemetry.tracer.find("req-000002")[0]
        assert root.attrs["decision"] == "failure"
        assert root.attrs["failure_kind"] == "breaker-open"
        assert root.status.startswith("error:")
        # The audit log carries the same attribution.
        record = pep.audit_log[-1]
        assert record.failure_kind == "breaker-open"
        assert record.failure_source == "toggle"


class TestTracingRetention:
    def test_dropped_counter_surfaces_in_registry(self):
        pep, telemetry = build_policy_pep()
        tracing = TracingMiddleware(limit=2, registry=telemetry.registry)
        pep.use_tracing(tracing)
        for _ in range(3):
            pep.authorize(start_request())
        assert tracing.dropped == 1
        assert len(tracing.records) == 2
        assert telemetry.registry.value("tracing_dropped_total") == 1

    def test_use_tracing_inherits_telemetry_registry(self):
        pep, telemetry = build_policy_pep()
        tracing = pep.use_tracing()
        assert tracing.registry is telemetry.registry


class TestTelemetryOptional:
    def test_pep_without_telemetry_still_works(self):
        registry = default_registry()
        registry.register(
            GRAM_AUTHZ_CALLOUT,
            lambda request: Decision.permit(reason="ok", source="stub"),
        )
        pep = EnforcementPoint(registry=registry)
        assert pep.authorize(start_request()).is_permit
        assert pep.telemetry is None
