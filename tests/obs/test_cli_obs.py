"""CLI coverage for `repro.cli obs` and `audit-summary --metrics`."""

import pytest

from repro.cli import main
from repro.core.parser import parse_policy
from repro.gram.audit import export_audit_log
from repro.gram.client import GramClient
from repro.gram.service import GramService, ServiceConfig

ALICE = "/O=Grid/OU=fi/CN=Alice"
POLICY_TEXT = f"{ALICE}: &(action=start)(executable=sim) &(action=cancel)"


@pytest.fixture
def exports(tmp_path):
    """A small scenario exported to disk: spans, metrics, audit."""
    service = GramService(
        ServiceConfig(
            policies=(
                parse_policy(POLICY_TEXT, name="vo"),
                parse_policy(POLICY_TEXT, name="local"),
            )
        )
    )
    client = GramClient(service.add_user(ALICE, "alice"), service.gatekeeper)
    submitted = client.submit("&(executable=sim)(count=1)")
    assert submitted.ok
    denied = client.submit("&(executable=rogue)(count=1)")
    assert not denied.ok

    spans = tmp_path / "spans.jsonl"
    metrics = tmp_path / "metrics.jsonl"
    audit = tmp_path / "audit.jsonl"
    service.telemetry.tracer.export(str(spans))
    metrics.write_text(service.telemetry.registry.to_jsonl() + "\n")
    export_audit_log(service.pep, str(audit))
    return {"spans": spans, "metrics": metrics, "audit": audit}


class TestObsCommand:
    def test_render_named_trace(self, exports, capsys):
        assert main(["obs", str(exports["spans"]), "--trace", "req-000001"]) == 0
        out = capsys.readouterr().out
        assert "trace req-000001" in out
        assert "gatekeeper.submit" in out
        assert "pep.authorize" in out

    def test_summary_lists_traces(self, exports, capsys):
        assert main(["obs", str(exports["spans"]), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "req-000001" in out and "req-000002" in out

    def test_metrics_prometheus(self, exports, capsys):
        assert main(["obs", str(exports["metrics"]), "--metrics", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE authz_decisions_total counter" in out
        assert 'decision="permit"' in out and 'decision="deny"' in out

    def test_metrics_json(self, exports, capsys):
        assert main(["obs", str(exports["metrics"]), "--metrics", "json"]) == 0
        assert '"authz_decisions_total"' in capsys.readouterr().out

    def test_ambiguous_trace_is_usage_error(self, exports, capsys):
        assert main(["obs", str(exports["spans"])]) == 2
        assert "trace" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "nope.jsonl"), "--summary"]) == 2


class TestAuditSummaryMetrics:
    def test_reports_source_percentiles(self, exports, capsys):
        assert main(
            [
                "audit-summary",
                str(exports["audit"]),
                "--metrics",
                str(exports["metrics"]),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "decisions" in out
        assert "per-source latency" in out
        assert "vo:" in out and "local:" in out

    def test_audit_entries_join_traces(self, exports):
        from repro.gram.audit import load_audit_log
        from repro.obs import load_spans

        entries = load_audit_log(str(exports["audit"]))
        trace_ids = {item["trace"] for item in load_spans(str(exports["spans"]))}
        assert [entry.request_id for entry in entries] == [
            "req-000001",
            "req-000002",
        ]
        assert {entry.request_id for entry in entries} <= trace_ids

    def test_missing_metrics_file_is_usage_error(self, exports, tmp_path):
        assert main(
            [
                "audit-summary",
                str(exports["audit"]),
                "--metrics",
                str(tmp_path / "nope.jsonl"),
            ]
        ) == 2
