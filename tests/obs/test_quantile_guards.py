"""Quantile estimation guards: empty, degenerate, and merged data.

`Histogram.quantile` (live series) and `histogram_quantile` (exported
cumulative pairs) must answer 0.0 — never raise, never divide by
zero — on empty or degenerate bucket data, and must agree with each
other over `merge_snapshots` output.
"""

import pytest

from repro.obs.exporters import histogram_quantile, merge_snapshots
from repro.obs.registry import Histogram, MetricsRegistry

INF = float("inf")


class TestHistogramQuantile:
    def test_empty_histogram_is_zero(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 0.0

    def test_quantile_out_of_range_raises(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for q in (-0.1, 1.1):
            with pytest.raises(ValueError):
                histogram.quantile(q)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 0.1))  # unsorted

    def test_single_observation(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        histogram.observe(0.05)
        assert 0.0 < histogram.quantile(0.5) <= 0.1

    def test_everything_in_the_infinite_bucket(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for _ in range(10):
            histogram.observe(50.0)
        # No upper bound to interpolate toward: report the last finite
        # bound rather than inventing a number.
        assert histogram.quantile(0.99) == 1.0


class TestExportedQuantile:
    def test_empty_pairs_is_zero(self):
        assert histogram_quantile([], 0.99) == 0.0

    def test_all_zero_counts_is_zero(self):
        assert histogram_quantile([[0.1, 0], [1.0, 0], [INF, 0]], 0.5) == 0.0

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            histogram_quantile([[1.0, 1], [INF, 1]], 2.0)

    def test_single_infinite_bucket_reports_zero(self):
        assert histogram_quantile([[INF, 5]], 0.99) == 0.0

    def test_zero_count_buckets_are_skipped_not_divided_by(self):
        # Flat cumulative runs (empty buckets) between populated ones.
        pairs = [[0.1, 0], [0.25, 4], [0.5, 4], [1.0, 4], [INF, 8]]
        value = histogram_quantile(pairs, 0.5)
        assert 0.1 < value <= 0.25

    def test_matches_live_histogram_on_the_same_data(self):
        histogram = Histogram(buckets=(0.1, 0.5, 1.0))
        for value in (0.05, 0.2, 0.3, 0.7, 0.9):
            histogram.observe(value)
        pairs = histogram.cumulative()
        for q in (0.1, 0.5, 0.9):
            assert histogram_quantile(pairs, q) == pytest.approx(
                histogram.quantile(q)
            )


class TestQuantilesOverMergedSnapshots:
    def test_merged_shards_match_a_single_registry(self):
        shards = [MetricsRegistry() for _ in range(3)]
        union = MetricsRegistry()
        samples = [0.01, 0.02, 0.2, 0.4, 0.8, 1.5, 2.5, 6.0, 0.03]
        for index, value in enumerate(samples):
            shards[index % 3].observe("authz_latency_seconds", value)
            union.observe("authz_latency_seconds", value)
        merged = merge_snapshots([shard.snapshot() for shard in shards])
        family = next(
            f for f in merged if f["name"] == "authz_latency_seconds"
        )
        buckets = family["series"][0]["buckets"]
        expected = union.snapshot()[0]["series"][0]["buckets"]
        assert buckets == expected
        for q in (0.5, 0.9, 0.99):
            assert histogram_quantile(buckets, q) == pytest.approx(
                histogram_quantile(expected, q)
            )

    def test_merged_empty_shards_are_still_zero(self):
        shards = [MetricsRegistry() for _ in range(2)]
        for shard in shards:
            shard.histogram("authz_latency_seconds")
        merged = merge_snapshots([shard.snapshot() for shard in shards])
        family = next(
            f for f in merged if f["name"] == "authz_latency_seconds"
        )
        for series in family["series"]:
            assert histogram_quantile(series["buckets"], 0.99) == 0.0
