"""The SLO engine: burn rates, status ladder, reports (repro.obs.health)."""

import pytest

from repro.obs.health import (
    CRITICAL,
    DEGRADED,
    HEALTHY,
    HealthEngine,
    HealthMonitor,
    HealthReport,
    SloSpec,
    default_slo_specs,
    report_from_dict,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Tracer
from repro.obs.windows import WindowedAggregator
from repro.sim.clock import Clock


class Feed:
    """A scriptable snapshot source: set counters, take snapshots."""

    def __init__(self):
        self.registry = MetricsRegistry()

    def traffic(self, bad=0, good=0, **labels):
        if bad:
            self.registry.count("bad_total", amount=bad, **labels)
        self.registry.count("all_total", amount=bad + good, **labels)


RATIO = SloSpec(
    name="avail",
    kind="ratio",
    objective=0.9,  # 10% error budget: burn = error_rate * 10
    bad_metric="bad_total",
    total_metric="all_total",
    fast_windows=1,
    slow_windows=2,
)


def build_engine(spec=RATIO, **kwargs):
    feed = Feed()
    engine = HealthEngine([spec], **kwargs)
    engine.add_scope("svc", WindowedAggregator(feed.registry.snapshot, window=1.0))
    return feed, engine


def drive(feed, engine, cycles, bad=0, good=10, start=1.0):
    """N windows of scripted traffic; returns the statuses observed."""
    statuses = []
    now = start
    for _ in range(cycles):
        feed.traffic(bad=bad, good=good)
        engine.scopes["svc"].tick(now)
        statuses.append(engine.evaluate(now).status_of("svc"))
        now += 1.0
    return statuses


class TestSloSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="vibes", objective=0.9, bad_metric="m")

    def test_rejects_objective_outside_unit_interval(self):
        for objective in (0.0, 1.0, 1.5):
            with pytest.raises(ValueError):
                SloSpec(
                    name="x",
                    kind="latency",
                    objective=objective,
                    bad_metric="m",
                    threshold=0.5,
                )

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="latency", objective=0.9, bad_metric="m")

    def test_ratio_needs_total_metric(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="ratio", objective=0.9, bad_metric="m")

    def test_window_ordering(self):
        with pytest.raises(ValueError):
            SloSpec(
                name="x",
                kind="latency",
                objective=0.9,
                bad_metric="m",
                threshold=0.5,
                fast_windows=6,
                slow_windows=3,
            )

    def test_error_budget(self):
        assert RATIO.error_budget == pytest.approx(0.1)

    def test_default_specs_cover_the_metric_catalog(self):
        specs = {spec.name for spec in default_slo_specs()}
        assert specs == {
            "decision-availability",
            "decision-latency-p99",
            "breaker-open-ratio",
            "admission-rejection-rate",
            "source-availability",
        }


class TestEngineValidation:
    def test_burn_threshold_ordering(self):
        with pytest.raises(ValueError):
            HealthEngine([RATIO], degraded_burn=5.0, critical_burn=4.0)
        with pytest.raises(ValueError):
            HealthEngine([RATIO], degraded_burn=0.0)

    def test_duplicate_scope_rejected(self):
        feed, engine = build_engine()
        with pytest.raises(ValueError):
            engine.add_scope(
                "svc", WindowedAggregator(feed.registry.snapshot)
            )


class TestStatusLadder:
    def test_burn_needs_both_windows_to_agree(self):
        feed, engine = build_engine()
        # One bad window after a clean one: the fast window burns hot
        # but the slow window averages it down below threshold.
        drive(feed, engine, 1, bad=0, good=100)
        feed.traffic(bad=5, good=95)
        engine.scopes["svc"].tick(2.0)
        report = engine.evaluate(2.0)
        measurement = report.targets["svc"].measurements[0]
        assert measurement.fast_burn == pytest.approx(0.5)
        assert measurement.burn == measurement.slow_burn < 0.5
        assert report.status_of("svc") == HEALTHY

    def test_one_level_per_evaluation_up(self):
        feed, engine = build_engine()
        # Sustained 50% errors: burn 5 >= critical (4), but the ladder
        # climbs one level per evaluation.
        statuses = drive(feed, engine, 3, bad=5, good=5)
        assert statuses == [DEGRADED, CRITICAL, CRITICAL]

    def test_recovery_requires_consecutive_clean_evaluations(self):
        feed, engine = build_engine(recovery_evaluations=2)
        drive(feed, engine, 2, bad=5, good=5)  # -> critical
        statuses = drive(feed, engine, 6, bad=0, good=10, start=3.0)
        assert statuses == [
            CRITICAL,
            DEGRADED,  # second clean eval steps down
            DEGRADED,
            HEALTHY,
            HEALTHY,
            HEALTHY,
        ]

    def test_a_bad_evaluation_resets_the_recovery_streak(self):
        feed, engine = build_engine(recovery_evaluations=2)
        drive(feed, engine, 1, bad=5, good=5)  # -> degraded
        drive(feed, engine, 1, bad=0, good=10, start=2.0)  # streak 1
        # A fresh bad window puts the burn back in the degraded band,
        # zeroing the streak: the two clean evaluations that follow
        # must be *consecutive* to step down.
        drive(feed, engine, 1, bad=5, good=5, start=3.0)
        statuses = drive(feed, engine, 2, bad=0, good=10, start=4.0)
        assert statuses == [DEGRADED, HEALTHY]

    def test_score_degrades_linearly_with_burn(self):
        feed, engine = build_engine()
        drive(feed, engine, 2, bad=2, good=8)  # burn 2 of critical 4
        report = engine.evaluate(2.0)
        assert report.score_of("svc") == pytest.approx(0.5)
        # weight = score x status factor (degraded = 0.5)
        assert report.status_of("svc") == DEGRADED
        assert report.weight_of("svc") == pytest.approx(0.25)

    def test_no_data_windows_read_as_healthy(self):
        feed, engine = build_engine()
        engine.scopes["svc"].tick(1.0)
        report = engine.evaluate(1.0)
        assert report.status_of("svc") == HEALTHY
        assert report.targets["svc"].burn == 0.0
        assert not report.alerts


class TestAlerts:
    def test_alert_fires_at_degraded_burn(self):
        feed, engine = build_engine()
        drive(feed, engine, 2, bad=2, good=8)
        report = engine.evaluate(2.0)
        assert len(report.alerts) == 1
        alert = report.alerts[0]
        assert (alert.target, alert.spec) == ("svc", "avail")
        assert alert.severity == DEGRADED
        assert alert.burn == pytest.approx(2.0)

    def test_alert_escalates_to_critical_severity(self):
        feed, engine = build_engine()
        drive(feed, engine, 2, bad=5, good=5)
        report = engine.evaluate(2.0)
        assert report.alerts[0].severity == CRITICAL

    def test_transitions_fire_callbacks_in_order(self):
        feed, engine = build_engine()
        seen = []
        engine.on_transition.append(
            lambda target, old, new, health: seen.append((target, old, new))
        )
        drive(feed, engine, 3, bad=5, good=5)
        assert seen == [
            ("svc", HEALTHY, DEGRADED),
            ("svc", DEGRADED, CRITICAL),
        ]


class TestTargetExpansion:
    SPEC = SloSpec(
        name="per-source",
        kind="ratio",
        objective=0.9,
        bad_metric="bad_total",
        total_metric="all_total",
        target_label="source",
        fast_windows=1,
        slow_windows=2,
    )

    def test_each_label_value_scores_separately(self):
        feed, engine = build_engine(self.SPEC)
        for now in (1.0, 2.0):
            feed.traffic(bad=5, good=5, source="cas")
            feed.traffic(bad=0, good=10, source="gridmap")
            engine.scopes["svc"].tick(now)
            report = engine.evaluate(now)
        assert report.status_of("svc/source:cas") == CRITICAL
        assert report.status_of("svc/source:gridmap") == HEALTHY

    def test_quiet_target_recovers_and_is_forgotten(self):
        feed, engine = build_engine(self.SPEC, recovery_evaluations=1)
        feed.traffic(bad=5, good=5, source="cas")
        engine.scopes["svc"].tick(1.0)
        assert engine.evaluate(1.0).status_of("svc/source:cas") == DEGRADED
        # The source goes quiet: still scored (zero burn) until it
        # walks back to healthy, then dropped from tracking.
        # slow_windows=2 keeps the bad window in view for one more
        # evaluation, so the walk down starts at the third.
        for now in (2.0, 3.0, 4.0, 5.0):
            engine.scopes["svc"].tick(now)
            report = engine.evaluate(now)
        assert "svc/source:cas" not in report.targets
        assert "svc/source:cas" not in engine._states


class TestReports:
    def test_worst_status_ranks_targets(self):
        feed, engine = build_engine()
        feed.traffic(bad=5, good=5)
        engine.scopes["svc"].tick(1.0)
        report = engine.evaluate(1.0)
        assert report.worst_status() == DEGRADED

    def test_render_is_deterministic_text(self):
        feed, engine = build_engine()
        drive(feed, engine, 2, bad=2, good=8)
        text = engine.evaluate(2.0).render()
        assert "svc" in text and "degraded" in text
        assert "alerts:" in text

    def test_to_dict_roundtrips_through_report_from_dict(self):
        feed, engine = build_engine()
        drive(feed, engine, 2, bad=2, good=8)
        report = engine.evaluate(2.0)
        rebuilt = report_from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.worst_status() == report.worst_status()
        assert rebuilt.weight_of("svc") == report.weight_of("svc")

    def test_report_from_dict_rejects_unknown_status(self):
        with pytest.raises(ValueError):
            report_from_dict(
                {"at": 0.0, "targets": {"svc": {"status": "on-fire"}}}
            )

    def test_missing_target_defaults(self):
        report = HealthReport(at=0.0, targets={}, alerts=[])
        assert report.status_of("ghost") == HEALTHY
        assert report.score_of("ghost") == 1.0
        assert report.weight_of("ghost") == 1.0
        assert report.worst_status() == HEALTHY


class TestHealthMonitor:
    def build_monitor(self, **kwargs):
        feed = Feed()
        monitor = HealthMonitor(
            window=1.0, specs=[RATIO], recovery_evaluations=1, **kwargs
        )
        monitor.add_scope("svc", feed.registry.snapshot)
        return feed, monitor

    def test_maybe_tick_gates_on_the_window(self):
        feed, monitor = self.build_monitor()
        assert monitor.maybe_tick(0.5) is None
        assert monitor.latest_report is None
        report = monitor.maybe_tick(1.0)
        assert report is not None
        assert monitor.latest_report is report
        assert monitor.status_of("svc") == HEALTHY
        assert monitor.weight_of("svc") == 1.0

    def test_critical_transition_freezes_a_flight_dump(self):
        feed, monitor = self.build_monitor()
        tracer = Tracer(clock=Clock())
        monitor.attach_tracer("svc", tracer)
        with tracer.span("gatekeeper.submit") as span:
            span.set_attr("code", "AUTHORIZATION_SYSTEM_FAILURE")
            with tracer.span("pep.authorize"):
                pass  # child span: must NOT appear as a decision
        now = 1.0
        for _ in range(3):
            feed.traffic(bad=5, good=5)
            monitor.tick(now)
            now += 1.0
        assert monitor.status_of("svc") == CRITICAL
        assert len(monitor.dumps) == 1
        dump = monitor.dumps[0]
        assert dump.alert["target"] == "svc"
        assert dump.alert["severity"] == CRITICAL
        assert dump.request_ids() == ("req-000001",)
        assert [entry["name"] for entry in dump.decisions] == [
            "gatekeeper.submit"
        ]
        assert dump.windows  # the deltas that tripped the burn

    def test_scoped_freeze_excludes_other_scopes(self):
        feed, monitor = self.build_monitor()
        quiet = Feed()
        monitor.add_scope("other", quiet.registry.snapshot)
        other_tracer = Tracer(clock=Clock())
        monitor.attach_tracer("other", other_tracer)
        with other_tracer.span("gatekeeper.submit"):
            pass
        now = 1.0
        for _ in range(3):
            feed.traffic(bad=5, good=5)
            monitor.tick(now)
            now += 1.0
        (dump,) = monitor.dumps
        assert dump.alert["target"] == "svc"
        assert dump.decisions == []  # the other scope's span is not evidence
