"""The PR's acceptance scenario, end to end.

One request pair — Bo submits a tagged job, Kate (authorized by the
Figure 3 ``jobtag`` grant, not ownership) cancels it while the policy
source times out once — must produce:

* a trace export whose cancel tree nests Gatekeeper → JobManager →
  PEP → callout → policy-source, with retry, timeout and breaker
  events attached where they happened;
* a registry snapshot with per-source labeled latency histograms and
  the resilience counters;
* byte-for-byte identical exports when the whole scenario runs twice
  under the simulated clock.
"""

import itertools
import json

from repro.core.parser import parse_policy
from repro.core.resilience import RetryPolicy
from repro.gram import protocol
from repro.gram.client import GramClient
from repro.gram.service import GramService, ServiceConfig
from repro.obs import render_trace_tree, source_latency_report
from repro.testing import FaultSchedule, LatencyFault, inject
from repro.workloads.scenarios import FIGURE3_POLICY_TEXT

from tests.conftest import BO, KATE

LOCAL_POLICY = """
/O=Grid/O=Globus/OU=mcs.anl.gov:
    &(action=start)(count<=32)
    &(action=cancel)
    &(action=information)
"""

BO_START = (
    "&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)(runtime=100)"
)

#: Simulated seconds the faulted source takes (above the 1s budget).
SOURCE_LATENCY = 2.0


def run_scenario():
    """Build a fresh resource, run submit + faulted cancel, export."""
    # A fresh process would start its job-contact counter at 1; reset
    # it so two in-process runs are comparable byte for byte.
    protocol._contact_counter = itertools.count(1)

    service = GramService(
        ServiceConfig(
            policies=(
                parse_policy(FIGURE3_POLICY_TEXT, name="vo"),
                parse_policy(LOCAL_POLICY, name="local"),
            ),
            callout_timeout=1.0,
            callout_retry=RetryPolicy(
                max_attempts=3, base_delay=4.0, multiplier=2.0, jitter=0.0
            ),
            breaker_failure_threshold=2,
            breaker_reset_timeout=6.0,
        )
    )
    bo = GramClient(service.add_user(BO, "boliu"), service.gatekeeper)
    kate = GramClient(service.add_user(KATE, "keahey"), service.gatekeeper)

    # One slow spell: the source times out for exactly two calls
    # (Kate's first two cancel attempts), then recovers.  Injected
    # before hardening so the resilience wrapper sits outside it.
    fault = FaultSchedule(
        [(1, None), (2, LatencyFault(service.clock, SOURCE_LATENCY))]
    )
    inject(service.registry, "gram.authz", fault)
    service.harden()

    submitted = bo.submit(BO_START)
    assert submitted.ok, submitted.message
    cancelled = kate.cancel(submitted.contact)
    assert cancelled.ok, cancelled.message
    assert kate.identity != bo.identity  # peer, not owner

    telemetry = service.telemetry
    spans_jsonl = telemetry.tracer.to_jsonl()
    spans = [json.loads(line) for line in spans_jsonl.splitlines()]
    return {
        "spans_jsonl": spans_jsonl,
        "cancel_tree": render_trace_tree(spans, trace_id="req-000002"),
        "prometheus": telemetry.registry.to_prometheus(),
        "metrics_jsonl": telemetry.registry.to_jsonl(),
        "latency_report": source_latency_report(telemetry.registry.snapshot()),
        "trace_ids": telemetry.tracer.trace_ids(),
        "registry": telemetry.registry,
    }


class TestAcceptanceScenario:
    def test_cancel_trace_nests_all_layers(self):
        result = run_scenario()
        tree = result["cancel_tree"]
        lines = tree.splitlines()
        # Structural nesting: each layer indents under the previous.
        for outer, inner in [
            ("gatekeeper.manage", "jobmanager.manage"),
            ("jobmanager.manage", "pep.authorize"),
            ("pep.authorize", "callout:"),
            ("callout:", "source:vo"),
        ]:
            outer_line = next(l for l in lines if l.lstrip().startswith(outer))
            inner_line = next(l for l in lines if l.lstrip().startswith(inner))
            outer_indent = len(outer_line) - len(outer_line.lstrip())
            inner_indent = len(inner_line) - len(inner_line.lstrip())
            assert inner_indent > outer_indent, tree

    def test_retry_timeout_and_breaker_events_recorded(self):
        result = run_scenario()
        tree = result["cancel_tree"]
        assert tree.count("timeout") >= 2
        assert tree.count("retry") >= 2
        assert "closed->open" in tree
        assert "open->half-open" in tree
        assert "half-open->closed" in tree

    def test_registry_snapshot_has_labeled_histograms(self):
        result = run_scenario()
        registry = result["registry"]
        family = registry.get("authz_source_latency_seconds")
        by_source = {labels["source"]: h for labels, h in family.series()}
        assert set(by_source) == {"vo", "local"}
        # submit (1) + three cancel attempts = 4 observations per source.
        assert by_source["vo"].count == 4
        label = next(iter(registry.get("resilience_timeouts_total").series()))[0]
        source = label["source"]
        assert registry.value("resilience_timeouts_total", source=source) == 2
        assert registry.value("resilience_retries_total", source=source) == 2
        assert registry.value(
            "breaker_transitions_total", source=source, to="open"
        ) == 1
        assert registry.value(
            "breaker_transitions_total", source=source, to="half-open"
        ) == 1
        assert registry.value(
            "breaker_transitions_total", source=source, to="closed"
        ) == 1
        assert registry.value("breaker_state", source=source) == 0  # closed
        assert "vo:" in result["latency_report"]

    def test_exports_are_byte_identical_across_runs(self):
        first, second = run_scenario(), run_scenario()
        for key in (
            "spans_jsonl",
            "cancel_tree",
            "prometheus",
            "metrics_jsonl",
            "latency_report",
            "trace_ids",
        ):
            assert first[key] == second[key], f"{key} differs between runs"

    def test_trace_per_request(self):
        result = run_scenario()
        assert result["trace_ids"] == ("req-000001", "req-000002")
