"""CLI coverage: `repro obs --format/--family` and `repro health`."""

import json

import pytest

from repro.cli import main
from repro.obs.health import HealthEngine, SloSpec
from repro.obs.recorder import FlightDump
from repro.obs.registry import MetricsRegistry
from repro.obs.windows import WindowedAggregator


@pytest.fixture
def metrics_path(tmp_path):
    registry = MetricsRegistry()
    registry.count("authz_decisions_total", decision="permit", action="start")
    registry.count("authz_decisions_total", decision="deny", action="start")
    for value in (0.01, 0.2, 0.9):
        registry.observe("authz_latency_seconds", value)
    path = tmp_path / "metrics.jsonl"
    path.write_text(registry.to_jsonl() + "\n")
    return path


def build_report(bad=0, good=10):
    spec = SloSpec(
        name="avail",
        kind="ratio",
        objective=0.9,
        bad_metric="bad_total",
        total_metric="all_total",
        fast_windows=1,
        slow_windows=1,
    )
    registry = MetricsRegistry()
    engine = HealthEngine([spec])
    engine.add_scope(
        "svc", WindowedAggregator(registry.snapshot, window=1.0)
    )
    if bad:
        registry.count("bad_total", amount=bad)
    registry.count("all_total", amount=bad + good)
    engine.scopes["svc"].tick(1.0)
    return engine.evaluate(1.0)


class TestObsFormats:
    def test_table_format(self, metrics_path, capsys):
        assert main(["obs", str(metrics_path), "--format", "table"]) == 0
        out = capsys.readouterr().out
        assert "authz_decisions_total" in out
        assert "sum=2" in out
        assert "n=3" in out and "p99=" in out

    def test_prometheus_format(self, metrics_path, capsys):
        assert main(["obs", str(metrics_path), "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE authz_decisions_total counter" in out
        assert 'decision="permit"' in out

    def test_jsonl_format(self, metrics_path, capsys):
        assert main(["obs", str(metrics_path), "--format", "jsonl"]) == 0
        out = capsys.readouterr().out.strip()
        names = {json.loads(line)["name"] for line in out.splitlines()}
        assert "authz_latency_seconds" in names

    def test_family_filter(self, metrics_path, capsys):
        assert (
            main(
                [
                    "obs",
                    str(metrics_path),
                    "--format",
                    "prometheus",
                    "--family",
                    "authz_latency_seconds",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "authz_latency_seconds" in out
        assert "authz_decisions_total" not in out

    def test_missing_family_fails_helpfully(self, metrics_path, capsys):
        assert main(["obs", str(metrics_path), "--family", "nope"]) == 1
        err = capsys.readouterr().err
        assert "no metric family 'nope'" in err
        assert "available: authz_decisions_total, authz_latency_seconds" in err

    def test_legacy_metrics_flag_still_works(self, metrics_path, capsys):
        assert main(["obs", str(metrics_path), "--metrics", "prom"]) == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_unreadable_path_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", str(missing), "--format", "table"]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestHealthCommand:
    def test_renders_a_healthy_report_and_exits_0(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(build_report().to_dict()))
        assert main(["health", str(path)]) == 0
        out = capsys.readouterr().out
        assert "health @ t=1.0" in out
        assert "svc" in out and "healthy" in out

    def test_unhealthy_report_exits_1(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(build_report(bad=5, good=5).to_dict()))
        assert main(["health", str(path)]) == 1
        out = capsys.readouterr().out
        assert "degraded" in out

    def test_json_reemission_roundtrips(self, tmp_path, capsys):
        report = build_report()
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report.to_dict()))
        assert main(["health", str(path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == report.to_dict()

    def test_alerts_only_view(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(build_report().to_dict()))
        assert main(["health", str(path), "--alerts"]) == 0
        assert capsys.readouterr().out.strip() == "no alerts"
        path.write_text(json.dumps(build_report(bad=5, good=5).to_dict()))
        assert main(["health", str(path), "--alerts"]) == 1
        out = capsys.readouterr().out
        assert "svc: avail" in out and "burn=" in out

    def test_renders_a_flight_dump(self, tmp_path, capsys):
        dump = FlightDump(
            {"target": "lbnl", "severity": "critical", "spec": "avail",
             "burn": 5.0, "error_rate": 0.5},
            [{"at": 1.0, "scope": "lbnl", "request_id": "req-000001",
              "name": "gatekeeper.submit", "code": "X", "status": "ok"}],
            [],
            frozen_at=4.0,
        )
        path = tmp_path / "dump.jsonl"
        dump.export(str(path))
        assert main(["health", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flight dump @ t=4.0" in out
        assert "req-000001" in out

    def test_dump_json_reemission(self, tmp_path, capsys):
        dump = FlightDump(
            {"target": "lbnl", "severity": "critical"}, [], [], frozen_at=4.0
        )
        path = tmp_path / "dump.jsonl"
        dump.export(str(path))
        assert main(["health", str(path), "--json"]) == 0
        assert capsys.readouterr().out == dump.to_jsonl()

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["health", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_non_report_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        assert main(["health", str(path)]) == 2
        assert "not a health report" in capsys.readouterr().err

    def test_garbage_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all\n")
        assert main(["health", str(path)]) == 2
        assert "error:" in capsys.readouterr().err
