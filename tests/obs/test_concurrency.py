"""Concurrency smoke: parallel requests never leak spans across trees.

The active span lives in a context variable, and fresh threads start
with no active span — so N threads authorizing through one telemetry-
equipped PEP must produce exactly N disjoint, well-formed traces.
"""

import threading

from repro.core.callout import GRAM_AUTHZ_CALLOUT, default_registry
from repro.core.decision import Decision
from repro.core.pep import EnforcementPoint
from repro.core.request import AuthorizationRequest
from repro.obs import Telemetry
from repro.rsl.parser import parse_specification
from repro.sim.clock import Clock

THREADS = 8
REQUESTS_PER_THREAD = 10


def permit_all(request):
    return Decision.permit(reason="ok", source="stub")


def test_no_cross_request_span_leakage():
    telemetry = Telemetry(clock=Clock(), trace_limit=10_000)
    registry = default_registry()
    registry.register(GRAM_AUTHZ_CALLOUT, permit_all, label="stub")
    pep = EnforcementPoint(registry=registry, telemetry=telemetry)
    barrier = threading.Barrier(THREADS)
    errors = []

    def worker(index):
        barrier.wait()
        try:
            for n in range(REQUESTS_PER_THREAD):
                request = AuthorizationRequest.start(
                    f"/O=Grid/CN=User{index}",
                    parse_specification(f"&(executable=sim{n})(count=1)"),
                )
                pep.authorize(request)
        except Exception as exc:  # surfaced below; threads must not die
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    traces = telemetry.tracer.traces
    assert len(traces) == THREADS * REQUESTS_PER_THREAD
    for trace_id, spans in traces:
        # Every trace is exactly one request: a pep root + its callout.
        assert [item.name for item in spans] == [
            "pep.authorize",
            "callout:stub",
        ]
        assert all(item.trace_id == trace_id for item in spans)
        root, child = spans
        assert root.parent_id is None
        assert child.parent_id == root.span_id

    assert telemetry.registry.value(
        "authz_decisions_total", action="start", decision="permit"
    ) == THREADS * REQUESTS_PER_THREAD
