"""Concurrency smoke: parallel requests never leak spans across trees.

The active span lives in a context variable, and fresh threads start
with no active span — so N threads authorizing through one telemetry-
equipped PEP must produce exactly N disjoint, well-formed traces.
"""

import threading

from repro.core.callout import GRAM_AUTHZ_CALLOUT, default_registry
from repro.core.decision import Decision
from repro.core.pep import EnforcementPoint
from repro.core.request import AuthorizationRequest
from repro.obs import Telemetry
from repro.rsl.parser import parse_specification
from repro.sim.clock import Clock

THREADS = 8
REQUESTS_PER_THREAD = 10


def permit_all(request):
    return Decision.permit(reason="ok", source="stub")


def test_no_cross_request_span_leakage():
    telemetry = Telemetry(clock=Clock(), trace_limit=10_000)
    registry = default_registry()
    registry.register(GRAM_AUTHZ_CALLOUT, permit_all, label="stub")
    pep = EnforcementPoint(registry=registry, telemetry=telemetry)
    barrier = threading.Barrier(THREADS)
    errors = []

    def worker(index):
        barrier.wait()
        try:
            for n in range(REQUESTS_PER_THREAD):
                request = AuthorizationRequest.start(
                    f"/O=Grid/CN=User{index}",
                    parse_specification(f"&(executable=sim{n})(count=1)"),
                )
                pep.authorize(request)
        except Exception as exc:  # surfaced below; threads must not die
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    traces = telemetry.tracer.traces
    assert len(traces) == THREADS * REQUESTS_PER_THREAD
    for trace_id, spans in traces:
        # Every trace is exactly one request: a pep root + its callout.
        assert [item.name for item in spans] == [
            "pep.authorize",
            "callout:stub",
        ]
        assert all(item.trace_id == trace_id for item in spans)
        root, child = spans
        assert root.parent_id is None
        assert child.parent_id == root.span_id

    assert telemetry.registry.value(
        "authz_decisions_total", action="start", decision="permit"
    ) == THREADS * REQUESTS_PER_THREAD

# -- registry hammer: lost-increment and merge-path checks -------------------

HAMMER_THREADS = 8
HAMMER_OPS = 2000


def test_registry_hammer_loses_no_increments():
    """N threads on one registry: every increment must land.

    Bare ``+=`` on CPython can drop updates between the read and the
    write; the per-instrument locks exist to prevent exactly that, and
    this test fails loudly without them.
    """
    from repro.obs import MetricsRegistry, prometheus_text, snapshot_jsonl

    registry = MetricsRegistry()
    barrier = threading.Barrier(HAMMER_THREADS)
    errors = []

    def worker(index):
        barrier.wait()
        try:
            for n in range(HAMMER_OPS):
                registry.count("hammer_total", worker=str(index % 2))
                registry.set_gauge("hammer_last_op", float(n))
                registry.observe("hammer_latency_seconds", (n % 10) / 1000.0)
        except Exception as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(HAMMER_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    expected = HAMMER_THREADS * HAMMER_OPS
    by_worker = [
        registry.value("hammer_total", worker=label) for label in ("0", "1")
    ]
    assert sum(by_worker) == expected
    assert by_worker == [expected // 2, expected // 2]

    snapshot = registry.snapshot()
    histogram = next(f for f in snapshot if f["name"] == "hammer_latency_seconds")
    series = histogram["series"][0]
    assert series["count"] == expected
    # The +Inf bucket is cumulative: it too must count every observe.
    assert series["buckets"][-1][1] == expected

    # Exports are stable and well-formed after the stampede.
    assert prometheus_text(snapshot) == prometheus_text(registry.snapshot())
    assert f'hammer_total{{worker="0"}} {expected // 2}' in prometheus_text(snapshot)
    assert snapshot_jsonl(snapshot) == snapshot_jsonl(registry.snapshot())


def test_per_shard_merge_path_under_concurrent_writes():
    """One registry per shard, hammered concurrently, merged at the end.

    This is the sharded service's telemetry model: writers never share
    a registry, and ``merge_snapshots`` must account for every event.
    """
    from repro.obs import (
        MetricsRegistry,
        merge_snapshots,
        prometheus_text,
        snapshot_jsonl,
    )

    shards = 4
    registries = [MetricsRegistry() for _ in range(shards)]
    barrier = threading.Barrier(shards)

    def worker(registry, index):
        barrier.wait()
        for n in range(HAMMER_OPS):
            registry.count("shard_requests_total", kind="submit")
            # Powers of two are exact in binary, so the merged sum is
            # identical no matter which shard order it is folded in.
            registry.observe("shard_latency_seconds", index / 4.0)

    threads = [
        threading.Thread(target=worker, args=(registry, index))
        for index, registry in enumerate(registries)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    merged = merge_snapshots([r.snapshot() for r in registries])
    counter = next(f for f in merged if f["name"] == "shard_requests_total")
    assert counter["series"][0]["value"] == shards * HAMMER_OPS
    histogram = next(f for f in merged if f["name"] == "shard_latency_seconds")
    series = histogram["series"][0]
    assert series["count"] == shards * HAMMER_OPS
    assert series["buckets"][-1][1] == shards * HAMMER_OPS

    # Merging is order-insensitive and renders deterministically.
    reversed_merge = merge_snapshots(
        [r.snapshot() for r in reversed(registries)]
    )
    assert prometheus_text(reversed_merge) == prometheus_text(merged)
    assert snapshot_jsonl(reversed_merge) == snapshot_jsonl(merged)
