"""Windowed aggregation over metric snapshots (repro.obs.windows)."""

import pytest

from repro.obs.exporters import histogram_quantile, merge_snapshots
from repro.obs.registry import OVERFLOW_LABEL, MetricsRegistry
from repro.obs.windows import (
    WindowedAggregator,
    label_values,
    merge_histogram,
    sum_values,
)


def counter_family(name, *series):
    return {
        "name": name,
        "type": "counter",
        "help": "",
        "series": [
            {"labels": dict(labels), "value": float(value)}
            for labels, value in series
        ],
    }


class TestPlainSnapshotHelpers:
    def test_sum_values_filters_on_label_subset(self):
        snapshot = [
            counter_family(
                "requests_total",
                ({"site": "anl", "code": "OK"}, 3),
                ({"site": "anl", "code": "DENIED"}, 2),
                ({"site": "lbnl", "code": "OK"}, 7),
            )
        ]
        assert sum_values(snapshot, "requests_total") == 12.0
        assert sum_values(snapshot, "requests_total", {"site": "anl"}) == 5.0
        assert (
            sum_values(snapshot, "requests_total", {"site": "anl", "code": "OK"})
            == 3.0
        )
        assert sum_values(snapshot, "missing_total") == 0.0

    def test_sum_values_counts_histogram_events(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.9):
            registry.observe("latency_seconds", value)
        snapshot = registry.snapshot()
        assert sum_values(snapshot, "latency_seconds") == 3

    def test_overflow_series_excluded_by_default(self):
        snapshot = [
            counter_family(
                "requests_total",
                ({"site": "anl"}, 5),
                ({"site": OVERFLOW_LABEL}, 100),
            )
        ]
        assert sum_values(snapshot, "requests_total") == 5.0
        assert (
            sum_values(snapshot, "requests_total", include_overflow=True)
            == 105.0
        )

    def test_merge_histogram_unions_bucket_layouts(self):
        snapshot = [
            {
                "name": "lat",
                "type": "histogram",
                "help": "",
                "series": [
                    {
                        "labels": {"s": "a"},
                        "buckets": [[0.1, 1], [1.0, 3], [float("inf"), 3]],
                        "sum": 0.9,
                        "count": 3,
                    },
                    {
                        "labels": {"s": "b"},
                        "buckets": [[0.5, 2], [float("inf"), 2]],
                        "sum": 0.4,
                        "count": 2,
                    },
                ],
            }
        ]
        buckets, total_sum, total_count = merge_histogram(snapshot, "lat")
        assert [bound for bound, _ in buckets] == [0.1, 0.5, 1.0, float("inf")]
        assert total_sum == pytest.approx(1.3)
        assert total_count == 5

    def test_label_values_sorted_and_overflow_free(self):
        snapshot = [
            counter_family(
                "requests_total",
                ({"site": "lbnl"}, 1),
                ({"site": "anl"}, 1),
                ({"site": OVERFLOW_LABEL}, 1),
            )
        ]
        assert label_values(snapshot, "requests_total", "site") == (
            "anl",
            "lbnl",
        )


class TestWindowedAggregator:
    def build(self, **kwargs):
        registry = MetricsRegistry()
        aggregator = WindowedAggregator(registry.snapshot, **kwargs)
        return registry, aggregator

    def test_constructor_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            WindowedAggregator(registry.snapshot, window=0)
        with pytest.raises(ValueError):
            WindowedAggregator(registry.snapshot, retain=0)

    def test_tick_captures_per_window_deltas(self):
        registry, aggregator = self.build(window=5.0)
        registry.count("jobs_total", amount=3)
        frame = aggregator.tick(5.0)
        assert frame.index == 0
        assert (frame.start, frame.end, frame.width) == (0.0, 5.0, 5.0)
        registry.count("jobs_total", amount=2)
        aggregator.tick(10.0)
        assert aggregator.delta("jobs_total", windows=1) == 2.0
        assert aggregator.delta("jobs_total") == 5.0
        assert aggregator.value("jobs_total") == 5.0

    def test_clock_moving_backwards_raises(self):
        _, aggregator = self.build()
        aggregator.tick(5.0)
        with pytest.raises(ValueError):
            aggregator.tick(4.0)

    def test_maybe_tick_waits_for_a_full_window(self):
        registry, aggregator = self.build(window=5.0)
        assert aggregator.maybe_tick(4.9) is None
        assert len(aggregator) == 0
        assert aggregator.maybe_tick(5.0) is not None
        # The next window starts where the last one closed.
        assert aggregator.maybe_tick(9.9) is None
        assert aggregator.maybe_tick(10.5) is not None

    def test_wide_windows_divide_rate_by_actual_time(self):
        registry, aggregator = self.build(window=5.0)
        registry.count("jobs_total", amount=20)
        aggregator.tick(10.0)  # one double-width window
        assert aggregator.rate("jobs_total") == pytest.approx(2.0)
        assert aggregator.rate("jobs_total", windows=5) == pytest.approx(2.0)

    def test_rate_is_zero_before_any_window(self):
        _, aggregator = self.build()
        assert aggregator.rate("jobs_total") == 0.0
        assert aggregator.latest() == []

    def test_retain_bounds_the_ring(self):
        registry, aggregator = self.build(window=1.0, retain=3)
        for step in range(1, 6):
            registry.count("jobs_total")
            aggregator.tick(float(step))
        assert len(aggregator) == 3
        assert [frame.index for frame in aggregator.frames()] == [2, 3, 4]
        assert aggregator.delta("jobs_total") == 3.0
        assert aggregator.elapsed() == 3.0

    def test_quantile_over_multiple_windows(self):
        registry, aggregator = self.build(window=1.0)
        for value in (0.01, 0.01, 0.01):
            registry.observe("lat_seconds", value)
        aggregator.tick(1.0)
        for value in (2.0, 2.0, 2.0):
            registry.observe("lat_seconds", value)
        aggregator.tick(2.0)
        # Over both windows half the observations are slow...
        assert aggregator.quantile("lat_seconds", 0.25) < 0.5
        assert aggregator.quantile("lat_seconds", 0.99) > 1.0
        # ...but the last window alone is all slow.
        assert aggregator.quantile("lat_seconds", 0.25, windows=1) > 1.0

    def test_fraction_above_uses_conservative_bucket_cut(self):
        registry, aggregator = self.build(window=1.0)
        # Default buckets include 0.25 and 0.5; 0.3 lands in (0.25, 0.5].
        for value in (0.1, 0.1, 0.1, 0.9):
            registry.observe("lat_seconds", value)
        aggregator.tick(1.0)
        # Threshold between bounds: observations up to the next bound
        # (0.5) count as good, so only the 0.9 observation is bad.
        fraction, total = aggregator.fraction_above("lat_seconds", 0.3)
        assert total == 4
        assert fraction == pytest.approx(0.25)
        empty_fraction, empty_total = aggregator.fraction_above(
            "lat_seconds", 0.3, windows=0
        )
        assert (empty_fraction, empty_total) == (0.0, 0)

    def test_label_values_across_window_deltas(self):
        registry, aggregator = self.build(window=1.0)
        registry.count("req_total", source="vo")
        aggregator.tick(1.0)
        registry.count("req_total", source="local")
        aggregator.tick(2.0)
        assert aggregator.label_values("req_total", "source") == (
            "local",
            "vo",
        )
        assert aggregator.label_values("req_total", "source", windows=1) == (
            "local",
        )

    def test_window_summaries_are_json_ready(self):
        registry, aggregator = self.build(window=1.0)
        registry.count("jobs_total")
        aggregator.tick(1.0)
        summaries = aggregator.window_summaries()
        assert len(summaries) == 1
        assert summaries[0]["index"] == 0
        assert summaries[0]["delta"][0]["name"] == "jobs_total"


class TestMergedSnapshotSources:
    """An aggregator over merge_snapshots output — the sharded path."""

    def test_quantiles_over_merged_shard_registries(self):
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        aggregator = WindowedAggregator(
            lambda: merge_snapshots([shard_a.snapshot(), shard_b.snapshot()]),
            window=1.0,
        )
        for value in (0.01, 0.02, 0.03):
            shard_a.observe("lat_seconds", value)
        for value in (2.0, 3.0, 4.0):
            shard_b.observe("lat_seconds", value)
        aggregator.tick(1.0)
        buckets, _, count = aggregator.histogram_delta("lat_seconds")
        assert count == 6
        # Same answer as one registry observing the union.
        union = MetricsRegistry()
        for value in (0.01, 0.02, 0.03, 2.0, 3.0, 4.0):
            union.observe("lat_seconds", value)
        expected = union.snapshot()[0]["series"][0]["buckets"]
        assert histogram_quantile(buckets, 0.5) == pytest.approx(
            histogram_quantile(expected, 0.5)
        )

    def test_counter_deltas_over_merged_shards(self):
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        aggregator = WindowedAggregator(
            lambda: merge_snapshots([shard_a.snapshot(), shard_b.snapshot()]),
            window=1.0,
        )
        shard_a.count("jobs_total", amount=2)
        aggregator.tick(1.0)
        shard_b.count("jobs_total", amount=5)
        aggregator.tick(2.0)
        assert aggregator.delta("jobs_total", windows=1) == 5.0
        assert aggregator.value("jobs_total") == 7.0


class TestOverflowAcrossShards:
    """`<overflow>` series merge without double counting and never
    leak into label-filtered health queries."""

    def overflowing_registry(self):
        registry = MetricsRegistry(max_series=2)
        registry.count("req_total", source="vo")
        registry.count("req_total", source="local")
        registry.count("req_total", source="cas")  # folds into overflow
        registry.count("req_total", source="akenti")  # same overflow bucket
        return registry

    def test_merge_keeps_one_overflow_series(self):
        merged = merge_snapshots(
            [
                self.overflowing_registry().snapshot(),
                self.overflowing_registry().snapshot(),
            ]
        )
        family = next(f for f in merged if f["name"] == "req_total")
        overflow = [
            series
            for series in family["series"]
            if OVERFLOW_LABEL in series["labels"].values()
        ]
        assert len(overflow) == 1
        assert overflow[0]["value"] == 4.0  # 2 per shard, summed once
        assert sum_values(merged, "req_total", include_overflow=True) == 8.0

    def test_overflow_never_becomes_a_health_target(self):
        registry = self.overflowing_registry()
        aggregator = WindowedAggregator(registry.snapshot, window=1.0)
        aggregator.tick(1.0)
        assert aggregator.label_values("req_total", "source") == (
            "local",
            "vo",
        )
        # Label-filtered deltas skip the folded series entirely.
        assert aggregator.delta("req_total", source="vo") == 1.0
        assert aggregator.delta("req_total") == 2.0
        assert (
            sum_values(
                aggregator.latest(), "req_total", include_overflow=True
            )
            == 4.0
        )
